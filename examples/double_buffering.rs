//! The paper's running example: double buffering with an AMR-optimised
//! kernel (paper §1–§3, Listings 1–3, Fig 4).
//!
//! Demonstrates the full top-down story: project the Scribble protocol,
//! optimise the kernel by sending both `ready`s up front, verify the
//! optimisation with the asynchronous subtyping algorithm, then run it.
//!
//! ```text
//! cargo run --example double_buffering
//! ```

use rumpsteak::{messages, roles, session, try_session, End, Receive, Send};
use theory::projection::project;

const SCRIBBLE: &str = r#"
    global protocol DoubleBuffering(role S, role K, role T) {
        Ready() from K to S;
        Value(i32) from S to K;
        Ready() from T to K;
        Value(i32) from K to T;
        Ready() from K to S;
        Value(i32) from S to K;
        Ready() from T to K;
        Value(i32) from K to T;
    }
"#;

pub struct Ready;
pub struct Value(pub i32);

messages! {
    enum Label { Ready(Ready), Value(Value): i32 }
}

roles! {
    message Label;
    K { s: S, t: T },
    S { k: K },
    T { k: K },
}

session! {
    type Source<'q> = Receive<'q, S, K, Ready, Send<'q, S, K, Value,
        Receive<'q, S, K, Ready, Send<'q, S, K, Value, End<'q, S>>>>>;
    // Fig 4a, two iterations: the projected kernel.
    type Kernel<'q> = Send<'q, K, S, Ready, Receive<'q, K, S, Value,
        Receive<'q, K, T, Ready, Send<'q, K, T, Value,
        Send<'q, K, S, Ready, Receive<'q, K, S, Value,
        Receive<'q, K, T, Ready, Send<'q, K, T, Value, End<'q, K>>>>>>>>>;
    // Fig 4b: both readys anticipated.
    type KernelOpt<'q> = Send<'q, K, S, Ready, Send<'q, K, S, Ready,
        Receive<'q, K, S, Value, Receive<'q, K, T, Ready,
        Send<'q, K, T, Value, Receive<'q, K, S, Value,
        Receive<'q, K, T, Ready, Send<'q, K, T, Value, End<'q, K>>>>>>>>>;
    type Sink<'q> = Send<'q, T, K, Ready, Receive<'q, T, K, Value,
        Send<'q, T, K, Ready, Receive<'q, T, K, Value, End<'q, T>>>>>;
}

async fn source(role: &mut S) -> rumpsteak::Result<()> {
    try_session(role, |s: Source<'_>| async move {
        let (Ready, s) = s.receive().await?;
        let s = s.send(Value(11)).await?;
        let (Ready, s) = s.receive().await?;
        let end = s.send(Value(22)).await?;
        Ok(((), end))
    })
    .await
}

async fn kernel_optimised(role: &mut K) -> rumpsteak::Result<()> {
    try_session(role, |s: KernelOpt<'_>| async move {
        // Double buffering: request both buffers immediately.
        let s = s.send(Ready).await?;
        let s = s.send(Ready).await?;
        let (Value(first), s) = s.receive().await?;
        let (Ready, s) = s.receive().await?;
        let s = s.send(Value(first)).await?;
        let (Value(second), s) = s.receive().await?;
        let (Ready, s) = s.receive().await?;
        let end = s.send(Value(second)).await?;
        Ok(((), end))
    })
    .await
}

async fn sink(role: &mut T) -> rumpsteak::Result<(i32, i32)> {
    try_session(role, |s: Sink<'_>| async move {
        let s = s.send(Ready).await?;
        let (Value(first), s) = s.receive().await?;
        let s = s.send(Ready).await?;
        let (Value(second), end) = s.receive().await?;
        Ok(((first, second), end))
    })
    .await
}

fn main() {
    // Projection sanity: the Scribble projection of K equals the
    // serialised Kernel API.
    let protocol = theory::scribble::parse(SCRIBBLE).expect("well-formed Scribble");
    let projected_k =
        theory::fsm::from_local(&"K".into(), &project(&protocol.body, &"K".into()).unwrap())
            .unwrap();
    let kernel_api = rumpsteak::serialize::<Kernel<'static>>().unwrap();
    assert!(subtyping::is_subtype(&kernel_api, &projected_k, 4));

    // §3: the optimised kernel is a verified asynchronous subtype.
    let optimised = rumpsteak::serialize::<KernelOpt<'static>>().unwrap();
    assert!(subtyping::is_subtype(&optimised, &projected_k, 8));
    println!("optimised kernel verified against projection: OK");
    // The unsafe direction is rejected.
    assert!(!subtyping::is_subtype(&projected_k, &optimised, 8));

    // Run the optimised pipeline.
    let rt = executor::Runtime::with_default_threads();
    let (mut k, mut s, mut t) = connect();
    let kernel_task = rt.spawn(async move { kernel_optimised(&mut k).await });
    let source_task = rt.spawn(async move { source(&mut s).await });
    let sink_task = rt.spawn(async move { sink(&mut t).await });
    rt.block_on(kernel_task).unwrap().unwrap();
    rt.block_on(source_task).unwrap().unwrap();
    let (first, second) = rt.block_on(sink_task).unwrap().unwrap();
    println!("sink received buffers {first} and {second}");
    assert_eq!((first, second), (11, 22));
}
