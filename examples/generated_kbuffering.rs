//! The k-buffering pipeline, fully generated: session types, process
//! skeletons and `main` are all the **unedited output** of
//!
//! ```text
//! rumpsteak-gen crates/codegen/tests/protocols/kbuffering.scr --param n=4 --skeleton
//! ```
//!
//! pinned byte-for-byte as `crates/codegen/tests/goldens/kbuffering.rs`
//! and spliced in below. A source streams values through four kernel
//! stages to a sink for `ROUNDS` iterations, then shuts the pipeline
//! down with a `stop` that chases the values out.
//!
//! ```text
//! cargo run --example generated_kbuffering
//! ```

include!("../crates/codegen/tests/goldens/kbuffering.rs");
