//! The k-buffering pipeline with the AMR optimise pass: session types,
//! process skeletons and `main` are all the **unedited output** of
//!
//! ```text
//! rumpsteak-gen crates/codegen/tests/protocols/kbuffering_opt.scr \
//!     --param n=4 --skeleton --optimise
//! ```
//!
//! pinned byte-for-byte as `crates/codegen/tests/goldens/kbuffering_opt.rs`
//! and spliced in below. Compared to its unoptimised sibling
//! (`generated_kbuffering`), the source's value/stop decision has been
//! hoisted above its `ready` receive by the optimiser — a reordering
//! proven safe by the sound asynchronous subtyping algorithm — so the
//! source streams values without blocking on downstream flow control.
//!
//! ```text
//! cargo run --example generated_kbuffering_opt
//! ```

include!("../crates/codegen/tests/goldens/kbuffering_opt.rs");
