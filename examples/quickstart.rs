//! Quickstart: the full top-down Rumpsteak workflow on the two-party
//! streaming protocol (paper §2, Fig 3).
//!
//! 1. Write the protocol in Scribble and parse it.
//! 2. Project it onto each participant (νScr's job in the paper).
//! 3. Write the session-typed processes and run them on the async runtime.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rumpsteak::{
    choice, messages, roles, session, try_session, Branch, End, IntoSession, Receive, Select, Send,
};
use theory::projection::project;

const SCRIBBLE: &str = r#"
    global protocol Streaming(role S, role T) {
        rec loop {
            Ready() from T to S;
            choice at S {
                Value(i32) from S to T;
                continue loop;
            } or {
                Stop() from S to T;
            }
        }
    }
"#;

pub struct Ready;
pub struct Value(pub i32);
pub struct Stop;

messages! {
    enum Label { Ready(Ready), Value(Value): i32, Stop(Stop) }
}

roles! {
    message Label;
    S { t: T },
    T { s: S },
}

session! {
    struct Source<'q> for S = Receive<'q, S, T, Ready, Select<'q, S, T, SourceChoice<'q>>>;
    struct Sink<'q> for T = Send<'q, T, S, Ready, Branch<'q, T, S, SinkChoice<'q>>>;
}

choice! {
    enum SourceChoice<'q> for S {
        Value(Value) => Source<'q>,
        Stop(Stop) => End<'q, S>,
    }
}

choice! {
    enum SinkChoice<'q> for T {
        Value(Value) => Sink<'q>,
        Stop(Stop) => End<'q, T>,
    }
}

async fn source(role: &mut S, values: u32) -> rumpsteak::Result<()> {
    try_session(role, |mut s: Source<'_>| async move {
        let mut sent = 0;
        loop {
            let (Ready, choice) = s.into_session().receive().await?;
            if sent == values {
                let end = choice.select(Stop).await?;
                return Ok(((), end));
            }
            s = choice.select(Value(sent as i32 * 7)).await?;
            sent += 1;
        }
    })
    .await
}

async fn sink(role: &mut T) -> rumpsteak::Result<Vec<i32>> {
    try_session(role, |mut s: Sink<'_>| async move {
        let mut received = Vec::new();
        loop {
            let branch = s.into_session().send(Ready).await?;
            match branch.branch().await? {
                SinkChoice::Value(Value(v), next) => {
                    received.push(v);
                    s = next;
                }
                SinkChoice::Stop(Stop, end) => return Ok((received, end)),
            }
        }
    })
    .await
}

fn main() {
    // 1. Parse the Scribble protocol.
    let protocol = theory::scribble::parse(SCRIBBLE).expect("well-formed Scribble");
    println!(
        "parsed protocol `{}` with roles {:?}",
        protocol.name, protocol.roles
    );

    // 2. Project onto each participant and show the local types.
    for role in &protocol.roles {
        let local = project(&protocol.body, role).expect("projectable");
        println!("  {role} |-> {local}");
    }

    // 3. The hand-written API matches the projection (hybrid workflow):
    //    serialise the Rust session type back into an FSM and compare.
    let api = rumpsteak::serialize::<Source<'static>>().expect("serialisable");
    let projected =
        theory::fsm::from_local(&"S".into(), &project(&protocol.body, &"S".into()).unwrap())
            .unwrap();
    assert!(subtyping::is_subtype(&api, &projected, 4));
    println!("source API conforms to its projection: OK");

    // 4. Run the processes.
    let rt = executor::Runtime::with_default_threads();
    let (mut s, mut t) = connect();
    let source_task = rt.spawn(async move { source(&mut s, 10).await });
    let sink_task = rt.spawn(async move { sink(&mut t).await });
    rt.block_on(source_task).unwrap().unwrap();
    let received = rt.block_on(sink_task).unwrap().unwrap();
    println!("sink received {received:?}");
    assert_eq!(received, (0..10).map(|i| i * 7).collect::<Vec<_>>());
}
