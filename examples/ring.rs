//! The ring protocol with AMR (paper §4.2, Appendix B.2.1).
//!
//! Three participants forward tokens around a ring. The projected types
//! make each non-initiator receive before sending; the optimised types
//! send first (the forwarded value does not depend on the received one),
//! overlapping the whole round. Each optimisation is verified **locally**
//! with the subtyping algorithm — no global analysis required.
//!
//! The example also demonstrates channel reuse (paper §2.1): each round
//! is one session, and the role structs — with their channels — are
//! reused across `try_session` calls.
//!
//! ```text
//! cargo run --example ring
//! ```

use rumpsteak::{messages, roles, session, try_session, End, Receive, Send};

pub struct Token(pub u64);

messages! {
    enum Label { Token(Token): u64 }
}

roles! {
    message Label;
    A { b: B, c: C },
    B { a: A, c: C },
    C { a: A, b: B },
}

const ROUNDS: usize = 64;

session! {
    // One optimised round per session: send to the successor before
    // receiving from the predecessor.
    type RoundA<'q> = Send<'q, A, B, Token, Receive<'q, A, C, Token, End<'q, A>>>;
    type RoundB<'q> = Send<'q, B, C, Token, Receive<'q, B, A, Token, End<'q, B>>>;
    type RoundC<'q> = Send<'q, C, A, Token, Receive<'q, C, B, Token, End<'q, C>>>;
}

macro_rules! ring_process {
    ($fn_name:ident, $role:ident, $session:ident) => {
        async fn $fn_name(role: &mut $role, weight: u64) -> rumpsteak::Result<u64> {
            let mut token = weight;
            for _ in 0..ROUNDS {
                token = try_session(role, |s: $session<'_>| async move {
                    let s = s.send(Token(token)).await?;
                    let (Token(incoming), end) = s.receive().await?;
                    Ok((incoming + weight, end))
                })
                .await?;
            }
            Ok(token)
        }
    };
}

ring_process!(run_a, A, RoundA);
ring_process!(run_b, B, RoundB);
ring_process!(run_c, C, RoundC);

/// Reference model of the optimised ring: every participant sends its
/// current token, then adds its weight to the one received.
fn model() -> (u64, u64, u64) {
    let (mut a, mut b, mut c) = (1u64, 10, 100);
    for _ in 0..ROUNDS {
        let (na, nb, nc) = (c + 1, a + 10, b + 100);
        (a, b, c) = (na, nb, nc);
    }
    (a, b, c)
}

fn main() {
    // Verify each participant's optimisation locally (paper Fig 7, Ring):
    // the optimised FSM is a subtype of the projected one.
    for (role, optimised, projected) in [
        (
            "A",
            "rec x . b!token . c?token . x",
            "rec x . b!token . c?token . x",
        ),
        (
            "B",
            "rec x . c!token . a?token . x",
            "rec x . a?token . c!token . x",
        ),
        (
            "C",
            "rec x . a!token . b?token . x",
            "rec x . b?token . a!token . x",
        ),
    ] {
        let optimised = theory::local::parse(optimised).unwrap();
        let projected = theory::local::parse(projected).unwrap();
        assert!(
            subtyping::is_subtype_local(&optimised, &projected, 4).unwrap(),
            "{role} optimisation must verify"
        );
    }
    println!("all three local optimisations verified: OK");

    // An unsafe variant (initiator receives first) is rejected.
    let bad = theory::local::parse("rec x . c?token . b!token . x").unwrap();
    let projected_a = theory::local::parse("rec x . b!token . c?token . x").unwrap();
    assert!(!subtyping::is_subtype_local(&bad, &projected_a, 4).unwrap());
    println!("unsafe reordering rejected: OK");

    // Run the optimised ring, reusing each role across ROUNDS sessions.
    let rt = executor::Runtime::with_default_threads();
    let (mut a, mut b, mut c) = connect();
    let ta = rt.spawn(async move { run_a(&mut a, 1).await });
    let tb = rt.spawn(async move { run_b(&mut b, 10).await });
    let tc = rt.spawn(async move { run_c(&mut c, 100).await });
    let ra = rt.block_on(ta).unwrap().unwrap();
    let rb = rt.block_on(tb).unwrap().unwrap();
    let rc = rt.block_on(tc).unwrap().unwrap();
    println!("ring completed {ROUNDS} rounds: a={ra} b={rb} c={rc}");
    assert_eq!((ra, rb, rc), model());
}
