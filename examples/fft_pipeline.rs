//! An FFT pipeline over session types (a compact cousin of the paper's
//! 8-process FFT benchmark, §4.1).
//!
//! A producer streams rows of samples to a worker, which answers with
//! each row's FFT. The exchange is AMR-optimised: the producer keeps one
//! extra row in flight instead of waiting for each spectrum before
//! sending the next — computation (the worker's FFT) overlaps with
//! communication (the producer preparing the next row). The optimised
//! system is verified bottom-up with k-MC.
//!
//! ```text
//! cargo run --example fft_pipeline
//! ```

use fft::{Complex, Planner};
use rumpsteak::{
    choice, messages, roles, session, try_session, Branch, End, IntoSession, Receive, Select, Send,
};

const FFT_SIZE: usize = 64;
const ROWS: usize = 8;

pub struct Row(pub Vec<Complex>);
pub struct Spectrum(pub Vec<Complex>);
pub struct DoneMsg;

messages! {
    enum Label { Row(Row): row, Spectrum(Spectrum): spectrum, DoneMsg(DoneMsg) }
}

roles! {
    message Label;
    Producer { w: Worker },
    Worker { p: Producer },
}

session! {
    // Optimised producer: prime the pipeline with one row, then per
    // iteration send the next row *before* receiving the previous
    // spectrum; on stop, drain the final outstanding spectrum.
    type ProducerStart<'q> = Send<'q, Producer, Worker, Row, ProducerLoop<'q>>;
    struct ProducerLoop<'q> for Producer = Select<'q, Producer, Worker, ProducerChoice<'q>>;
    struct WorkerLoop<'q> for Worker = Branch<'q, Worker, Producer, WorkerChoice<'q>>;
}

choice! {
    enum ProducerChoice<'q> for Producer {
        Row(Row) => Receive<'q, Producer, Worker, Spectrum, ProducerLoop<'q>>,
        DoneMsg(DoneMsg) => Receive<'q, Producer, Worker, Spectrum, End<'q, Producer>>,
    }
}

choice! {
    enum WorkerChoice<'q> for Worker {
        Row(Row) => Send<'q, Worker, Producer, Spectrum, WorkerLoop<'q>>,
        DoneMsg(DoneMsg) => End<'q, Worker>,
    }
}

fn make_rows() -> Vec<Vec<Complex>> {
    (0..ROWS)
        .map(|r| {
            (0..FFT_SIZE)
                .map(|i| Complex::new(((r * FFT_SIZE + i) % 13) as f64, 0.0))
                .collect()
        })
        .collect()
}

async fn producer(role: &mut Producer) -> rumpsteak::Result<Vec<Vec<Complex>>> {
    let mut rows = make_rows().into_iter();
    try_session(role, |s: ProducerStart<'_>| async move {
        let mut spectra = Vec::new();
        // Prime the pipeline with the first row.
        let mut s = s.send(Row(rows.next().expect("ROWS > 0"))).await?;
        // Keep one row in flight while collecting spectra.
        for row in rows {
            let pending = s.into_session().select(Row(row)).await?;
            let (Spectrum(spectrum), looped) = pending.receive().await?;
            spectra.push(spectrum);
            s = looped;
        }
        // Stop and drain the final outstanding spectrum.
        let drain = s.into_session().select(DoneMsg).await?;
        let (Spectrum(spectrum), end) = drain.receive().await?;
        spectra.push(spectrum);
        Ok((spectra, end))
    })
    .await
}

async fn worker(role: &mut Worker) -> rumpsteak::Result<usize> {
    let planner = Planner::new(FFT_SIZE);
    try_session(role, |mut s: WorkerLoop<'_>| async move {
        let mut served = 0;
        loop {
            match s.into_session().branch().await? {
                WorkerChoice::Row(Row(mut row), reply) => {
                    planner.fft(&mut row);
                    s = reply.send(Spectrum(row)).await?;
                    served += 1;
                }
                WorkerChoice::DoneMsg(DoneMsg, end) => return Ok((served, end)),
            }
        }
    })
    .await
}

fn main() {
    // Bottom-up verification (paper §2.2): serialise both executable
    // session types and check 2-multiparty compatibility.
    let system = kmc::System::new(vec![
        rumpsteak::serialize::<ProducerStart<'static>>().unwrap(),
        rumpsteak::serialize::<WorkerLoop<'static>>().unwrap(),
    ])
    .unwrap();
    let report = kmc::check(&system, 2).unwrap();
    println!(
        "pipelined FFT protocol verified: {} configurations explored",
        report.configurations
    );

    // Run the pipeline.
    let rt = executor::Runtime::with_default_threads();
    let (mut p, mut w) = connect();
    let producer_task = rt.spawn(async move { producer(&mut p).await });
    let worker_task = rt.spawn(async move { worker(&mut w).await });
    let spectra = rt.block_on(producer_task).unwrap().unwrap();
    let served = rt.block_on(worker_task).unwrap().unwrap();
    assert_eq!(served, ROWS);
    assert_eq!(spectra.len(), ROWS);

    // Cross-check against the sequential planner.
    let planner = Planner::new(FFT_SIZE);
    for (input, spectrum) in make_rows().into_iter().zip(&spectra) {
        let mut expected = input;
        planner.fft(&mut expected);
        for (x, y) in expected.iter().zip(spectrum) {
            assert!((x.re - y.re).abs() < 1e-9 && (x.im - y.im).abs() < 1e-9);
        }
    }
    println!("all {ROWS} spectra match the sequential FFT: OK");
}
