//! The bottom-up workflow (paper §2.2, Fig 1b): write the Rust APIs
//! first, serialise them into FSMs, and verify the whole system with
//! k-multiparty compatibility — no global type required.
//!
//! The protocol is a tiny map/reduce: a coordinator farms a pair of jobs
//! to two workers and combines the results, with the coordinator
//! AMR-optimised to dispatch both jobs before collecting either result.
//!
//! ```text
//! cargo run --example bottom_up
//! ```

use rumpsteak::{messages, roles, session, try_session, End, Receive, Send};

pub struct Job(pub u64);
pub struct Done(pub u64);

messages! {
    enum Label { Job(Job): u64, Done(Done): u64 }
}

roles! {
    message Label;
    Coordinator { w1: WorkerOne, w2: WorkerTwo },
    WorkerOne { c: Coordinator },
    WorkerTwo { c: Coordinator },
}

session! {
    // Sequential coordinator: dispatch w1, await w1, dispatch w2, await w2.
    type Sequential<'q> = Send<'q, Coordinator, WorkerOne, Job,
        Receive<'q, Coordinator, WorkerOne, Done,
        Send<'q, Coordinator, WorkerTwo, Job,
        Receive<'q, Coordinator, WorkerTwo, Done, End<'q, Coordinator>>>>>;
    // AMR-optimised: both jobs dispatched up front, results collected after.
    type Parallel<'q> = Send<'q, Coordinator, WorkerOne, Job,
        Send<'q, Coordinator, WorkerTwo, Job,
        Receive<'q, Coordinator, WorkerOne, Done,
        Receive<'q, Coordinator, WorkerTwo, Done, End<'q, Coordinator>>>>>;
}

/// Shared worker session shape, generic over the worker role.
pub type WorkerSession<'q, W, C> = Receive<'q, W, C, Job, Send<'q, W, C, Done, End<'q, W>>>;

async fn coordinator(role: &mut Coordinator) -> rumpsteak::Result<u64> {
    try_session(role, |s: Parallel<'_>| async move {
        let s = s.send(Job(21)).await?;
        let s = s.send(Job(2)).await?;
        let (Done(a), s) = s.receive().await?;
        let (Done(b), end) = s.receive().await?;
        Ok((a * b, end))
    })
    .await
}

async fn worker_one(role: &mut WorkerOne) -> rumpsteak::Result<()> {
    try_session(
        role,
        |s: WorkerSession<'_, WorkerOne, Coordinator>| async move {
            let (Job(n), s) = s.receive().await?;
            let end = s.send(Done(n + 21)).await?; // "compute"
            Ok(((), end))
        },
    )
    .await
}

async fn worker_two(role: &mut WorkerTwo) -> rumpsteak::Result<()> {
    try_session(
        role,
        |s: WorkerSession<'_, WorkerTwo, Coordinator>| async move {
            let (Job(n), s) = s.receive().await?;
            let end = s.send(Done(n >> 1)).await?;
            Ok(((), end))
        },
    )
    .await
}

fn main() {
    // Serialise the hand-written APIs into FSMs (Fig 1b: A_i → M'_i).
    let parallel = rumpsteak::serialize::<Parallel<'static>>().unwrap();
    let w1 = rumpsteak::serialize::<WorkerSession<'static, WorkerOne, Coordinator>>().unwrap();
    let w2 = rumpsteak::serialize::<WorkerSession<'static, WorkerTwo, Coordinator>>().unwrap();
    println!(
        "serialised coordinator FSM:\n{}",
        theory::dot::to_dot(&parallel)
    );

    // Global k-MC verification of the optimised system.
    let system = kmc::System::new(vec![parallel.clone(), w1, w2]).unwrap();
    let report = kmc::check(&system, 1).unwrap();
    println!(
        "system is 1-multiparty compatible ({} configurations)",
        report.configurations
    );

    // The hybrid view (§2.3): the parallel coordinator is also an
    // asynchronous subtype of the sequential one — the same conclusion
    // reached locally.
    let sequential = rumpsteak::serialize::<Sequential<'static>>().unwrap();
    assert!(subtyping::is_subtype(&parallel, &sequential, 4));
    println!("parallel coordinator <= sequential coordinator: OK");

    // And the broken variant — collecting w2's result before dispatching
    // its job — is caught by k-MC as a deadlock.
    let broken = theory::fsm::from_local(
        &"Coordinator".into(),
        &theory::local::parse(
            "WorkerOne!Job(u64) . WorkerTwo?Done(u64) . WorkerTwo!Job(u64) . WorkerOne?Done(u64) . end",
        )
        .unwrap(),
    )
    .unwrap();
    let w1 = rumpsteak::serialize::<WorkerSession<'static, WorkerOne, Coordinator>>().unwrap();
    let w2 = rumpsteak::serialize::<WorkerSession<'static, WorkerTwo, Coordinator>>().unwrap();
    let bad_system = kmc::System::new(vec![broken, w1, w2]).unwrap();
    assert!(kmc::check(&bad_system, 1).is_err());
    println!("deadlocking variant rejected by k-MC: OK");

    // Run the verified system.
    let rt = executor::Runtime::with_default_threads();
    let (mut c, mut w1, mut w2) = connect();
    let coordinator_task = rt.spawn(async move { coordinator(&mut c).await });
    let w1_task = rt.spawn(async move { worker_one(&mut w1).await });
    let w2_task = rt.spawn(async move { worker_two(&mut w2).await });
    let result = rt.block_on(coordinator_task).unwrap().unwrap();
    rt.block_on(w1_task).unwrap().unwrap();
    rt.block_on(w2_task).unwrap().unwrap();
    println!("combined result: {result}");
    assert_eq!(result, 42);
}
