//! The alternating bit protocol (paper Appendix B.4, Table 1).
//!
//! A sender transmits data messages tagged with a bit (`d0`/`d1`); the
//! receiver acknowledges with the matching bit (`a0`/`a1`). The paper
//! verifies that the protocol-specification type of the receiver is an
//! asynchronous subtype of its projection — reproduced here — and the
//! processes then run a bounded transfer.
//!
//! ```text
//! cargo run --example alternating_bit
//! ```

use rumpsteak::{
    choice, messages, roles, session, try_session, Branch, End, IntoSession, Receive, Select, Send,
};

pub struct D0(pub u32);
pub struct D1(pub u32);
pub struct A0;
pub struct A1;
pub struct Done;

messages! {
    enum Label { D0(D0): u32, D1(D1): u32, A0(A0), A1(A1), Done(Done) }
}

roles! {
    message Label;
    Sender { r: Receiver },
    Receiver { s: Sender },
}

session! {
    // Sender alternates d0/d1 frames, eventually signalling Done in
    // place of a d0 frame.
    struct SendOdd<'q> for Sender = Select<'q, Sender, Receiver, SenderChoice<'q>>;
    struct SendEven<'q> for Sender =
        Send<'q, Sender, Receiver, D1, Receive<'q, Sender, Receiver, A1, SendOdd<'q>>>;
    // Receiver: the specification type &{ s?d0.s!a0, s?d1.s!a1, s?done }.
    struct Recv<'q> for Receiver = Branch<'q, Receiver, Sender, ReceiverChoice<'q>>;
}

choice! {
    enum SenderChoice<'q> for Sender {
        D0(D0) => Receive<'q, Sender, Receiver, A0, SendEven<'q>>,
        Done(Done) => End<'q, Sender>,
    }
}

choice! {
    enum ReceiverChoice<'q> for Receiver {
        D0(D0) => Send<'q, Receiver, Sender, A0, Recv<'q>>,
        D1(D1) => Send<'q, Receiver, Sender, A1, Recv<'q>>,
        Done(Done) => End<'q, Receiver>,
    }
}

async fn sender(role: &mut Sender, frames: u32) -> rumpsteak::Result<()> {
    try_session(role, |mut s: SendOdd<'_>| async move {
        let mut sent = 0;
        loop {
            if sent >= frames {
                let end = s.into_session().select(Done).await?;
                return Ok(((), end));
            }
            let s0 = s.into_session().select(D0(sent)).await?;
            let (A0, even) = s0.receive().await?;
            let s1 = even.into_session().send(D1(sent + 1)).await?;
            let (A1, odd) = s1.receive().await?;
            s = odd;
            sent += 2;
        }
    })
    .await
}

async fn receiver(role: &mut Receiver) -> rumpsteak::Result<Vec<u32>> {
    try_session(role, |mut s: Recv<'_>| async move {
        let mut frames = Vec::new();
        loop {
            match s.into_session().branch().await? {
                ReceiverChoice::D0(D0(v), ack) => {
                    frames.push(v);
                    s = ack.send(A0).await?;
                }
                ReceiverChoice::D1(D1(v), ack) => {
                    frames.push(v);
                    s = ack.send(A1).await?;
                }
                ReceiverChoice::Done(Done, end) => return Ok((frames, end)),
            }
        }
    })
    .await
}

fn main() {
    // Appendix B.4: the specification type of the receiver is a subtype
    // of its projection from the global type.
    let projected = theory::local::parse(
        "rec t . s?d0 . +{ s!a0 . rec u . s?d1 . +{ s!a0.u, s!a1.t }, s!a1.t }",
    )
    .unwrap();
    let specification = theory::local::parse("rec t . &{ s?d0.s!a0.t, s?d1.s!a1.t }").unwrap();
    assert!(subtyping::is_subtype_local(&specification, &projected, 4).unwrap());
    println!("alternating-bit receiver specification verified: OK");

    // Bottom-up: the executable sender/receiver APIs form a compatible
    // system under k-MC.
    let system = kmc::System::new(vec![
        rumpsteak::serialize::<SendOdd<'static>>().unwrap(),
        rumpsteak::serialize::<Recv<'static>>().unwrap(),
    ])
    .unwrap();
    kmc::check(&system, 2).unwrap();
    println!("executable APIs are 2-multiparty compatible: OK");

    // Run a bounded transfer.
    let rt = executor::Runtime::with_default_threads();
    let (mut tx, mut rx) = connect();
    let sender_task = rt.spawn(async move { sender(&mut tx, 6).await });
    let receiver_task = rt.spawn(async move { receiver(&mut rx).await });
    rt.block_on(sender_task).unwrap().unwrap();
    let frames = rt.block_on(receiver_task).unwrap().unwrap();
    println!("receiver got frames {frames:?}");
    assert_eq!(frames, vec![0, 1, 2, 3, 4, 5]);
}
