//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (§4):
//!
//! * [`protocols`] — runnable implementations of the Fig 6 workloads
//!   (streaming, double buffering, FFT) in Rumpsteak, Sesh-style,
//!   MultiCrusty-style and Ferrite-style frameworks,
//! * [`verification`] — generators for the Fig 7 workloads (streaming
//!   unrolls, nested choice, ring, k-buffering) targeting the subtyping
//!   algorithm, k-MC and SoundBinary,
//! * [`scaling`] — executor-scaling workloads (token ring, all-to-all
//!   mesh) behind `fig6 --json`, which tracks scheduler throughput per
//!   protocol × thread count in `BENCH_fig6.json`,
//! * [`channels`] — channel-layer microbenchmarks (SPSC ping-pong and
//!   burst throughput vs the mutex-MPSC baseline), also swept by
//!   `fig6 --json`,
//! * [`transport`] — networked-transport microbenchmarks (framed
//!   loopback TCP/UDS ping-pong and k-bounded burst) measuring the
//!   distributed backend's wire path, also swept by `fig6 --json`,
//! * [`edge_costs`] — the per-link-class cost micro-profile behind
//!   `fig6 --json --edge-costs`: per-message send/recv base cost and
//!   per-byte slope for each class, the measured table
//!   `rumpsteak-gen --optimise --costs` ranks AMR candidates with,
//! * [`meta`] — provenance metadata (git revision, rustc version,
//!   timestamp) stamped into the JSON artifacts,
//! * [`table1`] — the expressiveness matrix of Table 1,
//! * [`timing`] — a small wall-clock harness used by the `fig6`/`fig7`
//!   binaries to print the same rows as Appendix C.
//!
//! Criterion benches under `benches/` regenerate each figure; the
//! `fig6`, `fig7` and `table1` binaries print the corresponding tables.

pub mod channels;
pub mod edge_costs;
pub mod meta;
pub mod protocols;
pub mod scaling;
pub mod table1;
pub mod timing;
pub mod transport;
pub mod verification;
