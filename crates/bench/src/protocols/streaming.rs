//! The streaming protocol (paper §4.1, Fig 6 left):
//!
//! ```text
//! G = μx. t → s : { ready. s → t : { value.x, stop.end } }
//! ```
//!
//! The sink requests with `ready`, the source answers with `value` until
//! it decides to `stop`. The optimised Rumpsteak source unrolls the first
//! [`UNROLL`] values, sending them before consuming any `ready` (verified
//! safe by the subtyping algorithm; see `verification::streaming`).

use rumpsteak::{
    choice, messages, roles, session, try_session, Branch, End, IntoSession, Receive, Select, Send,
};

use baselines::ferrite::{AsyncSession, EndOnce, RecvOnce, SendOnce};
use baselines::sesh::{self, Branching, Choose, Offer, Session as SeshSession};

/// Number of values the optimised source unrolls (the paper uses 5).
pub const UNROLL: u32 = 5;

/// `ready` request label.
pub struct Ready;
/// A streamed value.
pub struct Value(pub i32);
/// Termination label.
pub struct Stop;

messages! {
    // `wire` derives the byte format, so the same protocol also runs
    // over the distributed transport (see `bench::transport` and the
    // two-process example).
    wire enum Label { Ready(Ready), Value(Value): i32, Stop(Stop) }
}

roles! {
    message Label;
    // Verified bounds over *both* sources sharing these roles: the
    // optimised source keeps UNROLL values in flight plus the one
    // answering the sink's outstanding `ready`; symmetrically, while the
    // sink drains those queued values it issues one `ready` per value on
    // top of its leading one, so both directions peak at UNROLL + 1.
    // Cross-checked against the kmc-computed depths in
    // `tests/telemetry.rs`.
    bounds { S -> T: 6, T -> S: 6 };
    S { t: T },
    T { s: S },
}

session! {
    struct Source<'q> for S = Receive<'q, S, T, Ready, Select<'q, S, T, SourceChoice<'q>>>;
    struct Sink<'q> for T = Send<'q, T, S, Ready, Branch<'q, T, S, SinkChoice<'q>>>;
}

choice! {
    enum SourceChoice<'q> for S {
        Value(Value) => Source<'q>,
        Stop(Stop) => End<'q, S>,
    }
}

choice! {
    enum SinkChoice<'q> for T {
        Value(Value) => Sink<'q>,
        Stop(Stop) => End<'q, T>,
    }
}

/// Projected (unoptimised) source: answer one `ready` at a time.
async fn source(role: &mut S, count: u32) -> rumpsteak::Result<()> {
    try_session(role, |mut s: Source<'_>| async move {
        let mut sent = 0;
        loop {
            let (Ready, choice) = s.into_session().receive().await?;
            if sent == count {
                let end = choice.select(Stop).await?;
                return Ok(((), end));
            }
            s = choice.select(Value(sent as i32)).await?;
            sent += 1;
        }
    })
    .await
}

async fn sink(role: &mut T) -> rumpsteak::Result<u64> {
    try_session(role, |mut s: Sink<'_>| async move {
        let mut sum = 0u64;
        loop {
            let branch = s.into_session().send(Ready).await?;
            match branch.branch().await? {
                SinkChoice::Value(Value(v), next) => {
                    sum += v as u64;
                    s = next;
                }
                SinkChoice::Stop(Stop, end) => return Ok((sum, end)),
            }
        }
    })
    .await
}

// The optimised source session: UNROLL values sent ahead, then the
// ordinary loop; the Stop branch drains the UNROLL outstanding `ready`s.
session! {
    type OptSource<'q> = Send<'q, S, T, Value, Send<'q, S, T, Value,
        Send<'q, S, T, Value, Send<'q, S, T, Value, Send<'q, S, T, Value,
        OptSourceLoop<'q>>>>>>;
    struct OptSourceLoop<'q> for S =
        Receive<'q, S, T, Ready, Select<'q, S, T, OptSourceChoice<'q>>>;
    type Drain<'q> = Receive<'q, S, T, Ready, Receive<'q, S, T, Ready,
        Receive<'q, S, T, Ready, Receive<'q, S, T, Ready,
        Receive<'q, S, T, Ready, End<'q, S>>>>>>;
}

choice! {
    enum OptSourceChoice<'q> for S {
        Value(Value) => OptSourceLoop<'q>,
        Stop(Stop) => Drain<'q>,
    }
}

/// AMR-optimised source: streams [`UNROLL`] values before the first
/// `ready` is consumed (requires `count >= UNROLL`).
async fn source_optimised(role: &mut S, count: u32) -> rumpsteak::Result<()> {
    assert!(
        count >= UNROLL,
        "optimised source pre-sends {UNROLL} values"
    );
    try_session(role, |s: OptSource<'_>| async move {
        let s = s.send(Value(0)).await?;
        let s = s.send(Value(1)).await?;
        let s = s.send(Value(2)).await?;
        let s = s.send(Value(3)).await?;
        let mut s = s.send(Value(4)).await?;
        let mut sent = UNROLL;
        loop {
            let (Ready, choice) = s.into_session().receive().await?;
            if sent == count {
                let drain = choice.select(Stop).await?;
                let (Ready, drain) = drain.receive().await?;
                let (Ready, drain) = drain.receive().await?;
                let (Ready, drain) = drain.receive().await?;
                let (Ready, drain) = drain.receive().await?;
                let (Ready, end) = drain.receive().await?;
                return Ok(((), end));
            }
            s = choice.select(Value(sent as i32)).await?;
            sent += 1;
        }
    })
    .await
}

/// Expected checksum: sum of 0..count.
pub fn expected(count: u32) -> u64 {
    (0..count as u64).sum()
}

/// Runs the protocol on the Rumpsteak runtime; returns the sink's sum.
pub fn run_rumpsteak(rt: &executor::Runtime, count: u32, optimised: bool) -> u64 {
    let (mut s, mut t) = connect();
    let source_task = rt.spawn(async move {
        if optimised {
            source_optimised(&mut s, count).await
        } else {
            source(&mut s, count).await
        }
    });
    let sink_task = rt.spawn(async move { sink(&mut t).await });
    rt.block_on(source_task).unwrap().unwrap();
    rt.block_on(sink_task).unwrap().unwrap()
}

// ---------------------------------------------------------------------
// Sesh-style: synchronous binary sessions, fresh channel per message.
// Recursive protocols need wrapper structs since type aliases cannot be
// cyclic; the originals use the same trick.
// ---------------------------------------------------------------------

/// Sink endpoint of one iteration: send ready, then offer value/stop.
struct SeshSink(sesh::Send<(), Offer<sesh::Recv<i32, SeshSink>, sesh::End>>);

/// Source endpoint: receive ready, then choose value/stop.
struct SeshSource(sesh::Recv<(), Choose<sesh::Send<i32, SeshSource>, sesh::End>>);

impl SeshSession for SeshSink {
    type Dual = SeshSource;

    fn new_pair() -> (Self, Self::Dual) {
        let (sink, source) = sesh::Send::new_pair();
        (SeshSink(sink), SeshSource(source))
    }
}

impl SeshSession for SeshSource {
    type Dual = SeshSink;

    fn new_pair() -> (Self, Self::Dual) {
        let (sink, source) = SeshSink::new_pair();
        (source, sink)
    }
}

/// Runs the streaming protocol with Sesh-style sessions on OS threads.
pub fn run_sesh(count: u32) -> u64 {
    fn source_loop(mut s: SeshSource, count: u32) {
        let mut sent = 0;
        loop {
            // Receive ready, then choose.
            let ((), choice) = s.0.recv().unwrap();
            if sent == count {
                choice.choose_right().unwrap().close();
                return;
            }
            let next = choice.choose_left().unwrap();
            s = next.send(sent as i32).unwrap();
            sent += 1;
        }
    }

    let mut sink = sesh::fork::<SeshSource, _>(move |s| source_loop(s, count));
    let mut sum = 0u64;
    loop {
        let offer = sink.0.send(()).unwrap();
        match offer.offer().unwrap() {
            Branching::Left(value) => {
                let (v, next) = value.recv().unwrap();
                sum += v as u64;
                sink = next;
            }
            Branching::Right(end) => {
                end.close();
                return sum;
            }
        }
    }
}

// ---------------------------------------------------------------------
// MultiCrusty-style: synchronous mesh links (2 roles here).
// ---------------------------------------------------------------------

/// Wire message for the untyped-label sync baseline.
enum SyncMsg {
    Ready,
    Value(i32),
    Stop,
}

/// Runs the streaming protocol over MultiCrusty-style rendezvous links.
pub fn run_multicrusty(count: u32) -> u64 {
    let mut roles = baselines::mpst::mesh::<SyncMsg, 2>();
    let sink_links = roles.pop().unwrap();
    let source_links = roles.pop().unwrap();

    let source = std::thread::spawn(move || {
        let link = &source_links[0];
        let mut sent = 0;
        loop {
            match link.recv().unwrap() {
                SyncMsg::Ready => {}
                _ => panic!("protocol violation"),
            }
            if sent == count {
                link.send(SyncMsg::Stop).unwrap();
                return;
            }
            link.send(SyncMsg::Value(sent as i32)).unwrap();
            sent += 1;
        }
    });

    let link = &sink_links[0];
    let mut sum = 0u64;
    loop {
        link.send(SyncMsg::Ready).unwrap();
        match link.recv().unwrap() {
            SyncMsg::Value(v) => sum += v as u64,
            SyncMsg::Stop => break,
            SyncMsg::Ready => panic!("protocol violation"),
        }
    }
    source.join().unwrap();
    sum
}

// ---------------------------------------------------------------------
// Ferrite-style: asynchronous, but per-step oneshot channels and boxed
// recursive futures.
// ---------------------------------------------------------------------

type FerriteSink = SendOnce<(), RecvOnce<Option<i32>, EndOnce>>;

/// Runs the streaming protocol with Ferrite-style sessions on the
/// asynchronous runtime.
pub fn run_ferrite(rt: &executor::Runtime, count: u32) -> u64 {
    use std::future::Future;
    use std::pin::Pin;

    // Recursion through boxed futures, as Ferrite requires: each
    // iteration creates a fresh binary session for the request/response.
    fn sink_loop(
        source: executor::channel::Sender<<FerriteSink as AsyncSession>::Dual>,
        sum: u64,
    ) -> Pin<Box<dyn Future<Output = u64> + core::marker::Send>> {
        Box::pin(async move {
            let (request, serve) = FerriteSink::new_pair();
            if source.send(serve).is_err() {
                return sum;
            }
            let reply = request.send(());
            match reply.recv().await {
                Ok((Some(v), end)) => {
                    end.close();
                    sink_loop(source, sum + v as u64).await
                }
                Ok((None, end)) => {
                    end.close();
                    sum
                }
                Err(_) => sum,
            }
        })
    }

    let (tx, mut rx) = executor::channel::unbounded::<<FerriteSink as AsyncSession>::Dual>();
    let source_task = rt.spawn(async move {
        let mut sent = 0u32;
        while let Some(session) = rx.recv().await {
            let ((), reply) = match session.recv().await {
                Ok(step) => step,
                Err(_) => return,
            };
            if sent == count {
                reply.send(None).close();
                return;
            }
            reply.send(Some(sent as i32)).close();
            sent += 1;
        }
    });
    let sum = rt.block_on(sink_loop(tx, 0));
    rt.block_on(source_task).unwrap();
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_frameworks_agree() {
        let rt = executor::Runtime::new(2);
        let count = 17;
        let expected = expected(count);
        assert_eq!(run_rumpsteak(&rt, count, false), expected);
        assert_eq!(run_rumpsteak(&rt, count, true), expected);
        assert_eq!(run_sesh(count), expected);
        assert_eq!(run_multicrusty(count), expected);
        assert_eq!(run_ferrite(&rt, count), expected);
    }

    /// Bottom-up workflow (paper §2.2): serialise the hand-written
    /// optimised source and the sink from their Rust types and check the
    /// whole system with k-MC. The optimised source pre-sends values and
    /// drains `ready`s after `stop`, which is a whole-protocol property —
    /// exactly what the global analysis is for.
    #[test]
    fn optimised_source_verified_bottom_up() {
        let source = rumpsteak::serialize::<OptSource<'static>>().unwrap();
        let sink = rumpsteak::serialize::<Sink<'static>>().unwrap();
        let system = kmc::System::new(vec![source, sink]).unwrap();
        kmc::check(&system, UNROLL as usize + 2).unwrap();
    }

    /// Top-down workflow sanity: the *projected* source serialised from
    /// its Rust type matches the νScr projection of the global type.
    #[test]
    fn projected_source_serialises_to_projection() {
        let api = rumpsteak::serialize::<Source<'static>>().unwrap();
        let projected = theory::fsm::from_local(
            &"S".into(),
            &theory::local::parse("rec x . T?Ready . +{ T!Value(i32).x, T!Stop.end }").unwrap(),
        )
        .unwrap();
        assert!(subtyping::is_subtype(&api, &projected, 4));
        assert!(subtyping::is_subtype(&projected, &api, 4));
    }

    #[test]
    fn zero_values_stops_immediately() {
        let rt = executor::Runtime::new(2);
        assert_eq!(run_rumpsteak(&rt, 0, false), 0);
        assert_eq!(run_sesh(0), 0);
    }
}
