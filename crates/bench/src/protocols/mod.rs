//! Runnable implementations of the Fig 6 runtime workloads.
//!
//! Each submodule implements one protocol in every framework compared by
//! the paper and exposes `run_*` entry points returning a checksum so the
//! benchmarks can verify all implementations compute the same thing.

pub mod double_buffering;
pub mod fft8;
pub mod streaming;
