//! The double buffering protocol (paper §1–§2, Fig 6 middle).
//!
//! A source writes buffers of `n` values through a kernel to a sink; the
//! benchmark runs exactly **two iterations** (both buffers filled, then
//! termination), parameterised by the buffer size.
//!
//! The optimised kernel sends both `ready`s to the source up front
//! (Fig 4b), letting the source prepare the second buffer while the sink
//! drains the first — the asynchronous queue acts as the second buffer.

use rumpsteak::{messages, roles, session, try_session, End, Receive, Send};

use baselines::ferrite::{AsyncSession, EndOnce, RecvOnce, SendOnce};
use baselines::mpst::{link_index, mesh};
use baselines::sesh::{self, Session as SeshSession};

/// A buffer of values travelling through the pipeline.
pub type Buffer = Vec<i32>;

/// `ready` label.
pub struct Ready;
/// A full buffer.
pub struct Value(pub Buffer);

messages! {
    // `wire` derives the byte format (`Buffer` encodes as a u32 count
    // plus little-endian elements), so the wire round-trip property
    // test covers a non-trivial payload.
    wire enum Label { Ready(Ready), Value(Value): buffer }
}

roles! {
    message Label;
    // Verified bounds over both kernels sharing these roles: the
    // optimised kernel (Fig 4b) fronts both `ready`s, so two readys and
    // then two values can be in flight on the k↔s link; the sink side
    // stays strictly alternating. Cross-checked against the
    // kmc-computed depths in `tests/telemetry.rs`.
    bounds { K -> S: 2, S -> K: 2, K -> T: 1, T -> K: 1 };
    K { s: S, t: T },
    S { k: K },
    T { k: K },
}

session! {
    // Two unrolled iterations so the protocol terminates (paper §4.1).
    type Source<'q> = Receive<'q, S, K, Ready, Send<'q, S, K, Value,
        Receive<'q, S, K, Ready, Send<'q, S, K, Value, End<'q, S>>>>>;
    type Kernel<'q> = Send<'q, K, S, Ready, Receive<'q, K, S, Value,
        Receive<'q, K, T, Ready, Send<'q, K, T, Value,
        Send<'q, K, S, Ready, Receive<'q, K, S, Value,
        Receive<'q, K, T, Ready, Send<'q, K, T, Value, End<'q, K>>>>>>>>>;
    // Fig 4b: both `ready`s to the source are sent before anything else.
    type KernelOpt<'q> = Send<'q, K, S, Ready, Send<'q, K, S, Ready,
        Receive<'q, K, S, Value, Receive<'q, K, T, Ready,
        Send<'q, K, T, Value, Receive<'q, K, S, Value,
        Receive<'q, K, T, Ready, Send<'q, K, T, Value, End<'q, K>>>>>>>>>;
    type Sink<'q> = Send<'q, T, K, Ready, Receive<'q, T, K, Value,
        Send<'q, T, K, Ready, Receive<'q, T, K, Value, End<'q, T>>>>>;
}

fn make_buffer(size: usize, fill: i32) -> Buffer {
    vec![fill; size]
}

fn digest(buffer: &Buffer) -> u64 {
    buffer.iter().map(|&v| v as u64).sum()
}

async fn source(role: &mut S, size: usize) -> rumpsteak::Result<()> {
    try_session(role, |s: Source<'_>| async move {
        let (Ready, s) = s.receive().await?;
        let s = s.send(Value(make_buffer(size, 1))).await?;
        let (Ready, s) = s.receive().await?;
        let end = s.send(Value(make_buffer(size, 2))).await?;
        Ok(((), end))
    })
    .await
}

async fn kernel(role: &mut K) -> rumpsteak::Result<()> {
    try_session(role, |s: Kernel<'_>| async move {
        let s = s.send(Ready).await?;
        let (Value(first), s) = s.receive().await?;
        let (Ready, s) = s.receive().await?;
        let s = s.send(Value(first)).await?;
        let s = s.send(Ready).await?;
        let (Value(second), s) = s.receive().await?;
        let (Ready, s) = s.receive().await?;
        let end = s.send(Value(second)).await?;
        Ok(((), end))
    })
    .await
}

async fn kernel_optimised(role: &mut K) -> rumpsteak::Result<()> {
    try_session(role, |s: KernelOpt<'_>| async move {
        // Both readys first: the source fills buffer 2 while the sink is
        // still reading buffer 1.
        let s = s.send(Ready).await?;
        let s = s.send(Ready).await?;
        let (Value(first), s) = s.receive().await?;
        let (Ready, s) = s.receive().await?;
        let s = s.send(Value(first)).await?;
        let (Value(second), s) = s.receive().await?;
        let (Ready, s) = s.receive().await?;
        let end = s.send(Value(second)).await?;
        Ok(((), end))
    })
    .await
}

async fn sink(role: &mut T) -> rumpsteak::Result<u64> {
    try_session(role, |s: Sink<'_>| async move {
        let s = s.send(Ready).await?;
        let (Value(first), s) = s.receive().await?;
        let s = s.send(Ready).await?;
        let (Value(second), end) = s.receive().await?;
        Ok((digest(&first) + digest(&second), end))
    })
    .await
}

/// Expected checksum for buffer size `n`: one buffer of 1s + one of 2s.
pub fn expected(size: usize) -> u64 {
    (size + 2 * size) as u64
}

/// Runs two iterations on the Rumpsteak runtime; returns the sink digest.
pub fn run_rumpsteak(rt: &executor::Runtime, size: usize, optimised: bool) -> u64 {
    let (mut k, mut s, mut t) = connect();
    let kernel_task = rt.spawn(async move {
        if optimised {
            kernel_optimised(&mut k).await
        } else {
            kernel(&mut k).await
        }
    });
    let source_task = rt.spawn(async move { source(&mut s, size).await });
    let sink_task = rt.spawn(async move { sink(&mut t).await });
    rt.block_on(kernel_task).unwrap().unwrap();
    rt.block_on(source_task).unwrap().unwrap();
    rt.block_on(sink_task).unwrap().unwrap()
}

// ---------------------------------------------------------------------
// Sesh-style: binary sessions between k↔s and k↔t on OS threads (no
// multiparty guarantee, as in the paper's Table 1).
// ---------------------------------------------------------------------

type KernelToSource =
    sesh::Send<(), sesh::Recv<Buffer, sesh::Send<(), sesh::Recv<Buffer, sesh::End>>>>;
type KernelToSink =
    sesh::Recv<(), sesh::Send<Buffer, sesh::Recv<(), sesh::Send<Buffer, sesh::End>>>>;

/// Runs two iterations with Sesh-style binary sessions.
pub fn run_sesh(size: usize) -> u64 {
    // Source thread: dual of KernelToSource.
    let to_source = sesh::fork::<<KernelToSource as SeshSession>::Dual, _>(move |s| {
        let ((), s) = s.recv().unwrap();
        let s = s.send(make_buffer(size, 1)).unwrap();
        let ((), s) = s.recv().unwrap();
        let end = s.send(make_buffer(size, 2)).unwrap();
        end.close();
    });

    // Sink thread computes the digest and reports it over a channel.
    let (result_tx, result_rx) = crossbeam::channel::bounded(1);
    let to_sink = sesh::fork::<<KernelToSink as SeshSession>::Dual, _>(move |s| {
        let s = s.send(()).unwrap();
        let (first, s) = s.recv().unwrap();
        let s = s.send(()).unwrap();
        let (second, end) = s.recv().unwrap();
        end.close();
        result_tx.send(digest(&first) + digest(&second)).unwrap();
    });

    // Kernel on the current thread.
    let s = to_source.send(()).unwrap();
    let (first, s) = s.recv().unwrap();
    let ((), t) = to_sink.recv().unwrap();
    let t = t.send(first).unwrap();
    let s = s.send(()).unwrap();
    let (second, s_end) = s.recv().unwrap();
    let ((), t) = t.recv().unwrap();
    let t_end = t.send(second).unwrap();
    s_end.close();
    t_end.close();
    result_rx.recv().unwrap()
}

// ---------------------------------------------------------------------
// MultiCrusty-style: synchronous multiparty mesh.
// ---------------------------------------------------------------------

enum SyncMsg {
    Ready,
    Value(Buffer),
}

/// Runs two iterations over the synchronous multiparty mesh.
/// Role indices: 0 = kernel, 1 = source, 2 = sink.
pub fn run_multicrusty(size: usize) -> u64 {
    let mut roles = mesh::<SyncMsg, 3>();
    let sink_links = roles.pop().unwrap();
    let source_links = roles.pop().unwrap();
    let kernel_links = roles.pop().unwrap();

    let source = std::thread::spawn(move || {
        let k = &source_links[link_index(1, 0)];
        for fill in [1, 2] {
            match k.recv().unwrap() {
                SyncMsg::Ready => {}
                _ => panic!("protocol violation"),
            }
            k.send(SyncMsg::Value(make_buffer(size, fill))).unwrap();
        }
    });
    let sink = std::thread::spawn(move || {
        let k = &sink_links[link_index(2, 0)];
        let mut total = 0;
        for _ in 0..2 {
            k.send(SyncMsg::Ready).unwrap();
            match k.recv().unwrap() {
                SyncMsg::Value(buffer) => total += digest(&buffer),
                _ => panic!("protocol violation"),
            }
        }
        total
    });

    let s = &kernel_links[link_index(0, 1)];
    let t = &kernel_links[link_index(0, 2)];
    for _ in 0..2 {
        s.send(SyncMsg::Ready).unwrap();
        let buffer = match s.recv().unwrap() {
            SyncMsg::Value(buffer) => buffer,
            _ => panic!("protocol violation"),
        };
        match t.recv().unwrap() {
            SyncMsg::Ready => {}
            _ => panic!("protocol violation"),
        }
        t.send(SyncMsg::Value(buffer)).unwrap();
    }
    source.join().unwrap();
    sink.join().unwrap()
}

// ---------------------------------------------------------------------
// Ferrite-style: asynchronous per-step oneshot sessions, binary pairs.
// ---------------------------------------------------------------------

type FerriteKs = SendOnce<(), RecvOnce<Buffer, SendOnce<(), RecvOnce<Buffer, EndOnce>>>>;
type FerriteKt = RecvOnce<(), SendOnce<Buffer, RecvOnce<(), SendOnce<Buffer, EndOnce>>>>;

/// Runs two iterations with Ferrite-style async binary sessions.
pub fn run_ferrite(rt: &executor::Runtime, size: usize) -> u64 {
    let (ks, source_end) = FerriteKs::new_pair();
    let (kt, sink_end) = FerriteKt::new_pair();

    let source_task = rt.spawn(async move {
        let ((), s) = source_end.recv().await.unwrap();
        let s = s.send(make_buffer(size, 1));
        let ((), s) = s.recv().await.unwrap();
        s.send(make_buffer(size, 2)).close();
    });
    let sink_task = rt.spawn(async move {
        let s = sink_end.send(());
        let (first, s) = s.recv().await.unwrap();
        let s = s.send(());
        let (second, end) = s.recv().await.unwrap();
        end.close();
        digest(&first) + digest(&second)
    });
    let kernel_task = rt.spawn(async move {
        let s = ks.send(());
        let (first, s) = s.recv().await.unwrap();
        let ((), t) = kt.recv().await.unwrap();
        let t = t.send(first);
        let s = s.send(());
        let (second, s_end) = s.recv().await.unwrap();
        let ((), t) = t.recv().await.unwrap();
        t.send(second).close();
        s_end.close();
    });

    rt.block_on(kernel_task).unwrap();
    rt.block_on(source_task).unwrap();
    rt.block_on(sink_task).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_frameworks_agree() {
        let rt = executor::Runtime::new(2);
        let size = 100;
        let expected = expected(size);
        assert_eq!(run_rumpsteak(&rt, size, false), expected);
        assert_eq!(run_rumpsteak(&rt, size, true), expected);
        assert_eq!(run_sesh(size), expected);
        assert_eq!(run_multicrusty(size), expected);
        assert_eq!(run_ferrite(&rt, size), expected);
    }

    /// The §3 worked example as a hybrid-workflow check: the optimised
    /// kernel *type used by the runtime* is an asynchronous subtype of
    /// the νScr projection.
    #[test]
    fn optimised_kernel_is_verified_subtype() {
        let optimised = rumpsteak::serialize::<KernelOpt<'static>>().unwrap();
        let projected = rumpsteak::serialize::<Kernel<'static>>().unwrap();
        assert!(subtyping::is_subtype(&optimised, &projected, 8));
        // The converse fails: the projection owes the source a `ready`.
        assert!(!subtyping::is_subtype(&projected, &optimised, 8));
    }

    /// The paper's automation claim, end to end on the *runtime* types:
    /// starting from the serialised projected kernel, the AMR optimiser
    /// derives a reordering FSM-equivalent to the hand-written
    /// `KernelOpt` (both readys hoisted to the front) among its verified
    /// candidates.
    #[test]
    fn optimiser_rediscovers_kernel_opt_from_serialized_type() {
        let projected = rumpsteak::serialize::<Kernel<'static>>().unwrap();
        let target = rumpsteak::serialize::<KernelOpt<'static>>().unwrap();
        let outcome =
            optimiser::optimise_fsm(&projected, &optimiser::Config::with_depth(2)).unwrap();
        assert!(
            outcome.candidates.iter().any(|c| c.fsm == target),
            "optimiser no longer derives KernelOpt (generated {}, verified {})",
            outcome.generated,
            outcome.candidates.len()
        );
    }

    /// Bottom-up: the whole optimised system is 2-multiparty compatible.
    #[test]
    fn optimised_system_is_kmc_safe() {
        let system = kmc::System::new(vec![
            rumpsteak::serialize::<KernelOpt<'static>>().unwrap(),
            rumpsteak::serialize::<Source<'static>>().unwrap(),
            rumpsteak::serialize::<Sink<'static>>().unwrap(),
        ])
        .unwrap();
        kmc::check(&system, 2).unwrap();
    }
}
