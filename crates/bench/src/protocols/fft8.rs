//! The 8-process FFT (paper §4.1, Fig 6 right).
//!
//! Eight processes each own one column of an `n × 8` matrix and jointly
//! compute `n` independent 8-point FFTs by three butterfly stages
//! (partner distances 1, 2, 4), exchanging whole columns by message
//! passing. The sequential baseline is the RustFFT stand-in from the
//! `fft` crate.
//!
//! Message order within an exchange is send-then-receive for *both*
//! parties — an asynchronous message reordering that only works because
//! channels are non-blocking queues; the rendezvous baselines must order
//! lower-sends-first to avoid deadlock.

use fft::{butterfly_stage, stage_twiddle, Complex};
use rumpsteak::{messages, roles, try_session, End, Receive, Role, Route, Send};

use baselines::mpst::{link_index, mesh};
use baselines::sesh::{self, Session as SeshSession};

/// A column exchanged between butterfly partners.
pub struct Data(pub Vec<Complex>);

messages! {
    enum FftLabel { Data(Data): column }
}

roles! {
    message FftLabel;
    // Each butterfly pair exchanges exactly one column per stage and a
    // pair only meets in one stage, so every directed channel carries at
    // most one message (k-MC exhaustive at k = 1). Cross-checked against
    // the kmc-computed depths in `tests/telemetry.rs`.
    bounds {
        P0 -> P1: 1, P1 -> P0: 1, P0 -> P2: 1, P2 -> P0: 1,
        P0 -> P4: 1, P4 -> P0: 1, P1 -> P3: 1, P3 -> P1: 1,
        P1 -> P5: 1, P5 -> P1: 1, P2 -> P3: 1, P3 -> P2: 1,
        P2 -> P6: 1, P6 -> P2: 1, P3 -> P7: 1, P7 -> P3: 1,
        P4 -> P5: 1, P5 -> P4: 1, P4 -> P6: 1, P6 -> P4: 1,
        P5 -> P7: 1, P7 -> P5: 1, P6 -> P7: 1, P7 -> P6: 1
    };
    P0 { d1: P1, d2: P2, d4: P4 },
    P1 { d1: P0, d2: P3, d4: P5 },
    P2 { d1: P3, d2: P0, d4: P6 },
    P3 { d1: P2, d2: P1, d4: P7 },
    P4 { d1: P5, d2: P6, d4: P0 },
    P5 { d1: P4, d2: P7, d4: P1 },
    P6 { d1: P7, d2: P4, d4: P2 },
    P7 { d1: P6, d2: P5, d4: P3 },
}

/// One stage: send my column, receive the partner's.
pub type Exchange<'q, Q, P, S> = Send<'q, Q, P, Data, Receive<'q, Q, P, Data, S>>;

/// The whole per-process session: three exchanges then end.
pub type FftSession<'q, Q, A, B, C> =
    Exchange<'q, Q, A, Exchange<'q, Q, B, Exchange<'q, Q, C, End<'q, Q>>>>;

/// Runs one process's three butterfly stages over its typed session.
async fn process<Q, A, B, C>(
    role: &mut Q,
    index: usize,
    mut data: Vec<Complex>,
) -> rumpsteak::Result<Vec<Complex>>
where
    Q: Role<Message = FftLabel> + Route<A> + Route<B> + Route<C>,
{
    try_session(role, |s: FftSession<'_, Q, A, B, C>| async move {
        let s = s.send(Data(data.clone())).await?;
        let (Data(partner), s) = s.receive().await?;
        combine(&mut data, &partner, index, 1);

        let s = s.send(Data(data.clone())).await?;
        let (Data(partner), s) = s.receive().await?;
        combine(&mut data, &partner, index, 2);

        let s = s.send(Data(data.clone())).await?;
        let (Data(partner), end) = s.receive().await?;
        combine(&mut data, &partner, index, 4);

        Ok((data, end))
    })
    .await
}

fn combine(mine: &mut [Complex], partner: &[Complex], index: usize, distance: usize) {
    let is_lower = index & distance == 0;
    let twiddle = stage_twiddle(index, distance, 8);
    butterfly_stage(mine, partner, twiddle, is_lower);
}

/// Deterministic input matrix: 8 columns of `rows` values.
pub fn input(rows: usize) -> Vec<Vec<Complex>> {
    (0..8)
        .map(|c| {
            (0..rows)
                .map(|r| Complex::new((c * rows + r) as f64 % 97.0, ((c + r) as f64 * 0.37).sin()))
                .collect()
        })
        .collect()
}

/// Bit-reversed initial distribution: process `i` starts with column
/// `bitrev3(i)`, as the iterative Cooley–Tukey recursion requires.
fn distribute(columns: &[Vec<Complex>]) -> Vec<Vec<Complex>> {
    (0..8)
        .map(|i: usize| columns[i.reverse_bits() >> (usize::BITS - 3)].clone())
        .collect()
}

/// Aggregates a transformed matrix into a scalar for cross-checking.
pub fn checksum(columns: &[Vec<Complex>]) -> f64 {
    columns
        .iter()
        .flat_map(|c| c.iter())
        .map(|z| z.norm())
        .sum()
}

/// Sequential baseline (RustFFT stand-in): row-wise 8-point FFTs.
pub fn run_sequential(rows: usize) -> Vec<Vec<Complex>> {
    let mut columns = input(rows);
    fft::fft_columns_8(&mut columns);
    columns
}

/// Runs the 8-process Rumpsteak version; returns the transformed columns.
pub fn run_rumpsteak(rt: &executor::Runtime, rows: usize) -> Vec<Vec<Complex>> {
    let columns = distribute(&input(rows));
    let (mut p0, mut p1, mut p2, mut p3, mut p4, mut p5, mut p6, mut p7) = connect();
    let mut data = columns.into_iter();
    let (c0, c1, c2, c3, c4, c5, c6, c7) = (
        data.next().unwrap(),
        data.next().unwrap(),
        data.next().unwrap(),
        data.next().unwrap(),
        data.next().unwrap(),
        data.next().unwrap(),
        data.next().unwrap(),
        data.next().unwrap(),
    );
    let tasks = (
        rt.spawn(async move { process::<P0, P1, P2, P4>(&mut p0, 0, c0).await }),
        rt.spawn(async move { process::<P1, P0, P3, P5>(&mut p1, 1, c1).await }),
        rt.spawn(async move { process::<P2, P3, P0, P6>(&mut p2, 2, c2).await }),
        rt.spawn(async move { process::<P3, P2, P1, P7>(&mut p3, 3, c3).await }),
        rt.spawn(async move { process::<P4, P5, P6, P0>(&mut p4, 4, c4).await }),
        rt.spawn(async move { process::<P5, P4, P7, P1>(&mut p5, 5, c5).await }),
        rt.spawn(async move { process::<P6, P7, P4, P2>(&mut p6, 6, c6).await }),
        rt.spawn(async move { process::<P7, P6, P5, P3>(&mut p7, 7, c7).await }),
    );
    vec![
        rt.block_on(tasks.0).unwrap().unwrap(),
        rt.block_on(tasks.1).unwrap().unwrap(),
        rt.block_on(tasks.2).unwrap().unwrap(),
        rt.block_on(tasks.3).unwrap().unwrap(),
        rt.block_on(tasks.4).unwrap().unwrap(),
        rt.block_on(tasks.5).unwrap().unwrap(),
        rt.block_on(tasks.6).unwrap().unwrap(),
        rt.block_on(tasks.7).unwrap().unwrap(),
    ]
}

// ---------------------------------------------------------------------
// Sesh-style: binary rendezvous sessions per stage; the lower process of
// each pair must send first (rendezvous cannot reorder).
// ---------------------------------------------------------------------

type LowerExchange = sesh::Send<Vec<Complex>, sesh::Recv<Vec<Complex>, sesh::End>>;

enum SeshEndpoint {
    Lower(LowerExchange),
    Upper(<LowerExchange as SeshSession>::Dual),
}

/// Runs the FFT with Sesh-style rendezvous sessions on 8 OS threads.
pub fn run_sesh(rows: usize) -> Vec<Vec<Complex>> {
    let columns = distribute(&input(rows));
    // endpoints[i] = the three per-stage endpoints of process i.
    let mut endpoints: Vec<Vec<SeshEndpoint>> = (0..8).map(|_| Vec::new()).collect();
    for distance in [1usize, 2, 4] {
        for i in 0..8 {
            if i & distance == 0 {
                let (lower, upper) = LowerExchange::new_pair();
                endpoints[i].push(SeshEndpoint::Lower(lower));
                endpoints[i ^ distance].push(SeshEndpoint::Upper(upper));
            }
        }
    }
    // Per-process endpoints were pushed stage-major for lowers but the
    // upper of stage d is pushed when its lower is visited, which is the
    // same stage loop — order per process is stage 1, 2, 4 for everyone.
    let handles: Vec<_> = endpoints
        .into_iter()
        .enumerate()
        .zip(columns)
        .map(|((index, stages), mut data)| {
            std::thread::spawn(move || {
                for (stage, endpoint) in stages.into_iter().enumerate() {
                    let distance = 1usize << stage;
                    let partner = match endpoint {
                        SeshEndpoint::Lower(s) => {
                            let s = s.send(data.clone()).unwrap();
                            let (partner, end) = s.recv().unwrap();
                            end.close();
                            partner
                        }
                        SeshEndpoint::Upper(s) => {
                            let (partner, s) = s.recv().unwrap();
                            let end = s.send(data.clone()).unwrap();
                            end.close();
                            partner
                        }
                    };
                    combine(&mut data, &partner, index, distance);
                }
                data
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

// ---------------------------------------------------------------------
// MultiCrusty-style: synchronous mesh; same lower-first discipline.
// ---------------------------------------------------------------------

/// Runs the FFT over the synchronous multiparty mesh.
pub fn run_multicrusty(rows: usize) -> Vec<Vec<Complex>> {
    let columns = distribute(&input(rows));
    let roles = mesh::<Vec<Complex>, 8>();
    let handles: Vec<_> = roles
        .into_iter()
        .enumerate()
        .zip(columns)
        .map(|((index, links), mut data)| {
            std::thread::spawn(move || {
                for distance in [1usize, 2, 4] {
                    let partner_index = index ^ distance;
                    let link = &links[link_index(index, partner_index)];
                    let partner = if index & distance == 0 {
                        link.send(data.clone()).unwrap();
                        link.recv().unwrap()
                    } else {
                        let partner = link.recv().unwrap();
                        link.send(data.clone()).unwrap();
                        partner
                    };
                    combine(&mut data, &partner, index, distance);
                }
                data
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

// ---------------------------------------------------------------------
// Ferrite-style: asynchronous per-stage oneshot exchanges.
// ---------------------------------------------------------------------

/// Runs the FFT with Ferrite-style oneshot exchanges on the async
/// runtime.
pub fn run_ferrite(rt: &executor::Runtime, rows: usize) -> Vec<Vec<Complex>> {
    use executor::channel::{oneshot, OneshotReceiver, OneshotSender};

    let columns = distribute(&input(rows));
    // A fresh oneshot pair per directed exchange per stage.
    let mut senders: Vec<Vec<Option<OneshotSender<Vec<Complex>>>>> =
        (0..8).map(|_| (0..3).map(|_| None).collect()).collect();
    let mut receivers: Vec<Vec<Option<OneshotReceiver<Vec<Complex>>>>> =
        (0..8).map(|_| (0..3).map(|_| None).collect()).collect();
    for (stage, distance) in [1usize, 2, 4].into_iter().enumerate() {
        for i in 0..8 {
            let (tx, rx) = oneshot();
            senders[i][stage] = Some(tx);
            receivers[i ^ distance][stage] = Some(rx);
        }
    }

    let tasks: Vec<_> = senders
        .into_iter()
        .zip(receivers)
        .enumerate()
        .zip(columns)
        .map(|((index, (mut txs, mut rxs)), mut data)| {
            rt.spawn(async move {
                for (stage, distance) in [1usize, 2, 4].into_iter().enumerate() {
                    txs[stage].take().unwrap().send(data.clone());
                    let partner = rxs[stage].take().unwrap().await.unwrap();
                    combine(&mut data, &partner, index, distance);
                }
                data
            })
        })
        .collect();
    tasks.into_iter().map(|t| rt.block_on(t).unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_matrix_close(a: &[Vec<Complex>], b: &[Vec<Complex>]) {
        assert_eq!(a.len(), b.len());
        for (col_a, col_b) in a.iter().zip(b) {
            assert_eq!(col_a.len(), col_b.len());
            for (x, y) in col_a.iter().zip(col_b) {
                assert!(
                    (x.re - y.re).abs() < 1e-6 && (x.im - y.im).abs() < 1e-6,
                    "{x:?} != {y:?}"
                );
            }
        }
    }

    #[test]
    fn all_frameworks_match_sequential() {
        let rt = executor::Runtime::new(2);
        let rows = 32;
        let expected = run_sequential(rows);
        assert_matrix_close(&run_rumpsteak(&rt, rows), &expected);
        assert_matrix_close(&run_sesh(rows), &expected);
        assert_matrix_close(&run_multicrusty(rows), &expected);
        assert_matrix_close(&run_ferrite(&rt, rows), &expected);
    }

    /// The send-before-receive exchange of every process is safe: verify
    /// the 8-machine system bottom-up with k-MC (k = 1 suffices — one
    /// column is in flight per channel).
    #[test]
    fn exchange_system_is_kmc_safe() {
        let system = kmc::System::new(vec![
            rumpsteak::serialize::<FftSession<'static, P0, P1, P2, P4>>().unwrap(),
            rumpsteak::serialize::<FftSession<'static, P1, P0, P3, P5>>().unwrap(),
            rumpsteak::serialize::<FftSession<'static, P2, P3, P0, P6>>().unwrap(),
            rumpsteak::serialize::<FftSession<'static, P3, P2, P1, P7>>().unwrap(),
            rumpsteak::serialize::<FftSession<'static, P4, P5, P6, P0>>().unwrap(),
            rumpsteak::serialize::<FftSession<'static, P5, P4, P7, P1>>().unwrap(),
            rumpsteak::serialize::<FftSession<'static, P6, P7, P4, P2>>().unwrap(),
            rumpsteak::serialize::<FftSession<'static, P7, P6, P5, P3>>().unwrap(),
        ])
        .unwrap();
        kmc::check(&system, 1).unwrap();
    }
}
