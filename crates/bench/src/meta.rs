//! Provenance metadata stamped into benchmark artifacts.
//!
//! `BENCH_fig6.json` is a long-lived trajectory artifact diffed across
//! commits; a number without its toolchain, revision and date is not
//! reproducible evidence. Everything here is best-effort and
//! dependency-free: a missing `git` binary degrades to `"unknown"`
//! rather than failing a benchmark run.

/// The `rustc -V` string of the compiler that built this crate,
/// captured by the build script.
pub fn rustc_version() -> &'static str {
    env!("BENCH_RUSTC_VERSION")
}

/// The current git revision (short hash, `-dirty` suffixed when the
/// tree has uncommitted changes), or `"unknown"` outside a checkout.
pub fn git_revision() -> String {
    let hash = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty());
    let Some(hash) = hash else {
        return "unknown".to_owned();
    };
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| !out.stdout.is_empty())
        .unwrap_or(false);
    if dirty {
        format!("{hash}-dirty")
    } else {
        hash
    }
}

/// The current wall-clock time as an ISO-8601 UTC timestamp
/// (`YYYY-MM-DDThh:mm:ssZ`), computed from `SystemTime` without a
/// calendar dependency.
pub fn timestamp_utc() -> String {
    let seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    iso8601_utc(seconds)
}

/// Renders seconds-since-epoch as `YYYY-MM-DDThh:mm:ssZ`.
fn iso8601_utc(seconds: u64) -> String {
    let days = (seconds / 86_400) as i64;
    let (year, month, day) = civil_from_days(days);
    let tod = seconds % 86_400;
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}Z",
        tod / 3600,
        (tod % 3600) / 60,
        tod % 60
    )
}

/// Proleptic-Gregorian date for a day count since 1970-01-01 (Howard
/// Hinnant's `civil_from_days`, exact for the whole i64 day range used
/// here).
fn civil_from_days(days: i64) -> (i64, u64, u64) {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let year = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let day = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let month = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if month <= 2 { year + 1 } else { year }, month, day)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso8601_known_instants() {
        assert_eq!(iso8601_utc(0), "1970-01-01T00:00:00Z");
        // Leap-century day.
        assert_eq!(iso8601_utc(951_782_400), "2000-02-29T00:00:00Z");
        // End of a leap year, with a time-of-day component.
        assert_eq!(iso8601_utc(1_703_980_799), "2023-12-30T23:59:59Z");
    }

    #[test]
    fn rustc_version_is_captured() {
        assert!(rustc_version().starts_with("rustc "));
    }

    #[test]
    fn git_revision_never_fails() {
        let rev = git_revision();
        assert!(!rev.is_empty());
    }
}
