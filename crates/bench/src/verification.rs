//! Generators for the Fig 7 verification benchmarks.
//!
//! Each family produces the candidate-subtype/supertype pair checked by
//! Rumpsteak's algorithm and SoundBinary, and the FSM system checked by
//! k-MC, for a given scale parameter `n`.
//!
//! The k-buffering and nested-choice families are **generated**: their
//! base types come out of the codegen pipeline (Scribble parse →
//! projection) rather than hand-built `LocalType` terms — k-buffering
//! from the committed `double_buffering.scr` / parameterised
//! `kbuffering.scr` templates, nested choice from Scribble sources nested
//! to depth `n` by a template function. Only the *optimised* variants
//! (the asynchronous-message-reordering the paper verifies against the
//! projection) remain programmatic, because AMR output is precisely what
//! projection does not produce.

use theory::local::LocalType;
use theory::name::Name;
use theory::sort::Sort;
use theory::{fsm, Fsm};

/// Converts a local type to an FSM for the given role.
pub fn to_fsm(role: &str, local: &LocalType) -> Fsm {
    fsm::from_local(&Name::from(role), local).expect("generated types are well-formed")
}

/// Runs the AMR optimiser on `projected` (unfold depth `depth`) and
/// returns its verified candidate FSM-equivalent to `expected` — the
/// cross-check that the search *rediscovers* a hand-written reordering
/// rather than merely admitting it. Panics when the optimiser no longer
/// derives it.
fn rediscover(role: &str, projected: &LocalType, expected: &LocalType, depth: usize) -> LocalType {
    let outcome = optimiser::optimise(
        &Name::from(role),
        projected,
        &optimiser::Config::with_depth(depth),
    )
    .expect("projection converts to an FSM");
    let target = to_fsm(role, expected);
    outcome
        .candidates
        .iter()
        .find(|candidate| candidate.fsm == target)
        .unwrap_or_else(|| {
            panic!("optimiser no longer derives the hand-written reordering of {role}")
        })
        .local
        .clone()
}

/// Fig 7 (left): the streaming protocol with `n` unrolled values.
pub mod streaming {
    use super::*;

    /// Projected source: `μx. t?ready. t!value. x`.
    pub fn projected() -> LocalType {
        LocalType::rec(
            "x",
            LocalType::receive(
                "t",
                "ready",
                Sort::Unit,
                LocalType::send("t", "value", Sort::Unit, LocalType::Var("x".into())),
            ),
        )
    }

    /// Optimised source: `t!value^n . μx. t?ready. t!value. x`.
    pub fn optimised(unrolls: usize) -> LocalType {
        let mut t = projected();
        for _ in 0..unrolls {
            t = LocalType::send("t", "value", Sort::Unit, t);
        }
        t
    }

    /// The optimiser-derived counterpart of [`optimised`]: searches the
    /// projection's verified reorderings (unfold depth `unrolls`) for
    /// the variant FSM-equivalent to the hand-written one, panicking if
    /// the optimiser no longer rediscovers it. The hand-written
    /// constructor above is thereby a cross-check on optimiser output.
    pub fn auto_optimised(unrolls: usize) -> LocalType {
        super::rediscover("s", &projected(), &optimised(unrolls), unrolls)
    }

    /// The sink: `μx. s!ready. s?value. x` (peer named `s`).
    pub fn sink() -> LocalType {
        LocalType::rec(
            "x",
            LocalType::send(
                "s",
                "ready",
                Sort::Unit,
                LocalType::receive("s", "value", Sort::Unit, LocalType::Var("x".into())),
            ),
        )
    }

    /// Rumpsteak check: optimised ≤ projected with bound `n + 4`.
    pub fn check_rumpsteak(unrolls: usize) -> bool {
        subtyping::is_subtype(
            &to_fsm("s", &optimised(unrolls)),
            &to_fsm("s", &projected()),
            unrolls + 4,
        )
    }

    /// SoundBinary check on the same pair.
    pub fn check_soundbinary(unrolls: usize) -> bool {
        soundbinary::is_subtype(
            &optimised(unrolls),
            &projected(),
            soundbinary::Limits::default(),
        )
        .expect("binary by construction")
    }

    /// k-MC check of the optimised source against the sink; the channel
    /// bound must cover the unrolled values.
    pub fn check_kmc(unrolls: usize) -> bool {
        let system = kmc::System::new(vec![
            to_fsm("s", &rename_peer(&optimised(unrolls), "t")),
            to_fsm("t", &sink()),
        ])
        .expect("two distinct roles");
        kmc::check(&system, unrolls + 1).is_ok()
    }

    /// Renames the single peer of a binary type (helper so that the
    /// source's peer is the sink's role name).
    fn rename_peer(t: &LocalType, _peer: &str) -> LocalType {
        t.clone()
    }
}

/// Fig 7 (second): nested choice (Chen et al. [13, Fig 3]), generated
/// from Scribble sources nested to depth `n`.
pub mod nested_choice {
    use super::*;

    /// Scribble source of the global protocol whose projection onto `a`
    /// is the candidate subtype `T_n`.
    pub fn subtype_scribble(levels: usize) -> String {
        fn body(levels: usize) -> String {
            if levels == 0 {
                return String::new();
            }
            let inner = body(levels - 1);
            format!(
                "choice at a {{ m() from a to p; choice at p \
                 {{ r() from p to a; {inner} }} or {{ s() from p to a; {inner} }} \
                 or {{ u() from p to a; {inner} }} }} \
                 or {{ p() from a to p; choice at p \
                 {{ r() from p to a; {inner} }} or {{ s() from p to a; {inner} }} }}"
            )
        }
        format!(
            "global protocol NestedChoiceSub(role a, role p) {{ {} }}",
            body(levels)
        )
    }

    /// Scribble source of the global protocol whose projection onto `a`
    /// is the supertype `T'_n`.
    pub fn supertype_scribble(levels: usize) -> String {
        fn body(levels: usize) -> String {
            if levels == 0 {
                return String::new();
            }
            let inner = body(levels - 1);
            format!(
                "choice at p {{ r() from p to a; choice at a \
                 {{ m() from a to p; {inner} }} or {{ p() from a to p; {inner} }} \
                 or {{ q() from a to p; {inner} }} }} \
                 or {{ s() from p to a; choice at a \
                 {{ m() from a to p; {inner} }} or {{ p() from a to p; {inner} }} }}"
            )
        }
        format!(
            "global protocol NestedChoiceSup(role a, role p) {{ {} }}",
            body(levels)
        )
    }

    fn analysis(source: &str) -> codegen::Analysis {
        codegen::analyse(source).expect("generated nested-choice protocol analyses")
    }

    /// `T_n`: the candidate subtype (projection of the generated global
    /// onto `a`).
    pub fn subtype(levels: usize) -> LocalType {
        analysis(&subtype_scribble(levels)).locals.remove(0).1
    }

    /// `T'_n`: the supertype (projection onto `a`).
    pub fn supertype(levels: usize) -> LocalType {
        analysis(&supertype_scribble(levels)).locals.remove(0).1
    }

    /// Rumpsteak check: `T_n ≤ T'_n`.
    pub fn check_rumpsteak(levels: usize) -> bool {
        subtyping::is_subtype(
            &to_fsm("a", &subtype(levels)),
            &to_fsm("a", &supertype(levels)),
            levels + 2,
        )
    }

    /// SoundBinary check on the same pair.
    pub fn check_soundbinary(levels: usize) -> bool {
        soundbinary::is_subtype(
            &subtype(levels),
            &supertype(levels),
            soundbinary::Limits::default(),
        )
        .expect("binary by construction")
    }

    /// k-MC check of `T_n` against the communicating partner of `T'_n`
    /// (the projection onto `p` of the supertype protocol, i.e. its dual).
    pub fn check_kmc(levels: usize) -> bool {
        let a = analysis(&subtype_scribble(levels)).fsms.remove(0);
        let p = analysis(&supertype_scribble(levels)).fsms.remove(1);
        let system = kmc::System::new(vec![a, p]).expect("two distinct roles");
        kmc::check(&system, levels.max(1)).is_ok()
    }
}

/// Fig 7 (third): the ring of `n` participants.
pub mod ring {
    use super::*;

    fn role(i: usize) -> String {
        format!("p{i}")
    }

    /// Projected type of participant `i` in an `n`-ring: receive from the
    /// predecessor, send to the successor (`p0` initiates: send first).
    pub fn projected(i: usize, n: usize) -> LocalType {
        let prev = role((i + n - 1) % n);
        let next = role((i + 1) % n);
        if i == 0 {
            LocalType::rec(
                "x",
                LocalType::send(
                    next,
                    "v",
                    Sort::Unit,
                    LocalType::receive(prev, "v", Sort::Unit, LocalType::Var("x".into())),
                ),
            )
        } else {
            LocalType::rec(
                "x",
                LocalType::receive(
                    prev,
                    "v",
                    Sort::Unit,
                    LocalType::send(next, "v", Sort::Unit, LocalType::Var("x".into())),
                ),
            )
        }
    }

    /// Optimised participant: sends before receiving (valid AMR since the
    /// forwarded value does not depend on the received one).
    pub fn optimised(i: usize, n: usize) -> LocalType {
        let prev = role((i + n - 1) % n);
        let next = role((i + 1) % n);
        LocalType::rec(
            "x",
            LocalType::send(
                next,
                "v",
                Sort::Unit,
                LocalType::receive(prev, "v", Sort::Unit, LocalType::Var("x".into())),
            ),
        )
    }

    /// The optimiser-derived counterpart of [`optimised`]: at unfold
    /// depth 0 (pure reordering, the paper's variant) the search's *best*
    /// candidate is exactly the swapped loop — for `p0`, which is already
    /// send-first, the projection is kept. Panics if the optimiser stops
    /// rediscovering it.
    pub fn auto_optimised(i: usize, n: usize) -> LocalType {
        let projected = projected(i, n);
        let outcome = optimiser::optimise(
            &Name::from(role(i)),
            &projected,
            &optimiser::Config::with_depth(0),
        )
        .expect("projection converts");
        let best = outcome.best_local().clone();
        assert_eq!(
            super::to_fsm(&role(i), &best),
            super::to_fsm(&role(i), &optimised(i, n)),
            "optimiser no longer derives the ring reordering for {}",
            role(i),
        );
        best
    }

    /// Rumpsteak verifies each participant **locally**: n independent
    /// subtype checks (this is the scalability win of Fig 7).
    pub fn check_rumpsteak(n: usize) -> bool {
        (0..n).all(|i| {
            subtyping::is_subtype(
                &to_fsm(&role(i), &optimised(i, n)),
                &to_fsm(&role(i), &projected(i, n)),
                4,
            )
        })
    }

    /// k-MC must analyse the whole optimised system at once.
    pub fn check_kmc(n: usize) -> bool {
        let machines = (0..n).map(|i| to_fsm(&role(i), &optimised(i, n))).collect();
        let system = kmc::System::new(machines).expect("distinct roles");
        kmc::check(&system, 1).is_ok()
    }
}

/// Fig 7 (right): k-buffering — double buffering generalised to `n`
/// anticipated `ready`s (i.e. `n + 1` buffers).
///
/// The base types are generated: [`projected`](k_buffering::projected),
/// [`source`](k_buffering::source) and [`sink`](k_buffering::sink) are
/// the codegen pipeline's projections of the committed
/// `double_buffering.scr`, and [`pipeline`](k_buffering::pipeline)
/// instantiates the parameterised `kbuffering.scr` template
/// (`role w[1..n]`) for the depth-scaling variant.
pub mod k_buffering {
    use std::sync::OnceLock;

    use super::*;

    const SCRIBBLE: &str = include_str!("../../codegen/tests/protocols/double_buffering.scr");
    const PIPELINE: &str = include_str!("../../codegen/tests/protocols/kbuffering.scr");

    /// Projections of the double-buffering protocol, in role order
    /// (s, k, t), produced once by the codegen pipeline.
    fn locals() -> &'static [(Name, LocalType)] {
        static LOCALS: OnceLock<Vec<(Name, LocalType)>> = OnceLock::new();
        LOCALS.get_or_init(|| {
            codegen::analyse(SCRIBBLE)
                .expect("double_buffering.scr analyses")
                .locals
        })
    }

    fn local(role: &str) -> LocalType {
        let role = Name::from(role);
        locals()
            .iter()
            .find(|(name, _)| *name == role)
            .map(|(_, local)| local.clone())
            .expect("double buffering declares roles s, k, t")
    }

    /// Projected kernel `Mk` (Fig 4a): the generated projection onto `k`.
    pub fn projected() -> LocalType {
        local("k")
    }

    /// Optimised kernel with `n` anticipated readys (Fig 4b is `n = 1`) —
    /// the AMR transformation applied on top of the generated projection.
    pub fn optimised(n: usize) -> LocalType {
        let mut t = projected();
        for _ in 0..n {
            t = LocalType::send("s", "ready", Sort::Unit, t);
        }
        t
    }

    /// The optimiser-derived counterpart of [`optimised`]: the Fig 4
    /// `n`-anticipation kernel found by the verified-subtype search at
    /// unfold depth `n` instead of constructed by hand. Panics if the
    /// optimiser no longer rediscovers it.
    pub fn auto_optimised(n: usize) -> LocalType {
        super::rediscover("k", &projected(), &optimised(n), n)
    }

    /// The source of the double-buffering protocol (projection onto `s`).
    pub fn source() -> LocalType {
        local("s")
    }

    /// Sink local type (projection onto `t`).
    pub fn sink() -> LocalType {
        local("t")
    }

    /// Rumpsteak check: optimised kernel ≤ projected kernel.
    pub fn check_rumpsteak(n: usize) -> bool {
        subtyping::is_subtype(
            &to_fsm("k", &optimised(n)),
            &to_fsm("k", &projected()),
            n + 4,
        )
    }

    /// k-MC check of the whole optimised system with channel bound n+1.
    pub fn check_kmc(n: usize) -> bool {
        let system = kmc::System::new(vec![
            to_fsm("k", &optimised(n)),
            to_fsm("s", &source()),
            to_fsm("t", &sink()),
        ])
        .expect("distinct roles");
        kmc::check(&system, n + 1).is_ok()
    }

    /// Instantiates the parameterised `kbuffering.scr` pipeline with
    /// `stages` kernel stages and returns the full analysis (projections
    /// and FSMs for s, w1..w`stages`, t).
    pub fn pipeline(stages: usize) -> codegen::Analysis {
        codegen::analyse_with(PIPELINE, &[(Name::from("n"), stages as i64)])
            .expect("kbuffering.scr instantiates")
    }

    /// Rumpsteak-side verification of the `stages`-deep pipeline: one
    /// *local* subtype check per participant — the per-role cost the
    /// paper contrasts with whole-system k-MC. Each participant's
    /// one-level loop unfolding is checked against its projection
    /// (`T[μt.T/t] ≤ μt.T`): syntactically distinct FSMs whose
    /// equivalence the subtyping algorithm must actually prove, so a
    /// broken projection, FSM conversion or candidate-tree traversal
    /// fails the check (unlike a reflexive `T ≤ T` pass).
    pub fn check_rumpsteak_pipeline(stages: usize) -> bool {
        let analysis = pipeline(stages);
        analysis.locals.iter().all(|(role, local)| {
            subtyping::is_subtype(
                &to_fsm(role.as_str(), &local.unfold()),
                &to_fsm(role.as_str(), local),
                4,
            )
        })
    }

    /// Whole-system k-MC of the `stages`-deep pipeline.
    pub fn check_kmc_pipeline(stages: usize) -> bool {
        let analysis = pipeline(stages);
        let system = kmc::System::new(analysis.fsms).expect("distinct roles");
        kmc::check(&system, 2).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_checks_agree() {
        for n in [0, 1, 3, 8] {
            assert!(streaming::check_rumpsteak(n), "rumpsteak n={n}");
            assert!(streaming::check_soundbinary(n), "soundbinary n={n}");
            assert!(streaming::check_kmc(n), "kmc n={n}");
        }
    }

    #[test]
    fn nested_choice_checks_agree() {
        for n in [0, 1, 2] {
            assert!(nested_choice::check_rumpsteak(n), "rumpsteak n={n}");
            assert!(nested_choice::check_soundbinary(n), "soundbinary n={n}");
            assert!(nested_choice::check_kmc(n), "kmc n={n}");
        }
    }

    #[test]
    fn ring_checks_agree() {
        for n in [2, 3, 6] {
            assert!(ring::check_rumpsteak(n), "rumpsteak n={n}");
            assert!(ring::check_kmc(n), "kmc n={n}");
        }
    }

    #[test]
    fn k_buffering_checks_agree() {
        for n in [0, 1, 2, 5] {
            assert!(k_buffering::check_rumpsteak(n), "rumpsteak n={n}");
            assert!(k_buffering::check_kmc(n), "kmc n={n}");
        }
    }

    #[test]
    fn k_buffering_base_types_match_fig4() {
        // The generated projections must match the paper's hand-written
        // Fig 4 kernels (up to recursion-variable naming, so compare FSMs).
        let cases = [
            (
                k_buffering::projected(),
                "rec x . s!ready . s?value . t?ready . t!value . x",
            ),
            (k_buffering::source(), "rec x . k?ready . k!value . x"),
            (k_buffering::sink(), "rec x . k!ready . k?value . x"),
        ];
        for (generated, expected) in cases {
            let expected = theory::local::parse(expected).unwrap();
            assert_eq!(
                to_fsm("k", &generated),
                to_fsm("k", &expected),
                "generated projection diverged from Fig 4"
            );
        }
    }

    #[test]
    fn k_buffering_pipeline_scales() {
        for stages in [1, 2, 4] {
            assert!(
                k_buffering::check_rumpsteak_pipeline(stages),
                "rumpsteak stages={stages}"
            );
            assert!(
                k_buffering::check_kmc_pipeline(stages),
                "kmc stages={stages}"
            );
        }
    }

    #[test]
    fn nested_choice_matches_hand_built_shape() {
        // The generated T_1 must be the Chen et al. type the old
        // hand-built constructor produced.
        let subtype = nested_choice::subtype(1);
        let expected = theory::local::parse(
            "+{ p!m.&{ p?r.end, p?s.end, p?u.end }, p!p.&{ p?r.end, p?s.end } }",
        )
        .unwrap();
        assert_eq!(to_fsm("a", &subtype), to_fsm("a", &expected));
    }

    #[test]
    fn optimiser_rediscovers_fig4_k_buffering_kernels() {
        // Fig 4 / §2–3: the optimiser must derive, for every anticipation
        // depth, a reordering FSM-equivalent to the hand-written kernel —
        // and every accepted candidate is already a verified subtype.
        for n in [1, 2, 3] {
            let auto = k_buffering::auto_optimised(n);
            assert_eq!(
                to_fsm("k", &auto),
                to_fsm("k", &k_buffering::optimised(n)),
                "n={n}"
            );
            // The derived kernel drops into the whole system exactly like
            // the hand-written one.
            let system = kmc::System::new(vec![
                to_fsm("k", &auto),
                to_fsm("s", &k_buffering::source()),
                to_fsm("t", &k_buffering::sink()),
            ])
            .expect("distinct roles");
            kmc::check(&system, n + 1).expect("auto-optimised system is k-MC safe");
        }
    }

    #[test]
    fn optimiser_rediscovers_streaming_unrolls() {
        for n in [1, 2, 3] {
            assert_eq!(
                to_fsm("s", &streaming::auto_optimised(n)),
                to_fsm("s", &streaming::optimised(n)),
                "n={n}"
            );
        }
    }

    #[test]
    fn optimiser_rediscovers_ring_reordering_as_best() {
        for n in [2, 3, 4] {
            let machines: Vec<_> = (0..n)
                .map(|i| to_fsm(&format!("p{i}"), &ring::auto_optimised(i, n)))
                .collect();
            let system = kmc::System::new(machines).expect("distinct roles");
            kmc::check(&system, 1).expect("auto-optimised ring is k-MC safe");
        }
    }

    #[test]
    fn optimiser_beats_or_matches_hand_written_depth() {
        // The search is allowed to find *deeper* verified reorderings
        // than the paper's (it composes hoists with anticipation), but
        // never shallower ones.
        for n in [1, 2, 3] {
            let outcome = optimiser::optimise(
                &Name::from("k"),
                &k_buffering::projected(),
                &optimiser::Config::with_depth(n),
            )
            .unwrap();
            assert!(outcome.best().expect("kernel optimises").score >= n);
        }
    }

    #[test]
    fn unsafe_ring_variant_rejected_by_both() {
        // Making p0 receive before sending deadlocks the whole ring.
        let n = 3;
        let bad = theory::local::parse("rec x . p2?v . p1!v . x").unwrap();
        assert!(!subtyping::is_subtype(
            &to_fsm("p0", &bad),
            &to_fsm("p0", &ring::projected(0, n)),
            4,
        ));
        let machines = vec![
            to_fsm("p0", &bad),
            to_fsm("p1", &ring::projected(1, n)),
            to_fsm("p2", &ring::projected(2, n)),
        ];
        let system = kmc::System::new(machines).unwrap();
        assert!(kmc::check(&system, 1).is_err());
    }
}
