//! Generators for the Fig 7 verification benchmarks.
//!
//! Each family produces the candidate-subtype/supertype pair checked by
//! Rumpsteak's algorithm and SoundBinary, and the FSM system checked by
//! k-MC, for a given scale parameter `n`.

use theory::local::LocalType;
use theory::name::Name;
use theory::sort::Sort;
use theory::{fsm, Fsm};

/// Converts a local type to an FSM for the given role.
pub fn to_fsm(role: &str, local: &LocalType) -> Fsm {
    fsm::from_local(&Name::from(role), local).expect("generated types are well-formed")
}

/// Syntactic dual of a *binary* local type: swaps sends and receives.
pub fn dual(t: &LocalType) -> LocalType {
    match t {
        LocalType::End => LocalType::End,
        LocalType::Var(v) => LocalType::Var(v.clone()),
        LocalType::Rec { var, body } => LocalType::Rec {
            var: var.clone(),
            body: Box::new(dual(body)),
        },
        LocalType::Select { peer, branches } => LocalType::Branch {
            peer: peer.clone(),
            branches: branches
                .iter()
                .map(|b| theory::local::LocalBranch {
                    label: b.label.clone(),
                    sort: b.sort.clone(),
                    continuation: dual(&b.continuation),
                })
                .collect(),
        },
        LocalType::Branch { peer, branches } => LocalType::Select {
            peer: peer.clone(),
            branches: branches
                .iter()
                .map(|b| theory::local::LocalBranch {
                    label: b.label.clone(),
                    sort: b.sort.clone(),
                    continuation: dual(&b.continuation),
                })
                .collect(),
        },
    }
}

/// Fig 7 (left): the streaming protocol with `n` unrolled values.
pub mod streaming {
    use super::*;

    /// Projected source: `μx. t?ready. t!value. x`.
    pub fn projected() -> LocalType {
        LocalType::rec(
            "x",
            LocalType::receive(
                "t",
                "ready",
                Sort::Unit,
                LocalType::send("t", "value", Sort::Unit, LocalType::Var("x".into())),
            ),
        )
    }

    /// Optimised source: `t!value^n . μx. t?ready. t!value. x`.
    pub fn optimised(unrolls: usize) -> LocalType {
        let mut t = projected();
        for _ in 0..unrolls {
            t = LocalType::send("t", "value", Sort::Unit, t);
        }
        t
    }

    /// The sink: `μx. s!ready. s?value. x` (peer named `s`).
    pub fn sink() -> LocalType {
        LocalType::rec(
            "x",
            LocalType::send(
                "s",
                "ready",
                Sort::Unit,
                LocalType::receive("s", "value", Sort::Unit, LocalType::Var("x".into())),
            ),
        )
    }

    /// Rumpsteak check: optimised ≤ projected with bound `n + 4`.
    pub fn check_rumpsteak(unrolls: usize) -> bool {
        subtyping::is_subtype(
            &to_fsm("s", &optimised(unrolls)),
            &to_fsm("s", &projected()),
            unrolls + 4,
        )
    }

    /// SoundBinary check on the same pair.
    pub fn check_soundbinary(unrolls: usize) -> bool {
        soundbinary::is_subtype(
            &optimised(unrolls),
            &projected(),
            soundbinary::Limits::default(),
        )
        .expect("binary by construction")
    }

    /// k-MC check of the optimised source against the sink; the channel
    /// bound must cover the unrolled values.
    pub fn check_kmc(unrolls: usize) -> bool {
        let system = kmc::System::new(vec![
            to_fsm("s", &rename_peer(&optimised(unrolls), "t")),
            to_fsm("t", &sink()),
        ])
        .expect("two distinct roles");
        kmc::check(&system, unrolls + 1).is_ok()
    }

    /// Renames the single peer of a binary type (helper so that the
    /// source's peer is the sink's role name).
    fn rename_peer(t: &LocalType, _peer: &str) -> LocalType {
        t.clone()
    }
}

/// Fig 7 (second): nested choice (Chen et al. [13, Fig 3]).
pub mod nested_choice {
    use super::*;

    /// `T_n`: the candidate subtype.
    pub fn subtype(levels: usize) -> LocalType {
        if levels == 0 {
            return LocalType::End;
        }
        let t = subtype(levels - 1);
        LocalType::select(
            "p",
            [
                (
                    "m".into(),
                    Sort::Unit,
                    LocalType::branch(
                        "p",
                        [
                            ("r".into(), Sort::Unit, t.clone()),
                            ("s".into(), Sort::Unit, t.clone()),
                            ("u".into(), Sort::Unit, t.clone()),
                        ],
                    ),
                ),
                (
                    "p".into(),
                    Sort::Unit,
                    LocalType::branch(
                        "p",
                        [
                            ("r".into(), Sort::Unit, t.clone()),
                            ("s".into(), Sort::Unit, t.clone()),
                        ],
                    ),
                ),
            ],
        )
    }

    /// `T'_n`: the supertype.
    pub fn supertype(levels: usize) -> LocalType {
        if levels == 0 {
            return LocalType::End;
        }
        let t = supertype(levels - 1);
        LocalType::branch(
            "p",
            [
                (
                    "r".into(),
                    Sort::Unit,
                    LocalType::select(
                        "p",
                        [
                            ("m".into(), Sort::Unit, t.clone()),
                            ("p".into(), Sort::Unit, t.clone()),
                            ("q".into(), Sort::Unit, t.clone()),
                        ],
                    ),
                ),
                (
                    "s".into(),
                    Sort::Unit,
                    LocalType::select(
                        "p",
                        [
                            ("m".into(), Sort::Unit, t.clone()),
                            ("p".into(), Sort::Unit, t.clone()),
                        ],
                    ),
                ),
            ],
        )
    }

    /// Rumpsteak check: `T_n ≤ T'_n`.
    pub fn check_rumpsteak(levels: usize) -> bool {
        subtyping::is_subtype(
            &to_fsm("a", &subtype(levels)),
            &to_fsm("a", &supertype(levels)),
            levels + 2,
        )
    }

    /// SoundBinary check on the same pair.
    pub fn check_soundbinary(levels: usize) -> bool {
        soundbinary::is_subtype(
            &subtype(levels),
            &supertype(levels),
            soundbinary::Limits::default(),
        )
        .expect("binary by construction")
    }

    /// k-MC check of `T_n` against the dual of `T'_n`.
    pub fn check_kmc(levels: usize) -> bool {
        let sub = subtype(levels);
        let partner = dual(&supertype(levels));
        // Rename: sub talks to "p"; make the machines "a" and "p".
        let system = kmc::System::new(vec![
            to_fsm("a", &retarget(&sub, "p")),
            to_fsm("p", &retarget(&partner, "a")),
        ])
        .expect("two distinct roles");
        kmc::check(&system, levels.max(1)).is_ok()
    }

    fn retarget(t: &LocalType, peer: &str) -> LocalType {
        let peer = Name::from(peer);
        match t {
            LocalType::End => LocalType::End,
            LocalType::Var(v) => LocalType::Var(v.clone()),
            LocalType::Rec { var, body } => LocalType::Rec {
                var: var.clone(),
                body: Box::new(retarget(body, peer.as_str())),
            },
            LocalType::Select { branches, .. } => LocalType::Select {
                peer: peer.clone(),
                branches: branches
                    .iter()
                    .map(|b| theory::local::LocalBranch {
                        label: b.label.clone(),
                        sort: b.sort.clone(),
                        continuation: retarget(&b.continuation, peer.as_str()),
                    })
                    .collect(),
            },
            LocalType::Branch { branches, .. } => LocalType::Branch {
                peer: peer.clone(),
                branches: branches
                    .iter()
                    .map(|b| theory::local::LocalBranch {
                        label: b.label.clone(),
                        sort: b.sort.clone(),
                        continuation: retarget(&b.continuation, peer.as_str()),
                    })
                    .collect(),
            },
        }
    }
}

/// Fig 7 (third): the ring of `n` participants.
pub mod ring {
    use super::*;

    fn role(i: usize) -> String {
        format!("p{i}")
    }

    /// Projected type of participant `i` in an `n`-ring: receive from the
    /// predecessor, send to the successor (`p0` initiates: send first).
    pub fn projected(i: usize, n: usize) -> LocalType {
        let prev = role((i + n - 1) % n);
        let next = role((i + 1) % n);
        if i == 0 {
            LocalType::rec(
                "x",
                LocalType::send(
                    next,
                    "v",
                    Sort::Unit,
                    LocalType::receive(prev, "v", Sort::Unit, LocalType::Var("x".into())),
                ),
            )
        } else {
            LocalType::rec(
                "x",
                LocalType::receive(
                    prev,
                    "v",
                    Sort::Unit,
                    LocalType::send(next, "v", Sort::Unit, LocalType::Var("x".into())),
                ),
            )
        }
    }

    /// Optimised participant: sends before receiving (valid AMR since the
    /// forwarded value does not depend on the received one).
    pub fn optimised(i: usize, n: usize) -> LocalType {
        let prev = role((i + n - 1) % n);
        let next = role((i + 1) % n);
        LocalType::rec(
            "x",
            LocalType::send(
                next,
                "v",
                Sort::Unit,
                LocalType::receive(prev, "v", Sort::Unit, LocalType::Var("x".into())),
            ),
        )
    }

    /// Rumpsteak verifies each participant **locally**: n independent
    /// subtype checks (this is the scalability win of Fig 7).
    pub fn check_rumpsteak(n: usize) -> bool {
        (0..n).all(|i| {
            subtyping::is_subtype(
                &to_fsm(&role(i), &optimised(i, n)),
                &to_fsm(&role(i), &projected(i, n)),
                4,
            )
        })
    }

    /// k-MC must analyse the whole optimised system at once.
    pub fn check_kmc(n: usize) -> bool {
        let machines = (0..n).map(|i| to_fsm(&role(i), &optimised(i, n))).collect();
        let system = kmc::System::new(machines).expect("distinct roles");
        kmc::check(&system, 1).is_ok()
    }
}

/// Fig 7 (right): k-buffering — double buffering generalised to `n`
/// anticipated `ready`s (i.e. `n + 1` buffers).
pub mod k_buffering {
    use super::*;

    /// Projected kernel `Mk` (Fig 4a).
    pub fn projected() -> LocalType {
        theory::local::parse("rec x . s!ready . s?value . t?ready . t!value . x")
            .expect("static type")
    }

    /// Optimised kernel with `n` anticipated readys (Fig 4b is `n = 1`).
    pub fn optimised(n: usize) -> LocalType {
        let mut t = projected();
        for _ in 0..n {
            t = LocalType::send("s", "ready", Sort::Unit, t);
        }
        t
    }

    /// The source and sink of the double-buffering protocol.
    pub fn source() -> LocalType {
        theory::local::parse("rec x . k?ready . k!value . x").expect("static type")
    }

    /// Sink local type.
    pub fn sink() -> LocalType {
        theory::local::parse("rec x . k!ready . k?value . x").expect("static type")
    }

    /// Rumpsteak check: optimised kernel ≤ projected kernel.
    pub fn check_rumpsteak(n: usize) -> bool {
        subtyping::is_subtype(
            &to_fsm("k", &optimised(n)),
            &to_fsm("k", &projected()),
            n + 4,
        )
    }

    /// k-MC check of the whole optimised system with channel bound n+1.
    pub fn check_kmc(n: usize) -> bool {
        let system = kmc::System::new(vec![
            to_fsm("k", &optimised(n)),
            to_fsm("s", &source()),
            to_fsm("t", &sink()),
        ])
        .expect("distinct roles");
        kmc::check(&system, n + 1).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_checks_agree() {
        for n in [0, 1, 3, 8] {
            assert!(streaming::check_rumpsteak(n), "rumpsteak n={n}");
            assert!(streaming::check_soundbinary(n), "soundbinary n={n}");
            assert!(streaming::check_kmc(n), "kmc n={n}");
        }
    }

    #[test]
    fn nested_choice_checks_agree() {
        for n in [0, 1, 2] {
            assert!(nested_choice::check_rumpsteak(n), "rumpsteak n={n}");
            assert!(nested_choice::check_soundbinary(n), "soundbinary n={n}");
            assert!(nested_choice::check_kmc(n), "kmc n={n}");
        }
    }

    #[test]
    fn ring_checks_agree() {
        for n in [2, 3, 6] {
            assert!(ring::check_rumpsteak(n), "rumpsteak n={n}");
            assert!(ring::check_kmc(n), "kmc n={n}");
        }
    }

    #[test]
    fn k_buffering_checks_agree() {
        for n in [0, 1, 2, 5] {
            assert!(k_buffering::check_rumpsteak(n), "rumpsteak n={n}");
            assert!(k_buffering::check_kmc(n), "kmc n={n}");
        }
    }

    #[test]
    fn dual_is_involutive() {
        let t = theory::local::parse("rec x . p?a . +{ p!b.x, p!c.end }").unwrap();
        assert_eq!(dual(&dual(&t)), t);
    }

    #[test]
    fn unsafe_ring_variant_rejected_by_both() {
        // Making p0 receive before sending deadlocks the whole ring.
        let n = 3;
        let bad = theory::local::parse("rec x . p2?v . p1!v . x").unwrap();
        assert!(!subtyping::is_subtype(
            &to_fsm("p0", &bad),
            &to_fsm("p0", &ring::projected(0, n)),
            4,
        ));
        let machines = vec![
            to_fsm("p0", &bad),
            to_fsm("p1", &ring::projected(1, n)),
            to_fsm("p2", &ring::projected(2, n)),
        ];
        let system = kmc::System::new(machines).unwrap();
        assert!(kmc::check(&system, 1).is_err());
    }
}
