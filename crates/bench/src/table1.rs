//! Table 1: expressiveness of Rumpsteak against Sesh, Ferrite,
//! MultiCrusty, k-MC and SoundBinary.
//!
//! Framework columns (whether a protocol is *expressible with
//! deadlock-freedom*) are properties of each framework's type system and
//! are transcribed from the paper. The verification columns (Rumpsteak's
//! subtyping, k-MC, SoundBinary) are **recomputed** by
//! [`dynamic_checks`]: every protocol we can state as local types is
//! actually pushed through our implementations.

use theory::local::{self, LocalType};

use crate::verification::to_fsm;

/// How a framework relates to a protocol (the three marks of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Support {
    /// ✔ — expressible with deadlock-freedom guaranteed.
    Yes,
    /// ✗(amber) — expressible via endpoint types but without the
    /// deadlock-freedom guarantee.
    EndpointOnly,
    /// ✗ — not expressible.
    No,
}

impl Support {
    /// The mark printed in the table.
    pub fn mark(self) -> &'static str {
        match self {
            Support::Yes => "yes",
            Support::EndpointOnly => "endpoint",
            Support::No => "no",
        }
    }
}

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Row {
    /// Protocol name as in the paper.
    pub name: &'static str,
    /// Number of participants.
    pub participants: usize,
    /// Choice / recursion / infinite recursion / AMR feature flags.
    pub features: [bool; 4],
    /// Columns: Sesh, Ferrite, MultiCrusty, Rumpsteak, k-MC, SoundBinary.
    pub support: [Support; 6],
}

/// The static matrix of Table 1 (in the paper's row order).
pub fn rows() -> Vec<Row> {
    use Support::{EndpointOnly as E, No as N, Yes as Y};
    let row = |name, participants, features, support| Row {
        name,
        participants,
        features,
        support,
    };
    vec![
        row(
            "Two Adder",
            2,
            [true, true, false, false],
            [Y, Y, Y, Y, Y, Y],
        ),
        row(
            "Three Adder",
            3,
            [false, false, false, false],
            [E, E, Y, Y, Y, N],
        ),
        row(
            "Streaming",
            2,
            [true, true, false, false],
            [Y, Y, Y, Y, Y, Y],
        ),
        row(
            "Optimised Streaming",
            2,
            [true, true, false, true],
            [E, E, E, Y, Y, Y],
        ),
        row("Ring", 3, [false, true, true, false], [E, E, Y, Y, Y, N]),
        row(
            "Optimised Ring",
            3,
            [false, true, true, true],
            [E, E, E, Y, Y, N],
        ),
        row(
            "Ring With Choice",
            3,
            [true, true, true, false],
            [E, E, Y, Y, Y, N],
        ),
        row(
            "Optimised Ring With Choice",
            3,
            [true, true, true, true],
            [E, E, E, Y, Y, N],
        ),
        row(
            "Double Buffering",
            3,
            [false, true, true, false],
            [E, E, Y, Y, Y, N],
        ),
        row(
            "Optimised Double Buffering",
            3,
            [false, true, true, true],
            [E, E, E, Y, Y, N],
        ),
        row(
            "Alternating Bit",
            2,
            [true, true, true, true],
            [E, E, E, Y, Y, Y],
        ),
        row("Elevator", 3, [true, true, true, true], [E, E, E, Y, Y, N]),
        row("FFT", 8, [false, false, false, false], [E, E, Y, Y, Y, N]),
        row(
            "Optimised FFT",
            8,
            [false, false, false, true],
            [E, E, E, Y, Y, N],
        ),
        row(
            "Authentication",
            3,
            [true, false, false, false],
            [E, E, Y, Y, Y, N],
        ),
        row(
            "Client-Server Log",
            3,
            [true, true, true, false],
            [E, E, Y, Y, Y, N],
        ),
        row("Hospital", 2, [true, true, true, true], [E, E, E, N, N, Y]),
    ]
}

/// Outcome of actually running our verifiers on a protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Protocol name.
    pub name: &'static str,
    /// Rumpsteak's subtyping verdict (None where not applicable).
    pub rumpsteak: Option<bool>,
    /// k-MC verdict over the full system (None where not applicable).
    pub kmc: Option<bool>,
    /// SoundBinary verdict (None for multiparty protocols).
    pub soundbinary: Option<bool>,
}

fn parse(t: &str) -> LocalType {
    local::parse(t).expect("static protocol text")
}

fn subtype(role: &str, sub: &str, sup: &str, bound: usize) -> bool {
    subtyping::is_subtype(
        &to_fsm(role, &parse(sub)),
        &to_fsm(role, &parse(sup)),
        bound,
    )
}

fn kmc_ok(specs: &[(&str, &str)], k: usize) -> bool {
    let system = kmc::system_from_locals(specs).expect("well-formed system");
    kmc::check(&system, k).is_ok()
}

fn binary_ok(sub: &str, sup: &str) -> bool {
    soundbinary::is_subtype(&parse(sub), &parse(sup), soundbinary::Limits::default())
        .expect("binary protocol")
}

/// Recomputes the verification columns of Table 1 for every protocol we
/// can express as local types.
pub fn dynamic_checks() -> Vec<CheckOutcome> {
    let mut out = Vec::new();

    // Two adder: client sends two numbers, server returns the sum.
    out.push(CheckOutcome {
        name: "Two Adder",
        rumpsteak: Some(subtype(
            "c",
            "s!num(i32).s!num(i32).s?sum(i32).end",
            "s!num(i32).s!num(i32).s?sum(i32).end",
            2,
        )),
        kmc: Some(kmc_ok(
            &[
                ("c", "s!num(i32).s!num(i32).s?sum(i32).end"),
                ("s", "c?num(i32).c?num(i32).c!sum(i32).end"),
            ],
            2,
        )),
        soundbinary: Some(binary_ok(
            "s!num(i32).s!num(i32).s?sum(i32).end",
            "s!num(i32).s!num(i32).s?sum(i32).end",
        )),
    });

    // Three adder: two clients feed an adder.
    out.push(CheckOutcome {
        name: "Three Adder",
        rumpsteak: Some(subtype(
            "s",
            "a?num(i32).b?num(i32).a!sum(i32).b!sum(i32).end",
            "a?num(i32).b?num(i32).a!sum(i32).b!sum(i32).end",
            2,
        )),
        kmc: Some(kmc_ok(
            &[
                ("a", "s!num(i32).s?sum(i32).end"),
                ("b", "s!num(i32).s?sum(i32).end"),
                ("s", "a?num(i32).b?num(i32).a!sum(i32).b!sum(i32).end"),
            ],
            1,
        )),
        soundbinary: None,
    });

    // Streaming (projected) and Optimised Streaming (2 unrolls).
    out.push(CheckOutcome {
        name: "Streaming",
        rumpsteak: Some(subtype(
            "s",
            "rec x . t?ready . +{ t!value.x, t!stop.end }",
            "rec x . t?ready . +{ t!value.x, t!stop.end }",
            4,
        )),
        kmc: Some(kmc_ok(
            &[
                ("s", "rec x . t?ready . +{ t!value.x, t!stop.end }"),
                ("t", "rec x . s!ready . &{ s?value.x, s?stop.end }"),
            ],
            1,
        )),
        soundbinary: Some(binary_ok(
            "rec x . t?ready . +{ t!value.x, t!stop.end }",
            "rec x . t?ready . +{ t!value.x, t!stop.end }",
        )),
    });
    out.push(CheckOutcome {
        name: "Optimised Streaming",
        rumpsteak: Some(crate::verification::streaming::check_rumpsteak(2)),
        kmc: Some(crate::verification::streaming::check_kmc(2)),
        soundbinary: Some(crate::verification::streaming::check_soundbinary(2)),
    });

    // Ring and optimised ring (3 participants).
    out.push(CheckOutcome {
        name: "Ring",
        rumpsteak: Some((0..3).all(|i| {
            let t = crate::verification::ring::projected(i, 3);
            subtyping::is_subtype(
                &to_fsm(&format!("p{i}"), &t),
                &to_fsm(&format!("p{i}"), &t),
                4,
            )
        })),
        kmc: Some(kmc_ok(
            &[
                ("p0", "rec x . p1!v . p2?v . x"),
                ("p1", "rec x . p0?v . p2!v . x"),
                ("p2", "rec x . p1?v . p0!v . x"),
            ],
            1,
        )),
        soundbinary: None,
    });
    out.push(CheckOutcome {
        name: "Optimised Ring",
        rumpsteak: Some(crate::verification::ring::check_rumpsteak(3)),
        kmc: Some(crate::verification::ring::check_kmc(3)),
        soundbinary: None,
    });

    // Ring with choice (Appendix B.2.1) and its optimisation.
    out.push(CheckOutcome {
        name: "Optimised Ring With Choice",
        rumpsteak: Some(subtype(
            "b",
            "rec t . +{ c!add.a?add.t, c!sub.a?add.t }",
            "rec t . a?add . +{ c!add.t, c!sub.t }",
            4,
        )),
        kmc: Some(kmc_ok(
            &[
                ("a", "rec t . b!add . c?ok . t"),
                ("b", "rec t . +{ c!add.a?add.t, c!sub.a?add.t }"),
                ("c", "rec t . &{ b?add . a!ok . t, b?sub . a!ok . t }"),
            ],
            1,
        )),
        soundbinary: None,
    });

    // Double buffering and its optimisation (§2).
    out.push(CheckOutcome {
        name: "Double Buffering",
        rumpsteak: Some(subtype(
            "k",
            "rec x . s!ready . s?value . t?ready . t!value . x",
            "rec x . s!ready . s?value . t?ready . t!value . x",
            4,
        )),
        kmc: Some(crate::verification::k_buffering::check_kmc(0)),
        soundbinary: None,
    });
    out.push(CheckOutcome {
        name: "Optimised Double Buffering",
        rumpsteak: Some(crate::verification::k_buffering::check_rumpsteak(1)),
        kmc: Some(crate::verification::k_buffering::check_kmc(1)),
        soundbinary: None,
    });

    // Alternating bit protocol (Appendix B.4).
    let abp_projected = "rec t . s?d0 . +{ s!a0 . rec u . s?d1 . +{ s!a0.u, s!a1.t }, s!a1.t }";
    let abp_spec = "rec t . &{ s?d0.s!a0.t, s?d1.s!a1.t }";
    out.push(CheckOutcome {
        name: "Alternating Bit",
        rumpsteak: Some(subtype("r", abp_spec, abp_projected, 4)),
        kmc: Some(kmc_ok(
            &[
                ("s", "rec t . +{ r!d0 . r?a0 . t, r!d1 . r?a1 . t }"),
                ("r", "rec t . &{ s?d0 . s!a0 . t, s?d1 . s!a1 . t }"),
            ],
            2,
        )),
        soundbinary: Some(binary_ok(abp_spec, abp_projected)),
    });

    // Elevator (simplified core): a user presses, the controller cycles
    // the door. The optimised controller acknowledges the user *before*
    // waiting for the door to finish closing (AMR).
    let elevator_controller =
        "rec x . u?press . d!open . d?opened . d!close . d?closed . u!served . x";
    let elevator_controller_opt =
        "rec x . u?press . d!open . d?opened . d!close . u!served . d?closed . x";
    out.push(CheckOutcome {
        name: "Elevator",
        rumpsteak: Some(subtype(
            "c",
            elevator_controller_opt,
            elevator_controller,
            4,
        )),
        kmc: Some(kmc_ok(
            &[
                ("u", "rec x . c!press . c?served . x"),
                ("c", elevator_controller_opt),
                ("d", "rec x . c?open . c!opened . c?close . c!closed . x"),
            ],
            1,
        )),
        soundbinary: None,
    });

    // Authentication: client → service → authenticator, no recursion.
    out.push(CheckOutcome {
        name: "Authentication",
        rumpsteak: Some(subtype(
            "s",
            "c?login(str).a!check(str).a?ok.c!granted.end",
            "c?login(str).a!check(str).a?ok.c!granted.end",
            2,
        )),
        kmc: Some(kmc_ok(
            &[
                ("c", "s!login(str).s?granted.end"),
                ("s", "c?login(str).a!check(str).a?ok.c!granted.end"),
                ("a", "s?check(str).s!ok.end"),
            ],
            1,
        )),
        soundbinary: None,
    });

    // Hospital [7, §1]: the patient keeps sending while deferring the
    // doctor's replies without bound — beyond both k-MC (no finite k is
    // exhaustive) and our bounded subtyping, but within SoundBinary.
    out.push(CheckOutcome {
        name: "Hospital",
        rumpsteak: None,
        kmc: None,
        soundbinary: Some(binary_ok(
            "rec x . d!report . d?advice . x",
            "rec x . d!report . d?advice . x",
        )),
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_matrix_has_all_17_rows() {
        let rows = rows();
        assert_eq!(rows.len(), 17);
        // Rumpsteak expresses everything but Hospital (paper claim).
        let rumpsteak_yes = rows.iter().filter(|r| r.support[3] == Support::Yes).count();
        assert_eq!(rumpsteak_yes, 16);
    }

    #[test]
    fn dynamic_checks_all_pass() {
        for outcome in dynamic_checks() {
            for (tool, verdict) in [
                ("rumpsteak", outcome.rumpsteak),
                ("kmc", outcome.kmc),
                ("soundbinary", outcome.soundbinary),
            ] {
                if let Some(ok) = verdict {
                    assert!(ok, "{} failed under {tool}", outcome.name);
                }
            }
        }
    }

    #[test]
    fn amr_rows_match_framework_capabilities() {
        // Every AMR-optimised protocol is Yes for Rumpsteak and at most
        // EndpointOnly for the synchronous frameworks.
        for row in rows() {
            if row.features[3] && row.name != "Hospital" {
                assert_eq!(row.support[3], Support::Yes, "{}", row.name);
                assert_ne!(row.support[0], Support::Yes, "{}", row.name);
                assert_ne!(row.support[2], Support::Yes, "{}", row.name);
            }
        }
    }
}
