//! Minimal wall-clock measurement used by the figure binaries.
//!
//! Criterion provides the statistically rigorous benchmarks; this module
//! exists so the `fig6`/`fig7` binaries can print Appendix C-style tables
//! quickly (one warmup, then repeated runs until a time budget).

use std::time::{Duration, Instant};

/// Measures the mean wall-clock time of `f`.
///
/// Runs once for warmup, then repeats until `budget` is spent or
/// `max_runs` is reached (always at least one measured run).
pub fn measure(mut f: impl FnMut(), budget: Duration, max_runs: usize) -> Duration {
    f(); // warmup
    let mut runs = 0u32;
    let start = Instant::now();
    let mut elapsed = Duration::ZERO;
    while (elapsed < budget && (runs as usize) < max_runs) || runs == 0 {
        let t0 = Instant::now();
        f();
        elapsed += t0.elapsed();
        runs += 1;
        if start.elapsed() > budget * 4 {
            break;
        }
    }
    elapsed / runs
}

/// Throughput in items per microsecond, the unit of Fig 6.
pub fn throughput(items: usize, duration: Duration) -> f64 {
    items as f64 / duration.as_micros().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive() {
        let d = measure(
            || {
                std::hint::black_box((0..1000).sum::<u64>());
            },
            Duration::from_millis(10),
            100,
        );
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn throughput_scales() {
        let d = Duration::from_micros(10);
        assert!((throughput(100, d) - 10.0).abs() < 1e-9);
    }
}
