//! Channel-layer microbenchmarks behind `fig6 --json`.
//!
//! The session data plane moved from a mutex-protected MPSC queue to the
//! lock-free SPSC ring in `executor::channel::spsc`; this module measures
//! exactly that boundary, isolated from protocol logic:
//!
//! * **spsc ping-pong** — two tasks bounce a token over a
//!   [`Bidirectional`] link: one message hop each way per round, the
//!   latency pattern the LIFO-slot direct handoff accelerates. This is
//!   the session-channel hot path (one fixed peer per endpoint).
//! * **mpsc ping-pong** — the identical workload over the mutex-backed
//!   [`unbounded`] MPSC channels, kept as the baseline the lock-free ring
//!   must beat.
//! * **spsc burst** — one producer floods a window of messages per turn
//!   while the consumer drains: throughput of the ring itself (slot
//!   writes, cached-index refreshes, growth) with wakeups amortised over
//!   whole bursts rather than paid per message.

use executor::channel::{unbounded, Bidirectional};
use executor::Runtime;

/// Messages each burst turn publishes before yielding to the consumer;
/// larger than the ring's initial capacity so growth stays on the path.
const BURST_WINDOW: u32 = 64;

/// Bounces a token `rounds` times over one [`Bidirectional`] SPSC link;
/// returns the number of round trips completed.
pub fn spsc_ping_pong(rt: &Runtime, rounds: u32) -> u64 {
    let (mut ping, mut pong) = Bidirectional::pair();
    let ponger = rt.spawn(async move {
        while let Some(value) = pong.recv().await {
            if pong.send(value).is_err() {
                break;
            }
        }
    });
    let pinger = rt.spawn(async move {
        let mut trips = 0u64;
        for round in 0..rounds {
            ping.send(round).unwrap();
            assert_eq!(ping.recv().await, Some(round));
            trips += 1;
        }
        trips
    });
    let trips = rt.block_on(pinger).unwrap();
    rt.block_on(ponger).unwrap();
    trips
}

/// The identical ping-pong over two mutex-backed MPSC channels: the
/// pre-refactor data plane, kept as the comparison baseline.
pub fn mpsc_ping_pong(rt: &Runtime, rounds: u32) -> u64 {
    let (ping_tx, mut ping_rx) = unbounded::<u32>();
    let (pong_tx, mut pong_rx) = unbounded::<u32>();
    let ponger = rt.spawn(async move {
        while let Some(value) = ping_rx.recv().await {
            if pong_tx.send(value).is_err() {
                break;
            }
        }
    });
    let pinger = rt.spawn(async move {
        let mut trips = 0u64;
        for round in 0..rounds {
            ping_tx.send(round).unwrap();
            assert_eq!(pong_rx.recv().await, Some(round));
            trips += 1;
        }
        drop(ping_tx);
        trips
    });
    let trips = rt.block_on(pinger).unwrap();
    rt.block_on(ponger).unwrap();
    trips
}

/// Floods `messages` values through one SPSC direction in
/// `BURST_WINDOW`-sized turns; returns the number received.
pub fn spsc_burst(rt: &Runtime, messages: u32) -> u64 {
    let (mut source, mut sink) = Bidirectional::pair();
    let consumer = rt.spawn(async move {
        let mut received = 0u64;
        let mut expected = 0u32;
        while let Some(value) = sink.recv().await {
            assert_eq!(value, expected, "burst delivery out of order");
            expected += 1;
            received += 1;
        }
        received
    });
    let producer = rt.spawn(async move {
        let mut next = 0u32;
        while next < messages {
            let window = BURST_WINDOW.min(messages - next);
            for _ in 0..window {
                source.send(next).unwrap();
                next += 1;
            }
            executor::yield_now().await;
        }
    });
    rt.block_on(producer).unwrap();
    rt.block_on(consumer).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsc_ping_pong_counts_round_trips() {
        let rt = Runtime::new(2);
        assert_eq!(spsc_ping_pong(&rt, 100), 100);
    }

    #[test]
    fn mpsc_ping_pong_counts_round_trips() {
        let rt = Runtime::new(2);
        assert_eq!(mpsc_ping_pong(&rt, 100), 100);
    }

    #[test]
    fn burst_delivers_every_message_in_order() {
        let rt = Runtime::new(2);
        // Not a multiple of the window, so the tail turn is partial.
        assert_eq!(spsc_burst(&rt, 1000), 1000);
    }
}
