//! Channel-layer microbenchmarks behind `fig6 --json`.
//!
//! The session data plane moved from a mutex-protected MPSC queue to the
//! lock-free SPSC ring in `executor::channel::spsc`; this module measures
//! exactly that boundary, isolated from protocol logic:
//!
//! * **spsc ping-pong** — two tasks bounce a token over a
//!   [`Bidirectional`] link: one message hop each way per round, the
//!   latency pattern the LIFO-slot direct handoff accelerates. This is
//!   the session-channel hot path (one fixed peer per endpoint).
//! * **mpsc ping-pong** — the identical workload over the mutex-backed
//!   [`unbounded`] MPSC channels, kept as the baseline the lock-free ring
//!   must beat.
//! * **spsc burst** — one producer floods a window of messages per turn
//!   while the consumer drains: throughput of the ring itself (slot
//!   writes, cached-index refreshes, growth) with wakeups amortised over
//!   whole bursts rather than paid per message.

use executor::channel::{unbounded, Bidirectional, LinkConfig};
use executor::Runtime;

use dep_telemetry as telemetry;

/// Messages each burst turn publishes before yielding to the consumer;
/// larger than the ring's initial capacity so growth stays on the path.
const BURST_WINDOW: u32 = 64;

/// Telemetry label of the pooled streaming link (producer side), so the
/// `--telemetry` artifact can check its batch/pool/wake economics.
pub const POOLED_BURST_FROM: &str = "BurstSrc";
/// Telemetry label of the pooled streaming link (consumer side).
pub const POOLED_BURST_TO: &str = "BurstSink";

/// Bounces a token `rounds` times over one [`Bidirectional`] SPSC link;
/// returns the number of round trips completed.
pub fn spsc_ping_pong(rt: &Runtime, rounds: u32) -> u64 {
    let (mut ping, mut pong) = Bidirectional::pair();
    let ponger = rt.spawn(async move {
        while let Some(value) = pong.recv().await {
            if pong.send(value).is_err() {
                break;
            }
        }
    });
    let pinger = rt.spawn(async move {
        let mut trips = 0u64;
        for round in 0..rounds {
            ping.send(round).unwrap();
            assert_eq!(ping.recv().await, Some(round));
            trips += 1;
        }
        trips
    });
    let trips = rt.block_on(pinger).unwrap();
    rt.block_on(ponger).unwrap();
    trips
}

/// The identical ping-pong over two mutex-backed MPSC channels: the
/// pre-refactor data plane, kept as the comparison baseline.
pub fn mpsc_ping_pong(rt: &Runtime, rounds: u32) -> u64 {
    let (ping_tx, mut ping_rx) = unbounded::<u32>();
    let (pong_tx, mut pong_rx) = unbounded::<u32>();
    let ponger = rt.spawn(async move {
        while let Some(value) = ping_rx.recv().await {
            if pong_tx.send(value).is_err() {
                break;
            }
        }
    });
    let pinger = rt.spawn(async move {
        let mut trips = 0u64;
        for round in 0..rounds {
            ping_tx.send(round).unwrap();
            assert_eq!(pong_rx.recv().await, Some(round));
            trips += 1;
        }
        drop(ping_tx);
        trips
    });
    let trips = rt.block_on(pinger).unwrap();
    rt.block_on(ponger).unwrap();
    trips
}

/// Floods `messages` values through one SPSC direction in
/// `BURST_WINDOW`-sized turns; returns the number received.
pub fn spsc_burst(rt: &Runtime, messages: u32) -> u64 {
    let (mut source, mut sink) = Bidirectional::pair();
    let consumer = rt.spawn(async move {
        let mut received = 0u64;
        let mut expected = 0u32;
        while let Some(value) = sink.recv().await {
            assert_eq!(value, expected, "burst delivery out of order");
            expected += 1;
            received += 1;
        }
        received
    });
    let producer = rt.spawn(async move {
        let mut next = 0u32;
        while next < messages {
            let window = BURST_WINDOW.min(messages - next);
            for _ in 0..window {
                source.send(next).unwrap();
                next += 1;
            }
            executor::yield_now().await;
        }
    });
    rt.block_on(producer).unwrap();
    rt.block_on(consumer).unwrap()
}

/// Writes a `payload`-byte message body: full-size fill (the realistic
/// cost of producing a payload) plus a sequence header for the in-order
/// check on the consumer side.
fn fill_payload(buf: &mut Vec<u8>, payload: usize, seq: u32) {
    buf.clear();
    buf.resize(payload, 0xA5);
    buf[..4].copy_from_slice(&seq.to_le_bytes());
}

/// Reads the sequence header back out of a payload.
fn payload_seq(buf: &[u8]) -> u32 {
    u32::from_le_bytes(buf[..4].try_into().expect("payload holds a header"))
}

/// Large-payload burst over the naive alloc/move path: every message is
/// a freshly allocated `Vec<u8>` of `payload` bytes, moved through an
/// unbounded ring and freed by the consumer — O(messages) allocator
/// traffic, one waker round-trip per parked receive. The baseline the
/// pooled path is gated against.
pub fn spsc_burst_payload(rt: &Runtime, messages: u32, payload: usize) -> u64 {
    let (mut source, mut sink) = Bidirectional::pair();
    let consumer = rt.spawn(async move {
        let mut received = 0u64;
        let mut expected = 0u32;
        while let Some(buf) = sink.recv().await {
            let buf: Vec<u8> = buf;
            assert_eq!(buf.len(), payload, "payload truncated");
            assert_eq!(payload_seq(&buf), expected, "payload burst out of order");
            expected += 1;
            received += 1;
        }
        received
    });
    let producer = rt.spawn(async move {
        let mut next = 0u32;
        while next < messages {
            let window = BURST_WINDOW.min(messages - next);
            for _ in 0..window {
                let mut buf = Vec::with_capacity(payload);
                fill_payload(&mut buf, payload, next);
                source.send(buf).unwrap();
                next += 1;
            }
            executor::yield_now().await;
        }
    });
    rt.block_on(producer).unwrap();
    rt.block_on(consumer).unwrap()
}

/// The same large-payload stream over the zero-copy data plane: payload
/// buffers come from the link's pool (recycled by the consumer's drop,
/// O(k) allocations total), the ring is capacity-bounded at the burst
/// window (the producer parks under back-pressure instead of growing),
/// and the consumer drains through the k-sized batch window — one waker
/// round-trip and one index publication per window of messages.
pub fn spsc_burst_pooled(rt: &Runtime, messages: u32, payload: usize) -> u64 {
    let window = BURST_WINDOW as usize;
    // Register the capacity as this link's verified bound: the bounded
    // ring makes it a hard runtime invariant, so the telemetry watermark
    // check holds by construction.
    telemetry::channel::set_bound(POOLED_BURST_FROM, POOLED_BURST_TO, window as u64);
    telemetry::channel::set_bound(POOLED_BURST_TO, POOLED_BURST_FROM, 1);
    let (mut source, mut sink) = Bidirectional::<executor::channel::PooledBuf>::pair_configured(
        POOLED_BURST_FROM,
        POOLED_BURST_TO,
        LinkConfig {
            bound_ab: Some(window),
            bound_ba: Some(1),
            bounded: true,
        },
    );
    let pool = source.payload_pool_with_capacity(payload);
    let consumer = rt.spawn(async move {
        let mut received = 0u64;
        let mut expected = 0u32;
        // Dropping each buffer recycles it straight back to the pool.
        while let Some(buf) = sink.recv().await {
            assert_eq!(buf.len(), payload, "payload truncated");
            assert_eq!(payload_seq(&buf), expected, "pooled burst out of order");
            expected += 1;
            received += 1;
        }
        received
    });
    let producer = rt.spawn(async move {
        for seq in 0..messages {
            let mut buf = pool.take();
            fill_payload(&mut buf, payload, seq);
            let mut slot = Some(buf);
            std::future::poll_fn(|cx| source.poll_send(cx, &mut slot))
                .await
                .unwrap_or_else(|_| panic!("burst consumer dropped early"));
        }
    });
    rt.block_on(producer).unwrap();
    rt.block_on(consumer).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsc_ping_pong_counts_round_trips() {
        let rt = Runtime::new(2);
        assert_eq!(spsc_ping_pong(&rt, 100), 100);
    }

    #[test]
    fn mpsc_ping_pong_counts_round_trips() {
        let rt = Runtime::new(2);
        assert_eq!(mpsc_ping_pong(&rt, 100), 100);
    }

    #[test]
    fn burst_delivers_every_message_in_order() {
        let rt = Runtime::new(2);
        // Not a multiple of the window, so the tail turn is partial.
        assert_eq!(spsc_burst(&rt, 1000), 1000);
    }

    #[test]
    fn payload_burst_delivers_every_message_in_order() {
        let rt = Runtime::new(2);
        assert_eq!(spsc_burst_payload(&rt, 500, 1024), 500);
    }

    #[test]
    fn pooled_burst_delivers_every_message_in_order() {
        let rt = Runtime::new(2);
        assert_eq!(spsc_burst_pooled(&rt, 500, 1024), 500);
        if telemetry::ENABLED {
            let links = telemetry::channel::snapshot();
            let link = links
                .iter()
                .find(|l| l.from == POOLED_BURST_FROM && l.to == POOLED_BURST_TO)
                .expect("pooled burst link registered");
            // The bounded ring makes the verified bound a hard invariant.
            assert!(!link.violates_bound(), "watermark exceeded the bound");
            assert!(!link.violates_batch_window());
            // Batch economics: far fewer waker handoffs than messages.
            assert!(link.wakes < link.sends);
            // Pool economics: the steady state recycles, so misses stay
            // within the O(k) working set.
            assert!(link.pool_misses <= BURST_WINDOW as u64 + 1);
        }
    }
}
