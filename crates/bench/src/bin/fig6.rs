//! Regenerates Fig 6 / Appendix C.1: runtime throughput tables.
//!
//! ```text
//! cargo run --release -p bench --bin fig6 [streaming|double-buffering|fft]
//! cargo run --release -p bench --bin fig6 -- --json [--quick] [--edge-costs] [--out PATH]
//! cargo run --release -p bench --features telemetry --bin fig6 -- \
//!     --json --telemetry [--quick] [--out PATH]
//! ```
//!
//! The default mode prints one row per parameter value with the
//! throughput (items/µs) of every framework, in the same format as the
//! paper's raw data tables.
//!
//! `--json` instead sweeps the Rumpsteak implementations (plus the ring
//! and mesh scheduler-scaling workloads, hand-wired and
//! template-generated) across worker-thread counts and writes
//! `BENCH_fig6.json` (protocol × threads × ns/op) — the repo's
//! perf-trajectory artifact. `--quick` keeps the same workload sizes but
//! shrinks the measurement budget and run count, so its per-op numbers
//! stay comparable with the committed full-mode artifact (which the CI
//! bench gate diffs against); so that smoke runs can never dirty the
//! working tree, it defaults its output to the system temp directory.
//! `--out PATH` routes the artifact anywhere explicitly.
//!
//! `--edge-costs` appends an `"edge_costs"` section: the per-link-class
//! cost micro-profile (send/recv base ns and ns-per-byte slope for the
//! SPSC, pooled-bounded, TCP and UDS classes — see `bench::edge_costs`)
//! that `rumpsteak-gen --optimise --costs BENCH_fig6.json` loads to rank
//! AMR candidates by estimated nanoseconds saved.
//!
//! `--telemetry` (instrumented builds only) appends a `"telemetry"`
//! section to the JSON: per-worker scheduler counters for every swept
//! thread count, the per-channel occupancy table — each session link's
//! high-watermark next to its statically verified k-MC bound — and the
//! per-remote-link transport table (frames, bytes, window stalls,
//! reconnects, socket send window vs k-MC bound). Channel rows carry a
//! send→recv latency histogram (`p50`/`p90`/`p99`/`p999`/`max`, stamped
//! at slot commit and read at pop), transport rows a wire-latency
//! histogram (frame encode to frame decode), and a `"sessions"` array
//! reports spawn-to-teardown lifetime quantiles per role. The run
//! aborts if any watermark exceeds its bound, any send window is
//! registered above its bound, or any quantile ladder is non-monotone,
//! so a telemetry sweep doubles as an end-to-end check of the
//! verifier's guarantee.

use std::fmt::Write as _;
use std::time::Duration;

use bench::protocols::{double_buffering, fft8, streaming};
use bench::timing::{measure, throughput};
use bench::{channels, meta, scaling, transport};
use dep_telemetry as telemetry;

const BUDGET: Duration = Duration::from_millis(300);
const MAX_RUNS: usize = 50;

/// Worker-thread counts swept by `--json`.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let mut json = false;
    let mut quick = false;
    let mut with_telemetry = false;
    let mut with_edge_costs = false;
    let mut out: Option<String> = None;
    let mut which: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quick" => quick = true,
            "--telemetry" => with_telemetry = true,
            "--edge-costs" => with_edge_costs = true,
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            "streaming" | "double-buffering" | "fft" | "all" => which = Some(arg),
            other => {
                eprintln!(
                    "unknown argument `{other}`; expected \
                     streaming|double-buffering|fft|all, --json, --quick, \
                     --edge-costs, --out PATH"
                );
                std::process::exit(2);
            }
        }
    }
    if json && which.is_some() {
        eprintln!("--json always sweeps every protocol; drop the table name");
        std::process::exit(2);
    }
    if (quick || out.is_some() || with_telemetry || with_edge_costs) && !json {
        eprintln!("--quick, --out, --telemetry and --edge-costs only apply to --json mode");
        std::process::exit(2);
    }
    if with_telemetry && !telemetry::ENABLED {
        eprintln!(
            "--telemetry needs the instrumented build: \
             cargo run --release -p bench --features telemetry --bin fig6 -- ..."
        );
        std::process::exit(2);
    }

    if json {
        emit_json(quick, with_telemetry, with_edge_costs, out);
        return;
    }
    let which = which.unwrap_or_else(|| "all".into());

    let rt = executor::Runtime::with_default_threads();
    match which.as_str() {
        "streaming" => table_streaming(&rt),
        "double-buffering" => table_double_buffering(&rt),
        "fft" => table_fft(&rt),
        _ => {
            table_streaming(&rt);
            table_double_buffering(&rt);
            table_fft(&rt);
        }
    }
}

/// One measured cell of the `--json` sweep.
struct JsonResult {
    protocol: &'static str,
    threads: usize,
    /// `"key": value` pairs describing the workload size.
    params: String,
    ops: u64,
    ns_per_op: f64,
}

fn emit_json(quick: bool, with_telemetry: bool, with_edge_costs: bool, out_path: Option<String>) {
    let budget = if quick {
        Duration::from_millis(40)
    } else {
        BUDGET
    };
    let max_runs = if quick { 5 } else { MAX_RUNS };
    // Workload sizes: (ring tasks, ring laps, mesh peers, mesh rounds,
    // streaming n, double-buffering n, fft columns). Quick mode keeps the
    // *same* sizes and only shrinks the time budget and run count: per-op
    // costs depend on workload shape, so shrinking sizes would make quick
    // runs incomparable with the committed full-mode baseline the CI
    // bench gate diffs against (a single run of every workload is well
    // under a millisecond, so identical sizes cost quick mode nothing).
    let (ring_tasks, ring_laps, mesh_peers, mesh_rounds, stream_n, buffer_n, fft_n) =
        (64, 100, 12, 50, 50, 10000, 1000);
    // Channel-layer microbenches: rounds per ping-pong run, messages per
    // burst run, messages per large-payload burst run (see
    // `bench::channels`). Payload bursts move real bytes per message, so
    // they run fewer messages than the token burst.
    let (chan_rounds, chan_burst, chan_payload_burst) = (2000u32, 20000u32, 5000u32);
    // Networked-transport microbenches: rounds per framed ping-pong run
    // and messages per k-bounded burst run (see `bench::transport`).
    // Each run sets up a real connected socket pair plus its writer and
    // reader threads, so these use fewer iterations than the in-process
    // channel rows.
    let (net_rounds, net_burst) = (500u32, 5000u32);
    // Template-generated topologies (pring.scr / pmesh.scr), instantiated
    // once per sweep: the projection cost is setup, not measured time.
    let gen_ring = scaling::generated::GeneratedRing::new(ring_tasks);
    let gen_mesh = scaling::generated::GeneratedMesh::new(mesh_peers);

    let mut results = Vec::new();
    let mut scheduler: Vec<(usize, telemetry::scheduler::RuntimeSnapshot)> = Vec::new();
    for threads in THREADS {
        let rt = executor::Runtime::new(threads);
        let mut bench = |protocol: &'static str, params: String, ops: u64, f: &mut dyn FnMut()| {
            let mean = measure(f, budget, max_runs);
            results.push(JsonResult {
                protocol,
                threads,
                params,
                ops,
                ns_per_op: mean.as_nanos() as f64 / ops as f64,
            });
        };

        bench(
            "ring",
            format!("\"tasks\": {ring_tasks}, \"laps\": {ring_laps}"),
            (ring_tasks * ring_laps) as u64,
            &mut || {
                scaling::run_ring(&rt, ring_tasks, ring_laps);
            },
        );
        bench(
            "mesh",
            format!("\"peers\": {mesh_peers}, \"rounds\": {mesh_rounds}"),
            (mesh_peers * (mesh_peers - 1) * mesh_rounds) as u64,
            &mut || {
                scaling::run_mesh(&rt, mesh_peers, mesh_rounds);
            },
        );
        bench(
            "gen_ring",
            format!("\"tasks\": {ring_tasks}, \"laps\": {ring_laps}"),
            (ring_tasks * ring_laps) as u64,
            &mut || {
                gen_ring.run(&rt, ring_laps);
            },
        );
        bench(
            "gen_mesh",
            format!("\"peers\": {mesh_peers}, \"rounds\": {mesh_rounds}"),
            gen_mesh.messages_per_round() * mesh_rounds as u64,
            &mut || {
                gen_mesh.run(&rt, mesh_rounds);
            },
        );
        // Channel layer: one op = one SPSC/MPSC round trip (ping-pong)
        // or one delivered message (burst). The MPSC row is the
        // mutex-channel baseline the lock-free ring must beat.
        bench(
            "channel_spsc_pingpong",
            format!("\"rounds\": {chan_rounds}"),
            u64::from(chan_rounds),
            &mut || {
                channels::spsc_ping_pong(&rt, chan_rounds);
            },
        );
        bench(
            "channel_mpsc_pingpong",
            format!("\"rounds\": {chan_rounds}"),
            u64::from(chan_rounds),
            &mut || {
                channels::mpsc_ping_pong(&rt, chan_rounds);
            },
        );
        bench(
            "channel_spsc_burst",
            format!("\"messages\": {chan_burst}"),
            u64::from(chan_burst),
            &mut || {
                channels::spsc_burst(&rt, chan_burst);
            },
        );
        // Large-payload streaming, alloc/move baseline vs the zero-copy
        // data plane (pooled buffers + bounded ring + batch receive) at
        // two payload sizes. The pooled row must beat its baseline by
        // >= 25% at 1 KiB — that delta is what the pool and batch window
        // exist to buy.
        for payload in [1024usize, 16384] {
            let suffix: &'static str = if payload == 1024 { "1k" } else { "16k" };
            bench(
                match suffix {
                    "1k" => "channel_spsc_burst_1k",
                    _ => "channel_spsc_burst_16k",
                },
                format!("\"messages\": {chan_payload_burst}, \"payload_bytes\": {payload}"),
                u64::from(chan_payload_burst),
                &mut || {
                    channels::spsc_burst_payload(&rt, chan_payload_burst, payload);
                },
            );
            bench(
                match suffix {
                    "1k" => "channel_spsc_burst_1k_pooled",
                    _ => "channel_spsc_burst_16k_pooled",
                },
                format!("\"messages\": {chan_payload_burst}, \"payload_bytes\": {payload}"),
                u64::from(chan_payload_burst),
                &mut || {
                    channels::spsc_burst_pooled(&rt, chan_payload_burst, payload);
                },
            );
        }
        // Networked transport: the same ping-pong/burst shapes over the
        // framed socket path, windows capped at the k-MC bound (1 for
        // the alternating ping-pong, 64 for the burst). One op = one
        // framed round trip / one delivered frame.
        bench(
            "transport_tcp_pingpong",
            format!("\"rounds\": {net_rounds}"),
            u64::from(net_rounds),
            &mut || {
                transport::tcp_ping_pong(&rt, net_rounds);
            },
        );
        #[cfg(unix)]
        bench(
            "transport_uds_pingpong",
            format!("\"rounds\": {net_rounds}"),
            u64::from(net_rounds),
            &mut || {
                transport::uds_ping_pong(&rt, net_rounds);
            },
        );
        bench(
            "transport_tcp_burst",
            format!("\"messages\": {net_burst}"),
            u64::from(net_burst),
            &mut || {
                transport::tcp_burst(&rt, net_burst);
            },
        );
        // Projected vs AMR-optimised streaming, side by side, like the
        // double-buffering pair below: the CI quality gate compares the
        // two rows to prove the optimiser's pick actually wins.
        bench(
            "streaming_proj",
            format!("\"n\": {stream_n}"),
            u64::from(stream_n),
            &mut || {
                streaming::run_rumpsteak(&rt, stream_n, false);
            },
        );
        bench(
            "streaming",
            format!("\"n\": {stream_n}"),
            u64::from(stream_n),
            &mut || {
                streaming::run_rumpsteak(&rt, stream_n, true);
            },
        );
        // Projected vs AMR-optimised kernel, side by side: the optimised
        // type is exactly what the optimiser derives from the projection
        // (pinned by `optimiser_rediscovers_kernel_opt_from_serialized_type`),
        // so this pair is the throughput win of automatic reordering.
        bench(
            "double_buffering_proj",
            format!("\"n\": {buffer_n}"),
            buffer_n as u64,
            &mut || {
                double_buffering::run_rumpsteak(&rt, buffer_n, false);
            },
        );
        bench(
            "double_buffering",
            format!("\"n\": {buffer_n}"),
            buffer_n as u64,
            &mut || {
                double_buffering::run_rumpsteak(&rt, buffer_n, true);
            },
        );
        bench("fft", format!("\"n\": {fft_n}"), fft_n as u64, &mut || {
            fft8::run_rumpsteak(&rt, fft_n);
        });
        if with_telemetry {
            scheduler.push((threads, rt.telemetry()));
        }
    }

    // Smoke assertion (runs in `--quick` CI too): the channel-layer and
    // transport rows must populate with real timings, so a refactor that
    // silently drops either sweep cannot pass the gate by omission.
    for required in [
        "channel_spsc_pingpong",
        "channel_mpsc_pingpong",
        "channel_spsc_burst",
        "channel_spsc_burst_1k",
        "channel_spsc_burst_1k_pooled",
        "channel_spsc_burst_16k",
        "channel_spsc_burst_16k_pooled",
        "transport_tcp_pingpong",
        #[cfg(unix)]
        "transport_uds_pingpong",
        "transport_tcp_burst",
        // The opt-vs-proj pairs the CI quality gate compares.
        "streaming_proj",
        "streaming",
        "double_buffering_proj",
        "double_buffering",
    ] {
        assert!(
            results
                .iter()
                .any(|r| r.protocol == required && r.ns_per_op.is_finite() && r.ns_per_op > 0.0),
            "fig6 --json produced no timing for the `{required}` row"
        );
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"fig6\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(
        out,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    // Provenance: a trajectory artifact without its revision, toolchain
    // and date is not reproducible evidence.
    let _ = writeln!(out, "  \"git_revision\": \"{}\",", meta::git_revision());
    let _ = writeln!(out, "  \"rustc_version\": \"{}\",", meta::rustc_version());
    let _ = writeln!(out, "  \"generated_at\": \"{}\",", meta::timestamp_utc());
    out.push_str("  \"unit\": \"ns/op\",\n  \"results\": [\n");
    for (index, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"protocol\": \"{}\", \"threads\": {}, \"params\": {{{}}}, \
             \"ops\": {}, \"ns_per_op\": {:.1}}}",
            r.protocol, r.threads, r.params, r.ops, r.ns_per_op
        );
        out.push_str(if index + 1 < results.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]");
    if with_edge_costs {
        // The per-edge cost micro-profile runs once, after the sweep, on
        // a two-worker runtime (one producer, one consumer — the shape
        // every class's harness needs).
        let rt = executor::Runtime::new(2);
        let classes = bench::edge_costs::measure(&rt, quick);
        assert!(
            !classes.is_empty(),
            "fig6 --edge-costs measured no link classes"
        );
        out.push_str(",\n  \"edge_costs\": {\n    \"unit\": \"ns\",\n    \"classes\": [\n");
        for (index, class) in classes.iter().enumerate() {
            let _ = write!(
                out,
                "      {{\"class\": \"{}\", \"send_base_ns\": {:.2}, \
                 \"recv_base_ns\": {:.2}, \"ns_per_byte\": {:.4}}}",
                class.class, class.send_base_ns, class.recv_base_ns, class.ns_per_byte
            );
            out.push_str(if index + 1 < classes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("    ]\n  }");
    }
    if with_telemetry {
        out.push_str(",\n");
        out.push_str(&telemetry_section(&scheduler));
    } else {
        out.push('\n');
    }
    out.push_str("}\n");

    // Quick mode defaults to the system temp directory so CI smoke runs
    // can neither clobber the committed full-mode trajectory artifact nor
    // dirty the working tree; `--out` overrides either default.
    let path = match out_path {
        Some(path) => std::path::PathBuf::from(path),
        None if quick => std::env::temp_dir().join("BENCH_fig6.quick.json"),
        None => std::path::PathBuf::from("BENCH_fig6.json"),
    };
    std::fs::write(&path, &out)
        .unwrap_or_else(|error| panic!("failed to write {}: {error}", path.display()));
    print!("{out}");
    eprintln!("wrote {} ({} results)", path.display(), results.len());
}

/// Renders the `"telemetry"` top-level JSON member: per-worker scheduler
/// counters for every swept thread count plus the global per-channel
/// table. Hard-fails if any session channel's observed high-watermark
/// exceeded its statically verified k-MC bound — a `--telemetry` run
/// doubles as an end-to-end check of the verifier's guarantee.
fn telemetry_section(scheduler: &[(usize, telemetry::scheduler::RuntimeSnapshot)]) -> String {
    let counters_json = |snapshot: &telemetry::scheduler::CountersSnapshot| {
        let fields: Vec<String> = snapshot
            .fields()
            .iter()
            .map(|(name, value)| format!("\"{name}\": {value}"))
            .collect();
        format!("{{{}}}", fields.join(", "))
    };

    // Latency histograms render as fixed quantiles (`null` when the
    // link recorded none — e.g. a stamp ring that only ever sent). The
    // quantile ladder must be monotone by construction; assert it so a
    // histogram regression fails the sweep rather than the plot.
    let hist_json = |hist: &telemetry::hist::HistogramSnapshot| {
        if hist.is_empty() {
            return "null".to_owned();
        }
        let (p50, p90, p99, p999) = (hist.p50(), hist.p90(), hist.p99(), hist.p999());
        assert!(
            p50 <= p90 && p90 <= p99 && p99 <= p999 && p999 <= hist.max,
            "histogram quantiles are not monotone: \
             p50={p50} p90={p90} p99={p99} p999={p999} max={}",
            hist.max,
        );
        format!(
            "{{\"count\": {}, \"p50\": {p50}, \"p90\": {p90}, \
             \"p99\": {p99}, \"p999\": {p999}, \"max\": {}}}",
            hist.count, hist.max,
        )
    };

    let mut out = String::new();
    out.push_str("  \"telemetry\": {\n    \"scheduler\": [\n");
    for (index, (threads, snapshot)) in scheduler.iter().enumerate() {
        let _ = writeln!(out, "      {{\"threads\": {threads}, \"workers\": [");
        for (w, worker) in snapshot.workers.iter().enumerate() {
            let _ = write!(out, "        {}", counters_json(worker));
            out.push_str(if w + 1 < snapshot.workers.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = write!(
            out,
            "      ], \"external\": {}}}",
            counters_json(&snapshot.external)
        );
        out.push_str(if index + 1 < scheduler.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("    ],\n    \"channels\": [\n");

    let links = telemetry::channel::snapshot();
    assert!(
        links.iter().any(|link| link.kmc_bound.is_some()),
        "--telemetry sweep registered no channel bounds — the session \
         protocols did not run through labelled links"
    );
    for (index, link) in links.iter().enumerate() {
        assert!(
            !link.violates_bound(),
            "channel {} -> {} exceeded its verified k-MC bound: \
             high_watermark {} > k = {}",
            link.from,
            link.to,
            link.high_watermark,
            link.kmc_bound.unwrap_or(0),
        );
        // A batch window wider than the verified bound would drain past
        // what the k-MC check covers — hard-fail, same as a watermark
        // violation.
        assert!(
            !link.violates_batch_window(),
            "channel {} -> {} runs a batch window past its k-MC bound: \
             window {:?} > k = {:?}",
            link.from,
            link.to,
            link.batch_window,
            link.kmc_bound,
        );
        let json_u64 = |value: Option<u64>| match value {
            Some(v) => v.to_string(),
            None => "null".to_owned(),
        };
        let bound = json_u64(link.kmc_bound);
        let batch_window = json_u64(link.batch_window);
        let _ = write!(
            out,
            "      {{\"from\": \"{}\", \"to\": \"{}\", \"high_watermark\": {}, \
             \"kmc_bound\": {bound}, \"batch_window\": {batch_window}, \
             \"grows\": {}, \"shrinks\": {}, \"waker_retries\": {}, \
             \"sends\": {}, \"wakes\": {}, \"batches\": {}, \
             \"batched_messages\": {}, \"pool_hits\": {}, \"pool_misses\": {}, \
             \"backpressure_parks\": {}, \"instances\": {}, \
             \"stamp_misses\": {}, \"latency\": {}}}",
            link.from,
            link.to,
            link.high_watermark,
            link.grows,
            link.shrinks,
            link.waker_retries,
            link.sends,
            link.wakes,
            link.batches,
            link.batched_messages,
            link.pool_hits,
            link.pool_misses,
            link.backpressure_parks,
            link.instances,
            link.stamp_misses,
            hist_json(&link.latency),
        );
        out.push_str(if index + 1 < links.len() { ",\n" } else { "\n" });
    }
    // The pooled streaming pair ran under telemetry: check its batch
    // economics end to end — whole windows of messages per waker
    // round-trip, not one wake per message.
    if let Some(link) = links
        .iter()
        .find(|l| l.from == channels::POOLED_BURST_FROM && l.to == channels::POOLED_BURST_TO)
    {
        assert!(
            link.wakes < link.sends,
            "pooled burst link delivered {} wakes for {} sends — the batch \
             window saved no waker round-trips",
            link.wakes,
            link.sends,
        );
        // Every slot commit stamped and every pop read the stamp back:
        // an empty histogram here means the latency path is dead.
        assert!(
            !link.latency.is_empty(),
            "pooled burst link recorded {} sends but no send->recv \
             latency samples",
            link.sends,
        );
    }
    out.push_str("    ],\n    \"transport\": [\n");

    // Remote links registered by the transport benches: per-link frame
    // and byte counters next to the socket send window and the k-MC
    // bound it was derived from. A window above its bound would buffer
    // more frames than the verification covers — hard-fail, same as a
    // channel watermark violation.
    let remote = telemetry::transport::snapshot();
    assert!(
        remote.iter().any(|link| link.send_window.is_some()),
        "--telemetry sweep registered no transport windows — the \
         transport benches did not run through labelled remote links"
    );
    for (index, link) in remote.iter().enumerate() {
        assert!(
            !link.window_exceeds_bound(),
            "transport {} -> {} runs a send window past its k-MC bound: \
             window {:?} > k = {:?}",
            link.from,
            link.to,
            link.send_window,
            link.kmc_bound,
        );
        let json_u64 = |value: Option<u64>| match value {
            Some(v) => v.to_string(),
            None => "null".to_owned(),
        };
        let window = json_u64(link.send_window);
        let bound = json_u64(link.kmc_bound);
        let _ = write!(
            out,
            "      {{\"from\": \"{}\", \"to\": \"{}\", \"frames_sent\": {}, \
             \"frames_received\": {}, \"bytes_sent\": {}, \"bytes_received\": {}, \
             \"window_stalls\": {}, \"reconnects\": {}, \"instances\": {}, \
             \"send_window\": {window}, \"kmc_bound\": {bound}, \
             \"wire_latency\": {}}}",
            link.from,
            link.to,
            link.frames_sent,
            link.frames_received,
            link.bytes_sent,
            link.bytes_received,
            link.window_stalls,
            link.reconnects,
            link.instances,
            hist_json(&link.wire_latency),
        );
        out.push_str(if index + 1 < remote.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    // The loopback transport bench pairs each frame encode with its
    // decode on the in-process peer, so the wire-latency histogram must
    // have samples; empty means the trace-context stamp path is dead.
    if let Some(link) = remote
        .iter()
        .find(|l| l.from == transport::NET_PING && l.to == transport::NET_PONG)
    {
        assert!(
            !link.wire_latency.is_empty(),
            "transport link {} -> {} sent {} frames but recorded no \
             wire latency samples",
            link.from,
            link.to,
            link.frames_sent,
        );
    }
    out.push_str("    ],\n    \"sessions\": [\n");

    // Session spawn-to-teardown lifetimes, one histogram per role name.
    let sessions = telemetry::hist::sessions_snapshot();
    for (index, (role, hist)) in sessions.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"role\": \"{role}\", \"lifetime_ns\": {}}}",
            hist_json(hist)
        );
        out.push_str(if index + 1 < sessions.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    assert!(
        sessions.iter().any(|(_, hist)| !hist.is_empty()),
        "--telemetry sweep recorded no session lifetimes — try_session \
         never stamped spawn/teardown"
    );
    out.push_str("    ]\n  }\n");
    out
}

fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

fn bench_throughput(items: usize, mut f: impl FnMut()) -> f64 {
    throughput(items, measure(&mut f, BUDGET, MAX_RUNS))
}

fn table_streaming(rt: &executor::Runtime) {
    println!("# Fig 6 / C.1 — Streaming: throughput (n/us) vs values transferred");
    row(&[
        "n".into(),
        "Sesh".into(),
        "MultiCrusty".into(),
        "Ferrite".into(),
        "Rumpsteak".into(),
        "Rumpsteak(opt)".into(),
    ]);
    for n in [10u32, 20, 30, 40, 50] {
        let items = n as usize;
        row(&[
            n.to_string(),
            format!(
                "{:.6}",
                bench_throughput(items, || {
                    streaming::run_sesh(n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(items, || {
                    streaming::run_multicrusty(n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(items, || {
                    streaming::run_ferrite(rt, n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(items, || {
                    streaming::run_rumpsteak(rt, n, false);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(items, || {
                    streaming::run_rumpsteak(rt, n, true);
                })
            ),
        ]);
    }
    println!();
}

fn table_double_buffering(rt: &executor::Runtime) {
    println!("# Fig 6 / C.1 — Double buffering: throughput (n/us) vs buffer size");
    row(&[
        "n".into(),
        "Sesh".into(),
        "MultiCrusty".into(),
        "Ferrite".into(),
        "Rumpsteak".into(),
        "Rumpsteak(opt)".into(),
    ]);
    for n in [5000usize, 10000, 15000, 20000, 25000] {
        row(&[
            n.to_string(),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    double_buffering::run_sesh(n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    double_buffering::run_multicrusty(n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    double_buffering::run_ferrite(rt, n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    double_buffering::run_rumpsteak(rt, n, false);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    double_buffering::run_rumpsteak(rt, n, true);
                })
            ),
        ]);
    }
    println!();
}

fn table_fft(rt: &executor::Runtime) {
    println!("# Fig 6 / C.1 — FFT: throughput (n/us) vs matrix columns");
    row(&[
        "n".into(),
        "Sesh".into(),
        "MultiCrusty".into(),
        "Ferrite".into(),
        "RustFFT".into(),
        "Rumpsteak".into(),
    ]);
    for n in [1000usize, 2000, 3000, 4000, 5000] {
        row(&[
            n.to_string(),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    fft8::run_sesh(n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    fft8::run_multicrusty(n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    fft8::run_ferrite(rt, n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    fft8::run_sequential(n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    fft8::run_rumpsteak(rt, n);
                })
            ),
        ]);
    }
    println!();
}
