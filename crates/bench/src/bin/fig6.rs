//! Regenerates Fig 6 / Appendix C.1: runtime throughput tables.
//!
//! ```text
//! cargo run --release -p bench --bin fig6 [streaming|double-buffering|fft]
//! ```
//!
//! Prints one row per parameter value with the throughput (items/µs) of
//! every framework, in the same format as the paper's raw data tables.

use std::time::Duration;

use bench::protocols::{double_buffering, fft8, streaming};
use bench::timing::{measure, throughput};

const BUDGET: Duration = Duration::from_millis(300);
const MAX_RUNS: usize = 50;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let rt = executor::Runtime::with_default_threads();
    match which.as_str() {
        "streaming" => table_streaming(&rt),
        "double-buffering" => table_double_buffering(&rt),
        "fft" => table_fft(&rt),
        "all" => {
            table_streaming(&rt);
            table_double_buffering(&rt);
            table_fft(&rt);
        }
        other => {
            eprintln!("unknown table `{other}`; expected streaming|double-buffering|fft|all");
            std::process::exit(2);
        }
    }
}

fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

fn bench_throughput(items: usize, mut f: impl FnMut()) -> f64 {
    throughput(items, measure(&mut f, BUDGET, MAX_RUNS))
}

fn table_streaming(rt: &executor::Runtime) {
    println!("# Fig 6 / C.1 — Streaming: throughput (n/us) vs values transferred");
    row(&[
        "n".into(),
        "Sesh".into(),
        "MultiCrusty".into(),
        "Ferrite".into(),
        "Rumpsteak".into(),
        "Rumpsteak(opt)".into(),
    ]);
    for n in [10u32, 20, 30, 40, 50] {
        let items = n as usize;
        row(&[
            n.to_string(),
            format!(
                "{:.6}",
                bench_throughput(items, || {
                    streaming::run_sesh(n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(items, || {
                    streaming::run_multicrusty(n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(items, || {
                    streaming::run_ferrite(rt, n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(items, || {
                    streaming::run_rumpsteak(rt, n, false);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(items, || {
                    streaming::run_rumpsteak(rt, n, true);
                })
            ),
        ]);
    }
    println!();
}

fn table_double_buffering(rt: &executor::Runtime) {
    println!("# Fig 6 / C.1 — Double buffering: throughput (n/us) vs buffer size");
    row(&[
        "n".into(),
        "Sesh".into(),
        "MultiCrusty".into(),
        "Ferrite".into(),
        "Rumpsteak".into(),
        "Rumpsteak(opt)".into(),
    ]);
    for n in [5000usize, 10000, 15000, 20000, 25000] {
        row(&[
            n.to_string(),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    double_buffering::run_sesh(n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    double_buffering::run_multicrusty(n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    double_buffering::run_ferrite(rt, n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    double_buffering::run_rumpsteak(rt, n, false);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    double_buffering::run_rumpsteak(rt, n, true);
                })
            ),
        ]);
    }
    println!();
}

fn table_fft(rt: &executor::Runtime) {
    println!("# Fig 6 / C.1 — FFT: throughput (n/us) vs matrix columns");
    row(&[
        "n".into(),
        "Sesh".into(),
        "MultiCrusty".into(),
        "Ferrite".into(),
        "RustFFT".into(),
        "Rumpsteak".into(),
    ]);
    for n in [1000usize, 2000, 3000, 4000, 5000] {
        row(&[
            n.to_string(),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    fft8::run_sesh(n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    fft8::run_multicrusty(n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    fft8::run_ferrite(rt, n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    fft8::run_sequential(n);
                })
            ),
            format!(
                "{:.6}",
                bench_throughput(n, || {
                    fft8::run_rumpsteak(rt, n);
                })
            ),
        ]);
    }
    println!();
}
