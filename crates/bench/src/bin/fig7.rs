//! Regenerates Fig 7 / Appendix C.2: verification running-time tables.
//!
//! ```text
//! cargo run --release -p bench --bin fig7 \
//!     [streaming|nested-choice|ring|k-buffering|pipeline|amr]
//! ```
//!
//! Each row reports seconds per check for SoundBinary, k-MC and
//! Rumpsteak's subtyping algorithm (blank where a tool is inapplicable,
//! e.g. SoundBinary on multiparty protocols). Parameter ranges follow the
//! paper; k-MC sweeps are capped once a single check exceeds a second so
//! the table finishes in reasonable time — the exponential trend is
//! visible well before the cap.
//!
//! The `amr` table compares the verification cost of the projected →
//! optimised step when the reordering is hand-written (one subtype
//! check) against deriving it automatically (the optimiser's full
//! generate-and-verify search), per family and depth — the price of the
//! paper's automation.

use std::time::{Duration, Instant};

use bench::verification::{k_buffering, nested_choice, ring, streaming};

const BUDGET: Duration = Duration::from_millis(200);

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "streaming" => table_streaming(),
        "nested-choice" => table_nested_choice(),
        "ring" => table_ring(),
        "k-buffering" => table_k_buffering(),
        "pipeline" => table_pipeline(),
        "amr" => table_amr(),
        "all" => {
            table_streaming();
            table_nested_choice();
            table_ring();
            table_k_buffering();
            table_pipeline();
            table_amr();
        }
        other => {
            eprintln!(
                "unknown table `{other}`; expected \
                 streaming|nested-choice|ring|k-buffering|pipeline|amr|all"
            );
            std::process::exit(2);
        }
    }
}

/// Times one boolean check, asserting it holds.
fn time_check(mut f: impl FnMut() -> bool) -> f64 {
    // Warmup + verify.
    assert!(f(), "verification unexpectedly failed");
    let mut runs = 0u32;
    let start = Instant::now();
    loop {
        std::hint::black_box(f());
        runs += 1;
        if start.elapsed() >= BUDGET || runs >= 100 {
            break;
        }
    }
    let seconds = start.elapsed().as_secs_f64() / runs as f64;
    // Micro-assertion: every emitted cell must actually populate — a
    // zero/NaN timing would render the table silently meaningless (e.g.
    // if a check was optimised out or a clock regressed).
    assert!(
        seconds.is_finite() && seconds > 0.0,
        "verification timing failed to populate"
    );
    seconds
}

fn fmt(seconds: Option<f64>) -> String {
    match seconds {
        Some(s) => format!("{s:.6}"),
        None => "-".into(),
    }
}

fn table_streaming() {
    println!("# Fig 7 / C.2 — Streaming: seconds vs unrolls");
    println!("n\tSoundBinary\tk-MC\tRumpsteak");
    let mut kmc_enabled = true;
    for n in (0..=100).step_by(10) {
        let soundbinary = Some(time_check(|| streaming::check_soundbinary(n)));
        let kmc = if kmc_enabled {
            let t = time_check(|| streaming::check_kmc(n));
            if t > 1.0 {
                kmc_enabled = false;
            }
            Some(t)
        } else {
            None
        };
        let rumpsteak = Some(time_check(|| streaming::check_rumpsteak(n)));
        println!(
            "{n}\t{}\t{}\t{}",
            fmt(soundbinary),
            fmt(kmc),
            fmt(rumpsteak)
        );
    }
    println!();
}

fn table_nested_choice() {
    println!("# Fig 7 / C.2 — Nested choice: seconds vs levels");
    println!("n\tSoundBinary\tk-MC\tRumpsteak");
    for n in 1..=5 {
        let soundbinary = Some(time_check(|| nested_choice::check_soundbinary(n)));
        let kmc = (n <= 4).then(|| time_check(|| nested_choice::check_kmc(n)));
        let rumpsteak = Some(time_check(|| nested_choice::check_rumpsteak(n)));
        println!(
            "{n}\t{}\t{}\t{}",
            fmt(soundbinary),
            fmt(kmc),
            fmt(rumpsteak)
        );
    }
    println!();
}

fn table_ring() {
    println!("# Fig 7 / C.2 — Ring: seconds vs participants");
    println!("n\tk-MC\tRumpsteak");
    let mut kmc_enabled = true;
    for n in (2..=30).step_by(2) {
        let kmc = if kmc_enabled {
            let t = time_check(|| ring::check_kmc(n));
            if t > 1.0 {
                kmc_enabled = false;
            }
            Some(t)
        } else {
            None
        };
        let rumpsteak = Some(time_check(|| ring::check_rumpsteak(n)));
        println!("{n}\t{}\t{}", fmt(kmc), fmt(rumpsteak));
    }
    println!();
}

fn table_pipeline() {
    println!("# k-buffering pipeline (generated from kbuffering.scr): seconds vs stages");
    println!("n\tk-MC\tRumpsteak(per-stage)");
    let mut kmc_enabled = true;
    for n in 1..=10 {
        let kmc = if kmc_enabled {
            let t = time_check(|| k_buffering::check_kmc_pipeline(n));
            if t > 1.0 {
                kmc_enabled = false;
            }
            Some(t)
        } else {
            None
        };
        let rumpsteak = Some(time_check(|| k_buffering::check_rumpsteak_pipeline(n)));
        println!("{n}\t{}\t{}", fmt(kmc), fmt(rumpsteak));
    }
    println!();
}

/// Projected → optimised verification cost: checking a hand-written
/// reordering vs deriving it automatically (candidate search + bulk
/// verification). `check` times one subtype check of the hand-written
/// variant against its projection; `derive` times the optimiser run that
/// rediscovers it; `cands` is the number of candidates that run
/// generates; `visits` is the total state-pair visits the bulk
/// verification performed, read from the per-candidate `CheckStats` the
/// optimiser already collected — the checker is not re-run for it.
fn table_amr() {
    use theory::Name;

    /// One benchmarked family: name, role, projected type, hand-written
    /// optimised variant at depth `n`.
    type Family = (
        &'static str,
        &'static str,
        fn() -> theory::LocalType,
        fn(usize) -> theory::LocalType,
    );

    println!("# AMR automation: hand-written check vs automatic derivation (seconds)");
    println!("family\tn\tcheck(hand)\tderive(auto)\tcands\tvisits");
    let families: [Family; 2] = [
        ("k-buffering", "k", k_buffering::projected, |n| {
            k_buffering::optimised(n)
        }),
        ("streaming", "s", streaming::projected, |n| {
            streaming::optimised(n)
        }),
    ];
    for (family, role, projected, optimised) in families {
        let projected = projected();
        let projected_fsm = bench::verification::to_fsm(role, &projected);
        for n in [1usize, 2, 4] {
            let config = optimiser::Config::with_depth(n);
            let hand = bench::verification::to_fsm(role, &optimised(n));
            let check = time_check(|| subtyping::is_subtype(&hand, &projected_fsm, n + 4));
            let outcome =
                optimiser::optimise(&Name::from(role), &projected, &config).expect("optimises");
            assert!(
                outcome.candidates.iter().any(|c| c.fsm == hand),
                "{family} n={n}: optimiser lost the hand-written reordering"
            );
            let derive = time_check(|| {
                let outcome =
                    optimiser::optimise(&Name::from(role), &projected, &config).expect("optimises");
                outcome.best().is_some_and(|best| best.score >= n)
            });
            let visits: usize = outcome
                .candidates
                .iter()
                .map(|c| c.stats.visited_pairs)
                .sum();
            println!(
                "{family}\t{n}\t{}\t{}\t{}\t{visits}",
                fmt(Some(check)),
                fmt(Some(derive)),
                outcome.generated
            );
        }
    }
    println!();
}

fn table_k_buffering() {
    println!("# Fig 7 / C.2 — k-buffering: seconds vs unrolls");
    println!("n\tk-MC\tRumpsteak");
    let mut kmc_enabled = true;
    for n in (0..=100).step_by(5) {
        let kmc = if kmc_enabled {
            let t = time_check(|| k_buffering::check_kmc(n));
            if t > 1.0 {
                kmc_enabled = false;
            }
            Some(t)
        } else {
            None
        };
        let rumpsteak = Some(time_check(|| k_buffering::check_rumpsteak(n)));
        println!("{n}\t{}\t{}", fmt(kmc), fmt(rumpsteak));
    }
    println!();
}
