//! Regenerates Fig 7 / Appendix C.2: verification running-time tables.
//!
//! ```text
//! cargo run --release -p bench --bin fig7 \
//!     [streaming|nested-choice|ring|k-buffering|pipeline]
//! ```
//!
//! Each row reports seconds per check for SoundBinary, k-MC and
//! Rumpsteak's subtyping algorithm (blank where a tool is inapplicable,
//! e.g. SoundBinary on multiparty protocols). Parameter ranges follow the
//! paper; k-MC sweeps are capped once a single check exceeds a second so
//! the table finishes in reasonable time — the exponential trend is
//! visible well before the cap.

use std::time::{Duration, Instant};

use bench::verification::{k_buffering, nested_choice, ring, streaming};

const BUDGET: Duration = Duration::from_millis(200);

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "streaming" => table_streaming(),
        "nested-choice" => table_nested_choice(),
        "ring" => table_ring(),
        "k-buffering" => table_k_buffering(),
        "pipeline" => table_pipeline(),
        "all" => {
            table_streaming();
            table_nested_choice();
            table_ring();
            table_k_buffering();
            table_pipeline();
        }
        other => {
            eprintln!(
                "unknown table `{other}`; expected \
                 streaming|nested-choice|ring|k-buffering|pipeline|all"
            );
            std::process::exit(2);
        }
    }
}

/// Times one boolean check, asserting it holds.
fn time_check(mut f: impl FnMut() -> bool) -> f64 {
    // Warmup + verify.
    assert!(f(), "verification unexpectedly failed");
    let mut runs = 0u32;
    let start = Instant::now();
    loop {
        std::hint::black_box(f());
        runs += 1;
        if start.elapsed() >= BUDGET || runs >= 100 {
            break;
        }
    }
    start.elapsed().as_secs_f64() / runs as f64
}

fn fmt(seconds: Option<f64>) -> String {
    match seconds {
        Some(s) => format!("{s:.6}"),
        None => "-".into(),
    }
}

fn table_streaming() {
    println!("# Fig 7 / C.2 — Streaming: seconds vs unrolls");
    println!("n\tSoundBinary\tk-MC\tRumpsteak");
    let mut kmc_enabled = true;
    for n in (0..=100).step_by(10) {
        let soundbinary = Some(time_check(|| streaming::check_soundbinary(n)));
        let kmc = if kmc_enabled {
            let t = time_check(|| streaming::check_kmc(n));
            if t > 1.0 {
                kmc_enabled = false;
            }
            Some(t)
        } else {
            None
        };
        let rumpsteak = Some(time_check(|| streaming::check_rumpsteak(n)));
        println!(
            "{n}\t{}\t{}\t{}",
            fmt(soundbinary),
            fmt(kmc),
            fmt(rumpsteak)
        );
    }
    println!();
}

fn table_nested_choice() {
    println!("# Fig 7 / C.2 — Nested choice: seconds vs levels");
    println!("n\tSoundBinary\tk-MC\tRumpsteak");
    for n in 1..=5 {
        let soundbinary = Some(time_check(|| nested_choice::check_soundbinary(n)));
        let kmc = (n <= 4).then(|| time_check(|| nested_choice::check_kmc(n)));
        let rumpsteak = Some(time_check(|| nested_choice::check_rumpsteak(n)));
        println!(
            "{n}\t{}\t{}\t{}",
            fmt(soundbinary),
            fmt(kmc),
            fmt(rumpsteak)
        );
    }
    println!();
}

fn table_ring() {
    println!("# Fig 7 / C.2 — Ring: seconds vs participants");
    println!("n\tk-MC\tRumpsteak");
    let mut kmc_enabled = true;
    for n in (2..=30).step_by(2) {
        let kmc = if kmc_enabled {
            let t = time_check(|| ring::check_kmc(n));
            if t > 1.0 {
                kmc_enabled = false;
            }
            Some(t)
        } else {
            None
        };
        let rumpsteak = Some(time_check(|| ring::check_rumpsteak(n)));
        println!("{n}\t{}\t{}", fmt(kmc), fmt(rumpsteak));
    }
    println!();
}

fn table_pipeline() {
    println!("# k-buffering pipeline (generated from kbuffering.scr): seconds vs stages");
    println!("n\tk-MC\tRumpsteak(per-stage)");
    let mut kmc_enabled = true;
    for n in 1..=10 {
        let kmc = if kmc_enabled {
            let t = time_check(|| k_buffering::check_kmc_pipeline(n));
            if t > 1.0 {
                kmc_enabled = false;
            }
            Some(t)
        } else {
            None
        };
        let rumpsteak = Some(time_check(|| k_buffering::check_rumpsteak_pipeline(n)));
        println!("{n}\t{}\t{}", fmt(kmc), fmt(rumpsteak));
    }
    println!();
}

fn table_k_buffering() {
    println!("# Fig 7 / C.2 — k-buffering: seconds vs unrolls");
    println!("n\tk-MC\tRumpsteak");
    let mut kmc_enabled = true;
    for n in (0..=100).step_by(5) {
        let kmc = if kmc_enabled {
            let t = time_check(|| k_buffering::check_kmc(n));
            if t > 1.0 {
                kmc_enabled = false;
            }
            Some(t)
        } else {
            None
        };
        let rumpsteak = Some(time_check(|| k_buffering::check_rumpsteak(n)));
        println!("{n}\t{}\t{}", fmt(kmc), fmt(rumpsteak));
    }
    println!();
}
