//! Session-event trace recorder: runs the Fig 6 protocols once on the
//! instrumented runtime and dumps every recorded Send/Receive/Select/
//! Branch event as a Chrome trace-event JSON document, loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! ```text
//! cargo run --release -p bench --features telemetry --bin rumpsteak-trace -- \
//!     [streaming|double-buffering|fft|all] [--threads N] [--out PATH]
//! ```
//!
//! Events are captured in per-thread lock-free drop-oldest rings, so a
//! trace is an *observation*, never a throttle: if a thread outran its
//! ring the overwritten count is reported on stderr and in the trace
//! metadata rather than silently missing. Without the `telemetry`
//! feature the binary exits with a pointer at the instrumented build —
//! the uninstrumented stack records nothing to dump.
//!
//! # Cross-process stitching
//!
//! ```text
//! rumpsteak-trace --merge s.trace t.trace [--out merged.json]
//! ```
//!
//! Each distributed role writes a per-process text dump when
//! `RUMPSTEAK_TRACE_OUT` is set; `--merge` parses the dumps, shifts
//! every timeline by the handshake-estimated clock offsets, and emits
//! one Chrome trace-event JSON document in which flow arrows connect
//! each wire frame's send to its receive. Exits non-zero if any
//! protocol edge saw frame sends but produced no matched flow — a
//! stitching regression, not a cosmetic defect.

use std::fmt::Write as _;

use bench::protocols::{double_buffering, fft8, streaming};
use dep_telemetry as telemetry;

/// Parses the dumps, merges them, writes the timeline, and reports
/// per-edge flow coverage; the process exit code is the check.
fn merge_dumps(paths: &[String], out_path: Option<String>) -> ! {
    if paths.len() < 2 {
        eprintln!("--merge needs at least two per-process dump files");
        std::process::exit(2);
    }
    let dumps: Vec<telemetry::trace::ProcessDump> = paths
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|error| panic!("failed to read {path}: {error}"));
            telemetry::trace::parse_dump(&text)
                .unwrap_or_else(|error| panic!("{path} is not a trace dump: {error}"))
        })
        .collect();
    let (json, report) = telemetry::trace::merge_chrome_trace(&dumps);
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json)
                .unwrap_or_else(|error| panic!("failed to write {path}: {error}"));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    eprintln!(
        "{} flow event(s) across {} edge(s)",
        report.flows,
        report.edges.len()
    );
    let mut unmatched = false;
    for edge in &report.edges {
        eprintln!(
            "  {} -> {}: {} sends, {} recvs, {} matched",
            edge.from, edge.to, edge.sends, edge.recvs, edge.matched
        );
        if edge.sends > 0 && edge.matched == 0 {
            unmatched = true;
        }
    }
    if unmatched {
        eprintln!("error: an edge with frame sends produced no matched flow");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut threads = 2usize;
    let mut which: Option<String> = None;
    let mut merge: Option<Vec<String>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--merge" => merge = Some(Vec::new()),
            "--out" => match args.next() {
                Some(path) => out_path = Some(path),
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => {
                    eprintln!("--threads requires a positive integer");
                    std::process::exit(2);
                }
            },
            "streaming" | "double-buffering" | "fft" | "all" => which = Some(arg),
            other => match &mut merge {
                // After --merge, positional arguments are dump files.
                Some(paths) if !other.starts_with('-') => paths.push(arg),
                _ => {
                    eprintln!(
                        "unknown argument `{other}`; expected \
                         streaming|double-buffering|fft|all, --threads N, --out PATH, \
                         or --merge DUMP... [--out PATH]"
                    );
                    std::process::exit(2);
                }
            },
        }
    }
    if let Some(paths) = merge {
        // Merging consumes dumps other processes already recorded, so
        // it works in any build.
        merge_dumps(&paths, out_path);
    }
    if !telemetry::ENABLED {
        eprintln!(
            "rumpsteak-trace records nothing without the instrumented build: \
             cargo run --release -p bench --features telemetry --bin rumpsteak-trace"
        );
        std::process::exit(2);
    }

    let which = which.unwrap_or_else(|| "all".into());
    let rt = executor::Runtime::new(threads);
    // Discard events from anything that ran before the workloads (none
    // expected, but keeps the trace self-contained).
    let _ = telemetry::trace::drain();

    if matches!(which.as_str(), "streaming" | "all") {
        let count = 200;
        assert_eq!(
            streaming::run_rumpsteak(&rt, count, true),
            streaming::expected(count)
        );
    }
    if matches!(which.as_str(), "double-buffering" | "all") {
        let size = 256;
        assert_eq!(
            double_buffering::run_rumpsteak(&rt, size, true),
            double_buffering::expected(size)
        );
    }
    if matches!(which.as_str(), "fft" | "all") {
        let rows = 64;
        let out = fft8::run_rumpsteak(&rt, rows);
        let reference = fft8::run_sequential(rows);
        assert!((fft8::checksum(&out) - fft8::checksum(&reference)).abs() < 1e-6);
    }

    let traces = telemetry::trace::drain();
    let events: usize = traces.iter().map(|t| t.events.len()).sum();
    let dropped: u64 = traces.iter().map(|t| t.dropped).sum();
    let json = telemetry::trace::chrome_trace_json(&traces);

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json)
                .unwrap_or_else(|error| panic!("failed to write {path}: {error}"));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    let mut summary = String::new();
    let _ = write!(
        summary,
        "{events} events across {} threads ({dropped} dropped)",
        traces.len()
    );
    for trace in &traces {
        let _ = write!(
            summary,
            "\n  {}: {} events, {} dropped",
            trace.thread,
            trace.events.len(),
            trace.dropped
        );
    }
    eprintln!("{summary}");
    assert!(
        events > 0,
        "instrumented protocols produced no session events"
    );
}
