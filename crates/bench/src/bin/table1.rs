//! Regenerates Table 1: expressiveness of Rumpsteak vs previous work.
//!
//! ```text
//! cargo run --release -p bench --bin table1
//! ```
//!
//! Prints the static matrix (framework capability per protocol, as
//! transcribed from the paper) followed by the *recomputed* verification
//! verdicts from our own subtyping, k-MC and SoundBinary implementations.

use bench::table1::{dynamic_checks, rows};

fn main() {
    println!("# Table 1 — expressiveness matrix");
    println!(
        "{:<28} {:>2} {:>2}{:>2}{:>3}{:>4}  {:<9} {:<9} {:<11} {:<9} {:<9} {:<11}",
        "Protocol",
        "n",
        "C",
        "R",
        "IR",
        "AMR",
        "Sesh",
        "Ferrite",
        "MultiCrusty",
        "Rumpsteak",
        "k-MC",
        "SoundBinary"
    );
    for row in rows() {
        let flag = |b: bool| if b { "x" } else { " " };
        println!(
            "{:<28} {:>2} {:>2}{:>2}{:>3}{:>4}  {:<9} {:<9} {:<11} {:<9} {:<9} {:<11}",
            row.name,
            row.participants,
            flag(row.features[0]),
            flag(row.features[1]),
            flag(row.features[2]),
            flag(row.features[3]),
            row.support[0].mark(),
            row.support[1].mark(),
            row.support[2].mark(),
            row.support[3].mark(),
            row.support[4].mark(),
            row.support[5].mark(),
        );
    }

    println!();
    println!("# Recomputed verification verdicts (our implementations)");
    println!(
        "{:<28} {:<10} {:<10} {:<11}",
        "Protocol", "Rumpsteak", "k-MC", "SoundBinary"
    );
    let verdict = |v: Option<bool>| match v {
        Some(true) => "verified",
        Some(false) => "REJECTED",
        None => "-",
    };
    for outcome in dynamic_checks() {
        println!(
            "{:<28} {:<10} {:<10} {:<11}",
            outcome.name,
            verdict(outcome.rumpsteak),
            verdict(outcome.kmc),
            verdict(outcome.soundbinary),
        );
    }
}
