//! Per-edge cost micro-profile behind `fig6 --json --edge-costs`.
//!
//! For each link class generated sessions can run on, this measures the
//! two numbers the optimiser's cost model prices rewrites with:
//!
//! * the fixed per-message cost of a send and of a receive
//!   (`send_base_ns` / `recv_base_ns`), and
//! * the marginal cost of each payload byte (`ns_per_byte`), taken as
//!   the slope between a 1 KiB and a 16 KiB payload sweep so the fixed
//!   costs divide out.
//!
//! The classes mirror `optimiser::cost::CostModel::default_table`:
//!
//! * **`spsc`** — the in-process lock-free ring, the data plane
//!   generated in-process code runs on. Send and receive are timed as
//!   separate phases (flood the ring, then drain it), so the split is
//!   measured rather than assumed. The per-byte slope comes from the
//!   alloc/move payload path: allocating and filling the payload *is*
//!   the honest per-byte cost of moving bytes through this class.
//! * **`bounded`** — the zero-copy pooled path (bounded ring + buffer
//!   pool + batch receive). Its per-byte slope is 10–15× shallower than
//!   `spsc`'s; the base is the 1 KiB cost with the payload contribution
//!   subtracted back out.
//! * **`tcp` / `uds`** — the framed socket transport over loopback.
//!   Base cost is half the measured ping-pong round trip (one framed
//!   hop), split evenly between send and receive since the wire path is
//!   symmetric; the slope comes from `Vec<u8>` payload bursts at the
//!   same two sizes.
//!
//! Every value is clamped non-negative so a noisy quick run can never
//! emit a profile `CostModel::from_profile` rejects.

use std::time::Instant;

use executor::channel::Bidirectional;
use executor::Runtime;
#[cfg(unix)]
use rumpsteak::net::loopback_pair_uds;
use rumpsteak::net::{loopback_pair_tcp, NetLink};

use crate::{channels, transport};

/// Telemetry label of the payload-sweep links (producer side).
pub const EDGE_COST_FROM: &str = "EdgeCostSrc";
/// Telemetry label of the payload-sweep links (consumer side).
pub const EDGE_COST_TO: &str = "EdgeCostSink";

/// Payload sizes the per-byte slope is fitted between; matching the
/// `channel_spsc_burst_{1k,16k}` rows keeps the profile comparable with
/// the throughput table in the same artifact.
const SLOPE_PAYLOADS: (usize, usize) = (1024, 16384);

/// Send window of the socket payload sweeps, mirroring the burst rows.
const NET_WINDOW: usize = 64;

/// Measured cost table of one link class, one entry of the artifact's
/// `edge_costs.classes` array.
pub struct EdgeClassCost {
    /// Class name as the optimiser's cost model knows it.
    pub class: &'static str,
    /// Fixed cost of one send, nanoseconds.
    pub send_base_ns: f64,
    /// Fixed cost of one receive, nanoseconds.
    pub recv_base_ns: f64,
    /// Marginal cost of one payload byte, nanoseconds.
    pub ns_per_byte: f64,
}

/// Times one run of `f` in nanoseconds.
fn timed(f: impl FnOnce()) -> f64 {
    let started = Instant::now();
    f();
    started.elapsed().as_nanos() as f64
}

/// Best-of-`reps` (minimum) of a nanosecond measurement: the run least
/// disturbed by scheduler noise, which is what slope fitting wants.
fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps)
        .map(|_| f())
        .fold(f64::INFINITY, f64::min)
        .max(0.0)
}

/// Per-byte slope between the two payload sweeps, clamped non-negative.
fn slope(ns_small: f64, ns_large: f64) -> f64 {
    let (small, large) = SLOPE_PAYLOADS;
    ((ns_large - ns_small) / (large - small) as f64).max(0.0)
}

/// Floods the SPSC ring with `messages` values, then drains it: the two
/// phases time the send and receive halves of the hot path separately.
/// Returns (send ns/msg, recv ns/msg).
fn spsc_phases(rt: &Runtime, messages: u32) -> (f64, f64) {
    let (mut source, mut sink) = Bidirectional::pair();
    let send_ns = timed(|| {
        for value in 0..messages {
            source.send(value).unwrap();
        }
        drop(source);
    }) / f64::from(messages);
    let recv_ns = timed(|| {
        let received = rt
            .block_on(rt.spawn(async move {
                let mut received = 0u32;
                while let Some(value) = sink.recv().await {
                    assert_eq!(value, received, "edge-cost drain out of order");
                    received += 1;
                }
                received
            }))
            .unwrap();
        assert_eq!(received, messages, "edge-cost drain lost messages");
    }) / f64::from(messages);
    (send_ns, recv_ns)
}

/// Floods `messages` payload vectors through one framed socket
/// direction while the far side drains; returns total nanoseconds.
fn net_payload_burst(
    rt: &Runtime,
    links: (NetLink<Vec<u8>>, NetLink<Vec<u8>>),
    messages: u32,
    payload: usize,
) -> f64 {
    let (mut source, mut sink) = links;
    timed(|| {
        let consumer = rt.spawn(async move {
            let mut received = 0u64;
            while let Some(buf) = sink.recv().await {
                assert_eq!(buf.len(), payload, "edge-cost frame truncated");
                received += 1;
            }
            received
        });
        let producer = rt.spawn(async move {
            for _ in 0..messages {
                source.send(vec![0xA5; payload]).await.unwrap();
            }
        });
        rt.block_on(producer).unwrap();
        assert_eq!(rt.block_on(consumer).unwrap(), u64::from(messages));
    })
}

/// Measures every link class. `quick` shrinks iteration counts and
/// repetitions the same way `fig6 --json --quick` shrinks its budget:
/// same shapes, smaller sample.
pub fn measure(rt: &Runtime, quick: bool) -> Vec<EdgeClassCost> {
    let reps = if quick { 2 } else { 5 };
    let spsc_messages: u32 = if quick { 4000 } else { 20000 };
    let payload_messages: u32 = if quick { 1000 } else { 5000 };
    let net_rounds: u32 = if quick { 100 } else { 500 };
    let net_messages: u32 = if quick { 300 } else { 2000 };
    let (small, large) = SLOPE_PAYLOADS;

    let mut classes = Vec::new();

    // spsc: measured send/recv split plus the alloc/move payload slope.
    let (mut send_ns, mut recv_ns) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let (send, recv) = spsc_phases(rt, spsc_messages);
        send_ns = send_ns.min(send);
        recv_ns = recv_ns.min(recv);
    }
    let per_payload = |payload: usize| {
        best_of(reps, || {
            timed(|| {
                channels::spsc_burst_payload(rt, payload_messages, payload);
            }) / f64::from(payload_messages)
        })
    };
    classes.push(EdgeClassCost {
        class: "spsc",
        send_base_ns: send_ns.max(0.0),
        recv_base_ns: recv_ns.max(0.0),
        ns_per_byte: slope(per_payload(small), per_payload(large)),
    });

    // bounded: the pooled zero-copy path; base is the 1 KiB cost minus
    // the payload contribution, split evenly between the two ends.
    let per_pooled = |payload: usize| {
        best_of(reps, || {
            timed(|| {
                channels::spsc_burst_pooled(rt, payload_messages, payload);
            }) / f64::from(payload_messages)
        })
    };
    let (pooled_small, pooled_large) = (per_pooled(small), per_pooled(large));
    let pooled_slope = slope(pooled_small, pooled_large);
    let pooled_base = ((pooled_small - pooled_slope * small as f64) / 2.0).max(0.0);
    classes.push(EdgeClassCost {
        class: "bounded",
        send_base_ns: pooled_base,
        recv_base_ns: pooled_base,
        ns_per_byte: pooled_slope,
    });

    // tcp: one framed loopback hop is half the ping-pong round trip;
    // the wire path is symmetric, so send and receive split it evenly.
    let tcp_hop = best_of(reps, || {
        timed(|| {
            transport::tcp_ping_pong(rt, net_rounds);
        }) / f64::from(net_rounds)
    }) / 2.0;
    let tcp_payload = |payload: usize| {
        best_of(reps, || {
            let links = loopback_pair_tcp::<Vec<u8>>(
                EDGE_COST_FROM,
                EDGE_COST_TO,
                Some(NET_WINDOW),
                Some(1),
            )
            .expect("loopback TCP pair");
            net_payload_burst(rt, links, net_messages, payload) / f64::from(net_messages)
        })
    };
    classes.push(EdgeClassCost {
        class: "tcp",
        send_base_ns: tcp_hop / 2.0,
        recv_base_ns: tcp_hop / 2.0,
        ns_per_byte: slope(tcp_payload(small), tcp_payload(large)),
    });

    // uds: same split over a Unix-domain socket pair.
    #[cfg(unix)]
    {
        let uds_hop = best_of(reps, || {
            timed(|| {
                transport::uds_ping_pong(rt, net_rounds);
            }) / f64::from(net_rounds)
        }) / 2.0;
        let uds_payload = |payload: usize| {
            best_of(reps, || {
                let links = loopback_pair_uds::<Vec<u8>>(
                    EDGE_COST_FROM,
                    EDGE_COST_TO,
                    Some(NET_WINDOW),
                    Some(1),
                )
                .expect("loopback UDS pair");
                net_payload_burst(rt, links, net_messages, payload) / f64::from(net_messages)
            })
        };
        classes.push(EdgeClassCost {
            class: "uds",
            send_base_ns: uds_hop / 2.0,
            recv_base_ns: uds_hop / 2.0,
            ns_per_byte: slope(uds_payload(small), uds_payload(large)),
        });
    }

    classes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_measures_finite_nonnegative_costs() {
        let rt = Runtime::new(2);
        let classes = measure(&rt, true);
        let names: Vec<&str> = classes.iter().map(|c| c.class).collect();
        assert!(names.contains(&"spsc"));
        assert!(names.contains(&"bounded"));
        assert!(names.contains(&"tcp"));
        #[cfg(unix)]
        assert!(names.contains(&"uds"));
        for class in &classes {
            for (field, value) in [
                ("send_base_ns", class.send_base_ns),
                ("recv_base_ns", class.recv_base_ns),
                ("ns_per_byte", class.ns_per_byte),
            ] {
                assert!(
                    value.is_finite() && value >= 0.0,
                    "class `{}` measured a bad {field}: {value}",
                    class.class,
                );
            }
            // Base costs are real work, never exactly free.
            assert!(class.send_base_ns + class.recv_base_ns > 0.0);
        }
    }
}
