//! Scheduler-scaling workloads behind `fig6 --json`.
//!
//! Unlike the Fig 6 protocols (2–3 fixed roles), these two shapes scale
//! the number of communicating tasks well past the worker count, so they
//! exercise exactly what the lock-free scheduling core changed: LIFO-slot
//! wake locality (ring) and injector/sibling batch stealing under fan-out
//! (mesh).
//!
//! * **ring** — `tasks` tasks in a cycle forward a countdown token until
//!   it has made `laps` full circuits: one message hop per op, the
//!   pure message-passing-latency pattern of the paper's ping-pong.
//! * **mesh** — `peers` tasks; each round every peer sends one message to
//!   every other peer, then drains its inbox. All-to-all traffic with
//!   `peers × (peers − 1)` messages per round.

use executor::channel::{unbounded, Sender};
use executor::Runtime;

/// Runs the token ring; returns the number of message hops performed.
pub fn run_ring(rt: &Runtime, tasks: usize, laps: usize) -> u64 {
    assert!(tasks >= 2);
    let hops = (tasks * laps) as u64;

    let (txs, rxs): (Vec<_>, Vec<_>) = (0..tasks).map(|_| unbounded::<u64>()).unzip();
    let handles: Vec<_> = rxs
        .into_iter()
        .enumerate()
        .map(|(index, mut rx)| {
            let tx = txs[(index + 1) % tasks].clone();
            rt.spawn(async move {
                let mut forwarded = 0u64;
                while let Some(token) = rx.recv().await {
                    // Forward until the token hits zero; the zero makes one
                    // final lap to shut every task down.
                    let _ = tx.send(token.saturating_sub(1));
                    forwarded += 1;
                    if token == 0 {
                        break;
                    }
                }
                forwarded
            })
        })
        .collect();

    txs[0].send(hops).unwrap();
    drop(txs);

    let mut total = 0;
    for handle in handles {
        total += rt.block_on(handle).unwrap();
    }
    // Every task forwards hops/tasks tokens plus the final zero lap.
    total - tasks as u64
}

/// Runs the all-to-all mesh; returns the number of messages exchanged.
pub fn run_mesh(rt: &Runtime, peers: usize, rounds: usize) -> u64 {
    assert!(peers >= 2);
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..peers).map(|_| unbounded::<u64>()).unzip();
    let txs: Vec<Sender<u64>> = txs;

    let handles: Vec<_> = rxs
        .into_iter()
        .enumerate()
        .map(|(index, mut rx)| {
            let txs: Vec<Sender<u64>> = txs
                .iter()
                .enumerate()
                .filter(|(peer, _)| *peer != index)
                .map(|(_, tx)| tx.clone())
                .collect();
            rt.spawn(async move {
                let mut received = 0u64;
                for round in 0..rounds as u64 {
                    for tx in &txs {
                        tx.send(round).unwrap();
                    }
                    // Unbounded sends never block, so draining exactly one
                    // round's worth of messages cannot deadlock even when
                    // peers run rounds out of lock-step.
                    for _ in 0..txs.len() {
                        received += u64::from(rx.recv().await.is_some());
                    }
                }
                received
            })
        })
        .collect();
    drop(txs);

    let mut total = 0;
    for handle in handles {
        total += rt.block_on(handle).unwrap();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_counts_every_hop() {
        let rt = Runtime::new(2);
        assert_eq!(run_ring(&rt, 4, 10), 40);
    }

    #[test]
    fn mesh_counts_every_message() {
        let rt = Runtime::new(2);
        assert_eq!(run_mesh(&rt, 5, 3), 5 * 4 * 3);
    }
}
