//! Scheduler-scaling workloads behind `fig6 --json`.
//!
//! Unlike the Fig 6 protocols (2–3 fixed roles), these two shapes scale
//! the number of communicating tasks well past the worker count, so they
//! exercise exactly what the lock-free scheduling core changed: LIFO-slot
//! wake locality (ring) and injector/sibling batch stealing under fan-out
//! (mesh).
//!
//! * **ring** — `tasks` tasks in a cycle forward a countdown token until
//!   it has made `laps` full circuits: one message hop per op, the
//!   pure message-passing-latency pattern of the paper's ping-pong.
//! * **mesh** — `peers` tasks; each round every peer sends one message to
//!   every other peer, then drains its inbox. All-to-all traffic with
//!   `peers × (peers − 1)` messages per round.

use executor::channel::{unbounded, Sender};
use executor::Runtime;

/// Runs the token ring; returns the number of message hops performed.
pub fn run_ring(rt: &Runtime, tasks: usize, laps: usize) -> u64 {
    let next: Vec<usize> = (0..tasks).map(|index| (index + 1) % tasks).collect();
    run_ring_over(rt, &next, laps)
}

/// Runs the all-to-all mesh; returns the number of messages exchanged.
pub fn run_mesh(rt: &Runtime, peers: usize, rounds: usize) -> u64 {
    let peers: Vec<Vec<usize>> = (0..peers)
        .map(|index| (0..peers).filter(|&peer| peer != index).collect())
        .collect();
    run_mesh_over(rt, &peers, rounds)
}

/// The countdown-token loop over an arbitrary successor graph: `next[i]`
/// is the task that task `i` forwards to. Shared by the hand-wired ring
/// above and the template-generated one in [`generated`].
fn run_ring_over(rt: &Runtime, next: &[usize], laps: usize) -> u64 {
    let tasks = next.len();
    assert!(tasks >= 2);
    let hops = (tasks * laps) as u64;

    let (txs, rxs): (Vec<_>, Vec<_>) = (0..tasks).map(|_| unbounded::<u64>()).unzip();
    let handles: Vec<_> = rxs
        .into_iter()
        .enumerate()
        .map(|(index, mut rx)| {
            let tx = txs[next[index]].clone();
            rt.spawn(async move {
                let mut forwarded = 0u64;
                while let Some(token) = rx.recv().await {
                    // Forward until the token hits zero; the zero makes one
                    // final lap to shut every task down.
                    let _ = tx.send(token.saturating_sub(1));
                    forwarded += 1;
                    if token == 0 {
                        break;
                    }
                }
                forwarded
            })
        })
        .collect();

    txs[0].send(hops).unwrap();
    drop(txs);

    let mut total = 0;
    for handle in handles {
        total += rt.block_on(handle).unwrap();
    }
    // Every task forwards hops/tasks tokens plus the final zero lap.
    total - tasks as u64
}

/// The per-round exchange loop over arbitrary peer sets: each round task
/// `i` sends one message to every member of `peers[i]`, then drains one
/// inbound message per member. Shared by the hand-wired mesh above and
/// the template-generated one in [`generated`].
fn run_mesh_over(rt: &Runtime, peers: &[Vec<usize>], rounds: usize) -> u64 {
    assert!(peers.len() >= 2);
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..peers.len()).map(|_| unbounded::<u64>()).unzip();
    let txs: Vec<Sender<u64>> = txs;

    let handles: Vec<_> = rxs
        .into_iter()
        .enumerate()
        .map(|(index, mut rx)| {
            let txs: Vec<Sender<u64>> =
                peers[index].iter().map(|&peer| txs[peer].clone()).collect();
            rt.spawn(async move {
                let mut received = 0u64;
                for round in 0..rounds as u64 {
                    for tx in &txs {
                        tx.send(round).unwrap();
                    }
                    // Unbounded sends never block, so draining exactly one
                    // round's worth of messages cannot deadlock even when
                    // peers run rounds out of lock-step.
                    for _ in 0..txs.len() {
                        received += u64::from(rx.recv().await.is_some());
                    }
                }
                received
            })
        })
        .collect();
    drop(txs);

    let mut total = 0;
    for handle in handles {
        total += rt.block_on(handle).unwrap();
    }
    total
}

/// Scaling workloads whose **topology is generated**: the communication
/// graph is derived from an instantiation of the parameterised Scribble
/// templates (`pring.scr`, `pmesh.scr`), so growing a benchmark mesh is a
/// `--param n=K` regeneration rather than a rewrite. Construction
/// instantiates the template, projects every `w[i]` and reads the channel
/// structure off the projections; `run` then drives the same token /
/// all-to-all traffic as [`run_ring`] / [`run_mesh`] over that graph.
pub mod generated {
    use theory::local::LocalType;
    use theory::Name;

    use super::*;

    const PRING: &str = include_str!("../../codegen/tests/protocols/pring.scr");
    const PMESH: &str = include_str!("../../codegen/tests/protocols/pmesh.scr");

    fn instantiate(template: &str, n: usize) -> codegen::Analysis {
        codegen::analyse_with(template, &[(Name::from("n"), n as i64)])
            .expect("scaling template instantiates")
    }

    /// First `Select` peer in pre-order: the role this participant
    /// forwards to.
    fn first_send_peer(local: &LocalType) -> Option<Name> {
        match local {
            LocalType::End | LocalType::Var(_) => None,
            LocalType::Rec { body, .. } => first_send_peer(body),
            LocalType::Select { peer, .. } => Some(peer.clone()),
            LocalType::Branch { branches, .. } => branches
                .iter()
                .find_map(|branch| first_send_peer(&branch.continuation)),
        }
    }

    /// A token ring whose successor graph comes from `pring.scr`.
    pub struct GeneratedRing {
        /// `next[i]` is the participant `i` forwards the token to.
        next: Vec<usize>,
    }

    impl GeneratedRing {
        /// Instantiates the template with `n` participants and derives
        /// each participant's successor from its projection.
        pub fn new(n: usize) -> Self {
            let analysis = instantiate(PRING, n);
            let index: std::collections::HashMap<&Name, usize> = analysis
                .protocol
                .roles
                .iter()
                .enumerate()
                .map(|(i, role)| (role, i))
                .collect();
            let next = analysis
                .locals
                .iter()
                .map(|(role, local)| {
                    let peer = first_send_peer(local)
                        .unwrap_or_else(|| panic!("{role} never sends in pring.scr"));
                    index[&peer]
                })
                .collect();
            Self { next }
        }

        /// Number of participants.
        pub fn len(&self) -> usize {
            self.next.len()
        }

        /// True when the ring has no participants (never, by construction).
        pub fn is_empty(&self) -> bool {
            self.next.is_empty()
        }

        /// Forwards a countdown token `laps` times around the generated
        /// ring; returns the number of message hops performed.
        pub fn run(&self, rt: &Runtime, laps: usize) -> u64 {
            super::run_ring_over(rt, &self.next, laps)
        }
    }

    /// An all-to-all mesh whose peer sets come from `pmesh.scr`.
    pub struct GeneratedMesh {
        /// `peers[i]` are the participants role `i` exchanges with.
        peers: Vec<Vec<usize>>,
    }

    impl GeneratedMesh {
        /// Instantiates the template with `n` participants and derives
        /// each participant's peer set from its projection.
        pub fn new(n: usize) -> Self {
            let analysis = instantiate(PMESH, n);
            let index: std::collections::HashMap<&Name, usize> = analysis
                .protocol
                .roles
                .iter()
                .enumerate()
                .map(|(i, role)| (role, i))
                .collect();
            let peers = analysis
                .locals
                .iter()
                .map(|(_, local)| local.peers().iter().map(|peer| index[peer]).collect())
                .collect();
            Self { peers }
        }

        /// Number of participants.
        pub fn len(&self) -> usize {
            self.peers.len()
        }

        /// True when the mesh has no participants (never, by construction).
        pub fn is_empty(&self) -> bool {
            self.peers.is_empty()
        }

        /// Messages exchanged per round, summed over all participants.
        pub fn messages_per_round(&self) -> u64 {
            self.peers.iter().map(|peers| peers.len() as u64).sum()
        }

        /// Runs `rounds` all-to-all rounds over the generated peer sets;
        /// returns the number of messages received.
        pub fn run(&self, rt: &Runtime, rounds: usize) -> u64 {
            super::run_mesh_over(rt, &self.peers, rounds)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_counts_every_hop() {
        let rt = Runtime::new(2);
        assert_eq!(run_ring(&rt, 4, 10), 40);
    }

    #[test]
    fn mesh_counts_every_message() {
        let rt = Runtime::new(2);
        assert_eq!(run_mesh(&rt, 5, 3), 5 * 4 * 3);
    }

    #[test]
    fn generated_ring_matches_hand_wired_counts() {
        let rt = Runtime::new(2);
        let ring = generated::GeneratedRing::new(4);
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.run(&rt, 10), run_ring(&rt, 4, 10));
    }

    #[test]
    fn generated_mesh_matches_hand_wired_counts() {
        let rt = Runtime::new(2);
        let mesh = generated::GeneratedMesh::new(5);
        assert_eq!(mesh.len(), 5);
        assert_eq!(mesh.messages_per_round(), 5 * 4);
        assert_eq!(mesh.run(&rt, 3), run_mesh(&rt, 5, 3));
    }

    #[test]
    fn generated_mesh_scales_by_regeneration() {
        // Growing the mesh is a parameter change, not a code change.
        for n in [2, 3, 6] {
            let mesh = generated::GeneratedMesh::new(n);
            assert_eq!(mesh.messages_per_round(), (n * (n - 1)) as u64);
        }
    }
}
