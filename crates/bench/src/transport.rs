//! Networked-transport microbenchmarks behind `fig6 --json`.
//!
//! The distributed backend frames session messages over a socket and
//! caps each direction's in-flight window at the link's verified k-MC
//! bound; these rows measure that path end to end — hand-rolled wire
//! encoding, length-prefixed framing, the bounded rings bridging the
//! session task to the writer/reader threads, and the kernel loopback
//! hop — isolated from protocol logic:
//!
//! * **tcp ping-pong** — two tasks bounce a token over a connected
//!   loopback TCP pair: one framed hop each way per round, the latency
//!   shape of an alternating session (window 1 suffices and is the
//!   verified bound for such a protocol).
//! * **uds ping-pong** — the identical workload over a Unix-domain
//!   socket pair, separating protocol-stack cost from framing cost.
//! * **tcp burst** — one producer floods a k-bounded window while the
//!   consumer drains: throughput of the framed path with back-pressure
//!   engaged, the distributed analogue of the SPSC burst row.
//!
//! Every link is labelled with the `Net*` role names below so the
//! `--telemetry` artifact reports the transport rows separately from
//! the in-process channel rows.

use executor::Runtime;
#[cfg(unix)]
use rumpsteak::net::loopback_pair_uds;
use rumpsteak::net::{loopback_pair_tcp, NetLink};

/// Telemetry label of the ping-pong link (pinging side).
pub const NET_PING: &str = "NetPing";
/// Telemetry label of the ping-pong link (echoing side).
pub const NET_PONG: &str = "NetPong";
/// Telemetry label of the burst link (producer side).
pub const NET_BURST_FROM: &str = "NetBurstSrc";
/// Telemetry label of the burst link (consumer side).
pub const NET_BURST_TO: &str = "NetBurstSink";

/// Send window of the ping-pong links: an alternating protocol never
/// has more than one message in flight per direction, so k = 1.
pub const PING_PONG_WINDOW: usize = 1;
/// Send window of the burst link, mirroring the in-process burst row's
/// turn size so the two are comparable.
pub const BURST_WINDOW: usize = 64;

/// Bounces a token `rounds` times over a connected loopback pair;
/// returns the number of round trips completed.
fn ping_pong(rt: &Runtime, mut ping: NetLink<u32>, mut pong: NetLink<u32>, rounds: u32) -> u64 {
    let ponger = rt.spawn(async move {
        while let Some(value) = pong.recv().await {
            if pong.send(value).await.is_err() {
                break;
            }
        }
    });
    let pinger = rt.spawn(async move {
        let mut trips = 0u64;
        for round in 0..rounds {
            ping.send(round).await.unwrap();
            assert_eq!(ping.recv().await, Some(round));
            trips += 1;
        }
        trips
    });
    let trips = rt.block_on(pinger).unwrap();
    rt.block_on(ponger).unwrap();
    trips
}

/// Framed ping-pong over loopback TCP with k-MC window 1 each way.
pub fn tcp_ping_pong(rt: &Runtime, rounds: u32) -> u64 {
    let (ping, pong) = loopback_pair_tcp::<u32>(
        NET_PING,
        NET_PONG,
        Some(PING_PONG_WINDOW),
        Some(PING_PONG_WINDOW),
    )
    .expect("loopback TCP pair");
    ping_pong(rt, ping, pong, rounds)
}

/// Framed ping-pong over a Unix-domain socket pair with k-MC window 1
/// each way.
#[cfg(unix)]
pub fn uds_ping_pong(rt: &Runtime, rounds: u32) -> u64 {
    let (ping, pong) = loopback_pair_uds::<u32>(
        NET_PING,
        NET_PONG,
        Some(PING_PONG_WINDOW),
        Some(PING_PONG_WINDOW),
    )
    .expect("loopback UDS pair");
    ping_pong(rt, ping, pong, rounds)
}

/// Floods `messages` values through one k-bounded TCP direction while
/// the far side drains; returns the number received in order.
pub fn tcp_burst(rt: &Runtime, messages: u32) -> u64 {
    let (mut source, mut sink) =
        loopback_pair_tcp::<u32>(NET_BURST_FROM, NET_BURST_TO, Some(BURST_WINDOW), Some(1))
            .expect("loopback TCP pair");
    let consumer = rt.spawn(async move {
        let mut received = 0u64;
        let mut expected = 0u32;
        while let Some(value) = sink.recv().await {
            assert_eq!(value, expected, "framed delivery out of order");
            expected += 1;
            received += 1;
        }
        received
    });
    let producer = rt.spawn(async move {
        for next in 0..messages {
            source.send(next).await.unwrap();
        }
        // Dropping the link closes the outgoing ring; the writer thread
        // drains it and shuts the socket down, so the consumer sees EOF
        // only after the last frame.
    });
    rt.block_on(producer).unwrap();
    rt.block_on(consumer).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dep_telemetry as telemetry;

    fn runtime() -> Runtime {
        Runtime::new(1)
    }

    #[test]
    fn tcp_ping_pong_completes_every_round() {
        let rt = runtime();
        assert_eq!(tcp_ping_pong(&rt, 64), 64);
    }

    #[cfg(unix)]
    #[test]
    fn uds_ping_pong_completes_every_round() {
        let rt = runtime();
        assert_eq!(uds_ping_pong(&rt, 64), 64);
    }

    #[test]
    fn tcp_burst_delivers_in_order() {
        let rt = runtime();
        assert_eq!(tcp_burst(&rt, 512), 512);
    }

    #[test]
    fn transport_telemetry_tracks_frames_and_windows() {
        if !telemetry::ENABLED {
            return;
        }
        telemetry::transport::reset();
        telemetry::channel::reset();
        let rt = runtime();
        let rounds = 32;
        assert_eq!(tcp_ping_pong(&rt, rounds), u64::from(rounds));
        let links = telemetry::transport::snapshot();
        let outbound = links
            .iter()
            .find(|link| link.from == NET_PING && link.to == NET_PONG)
            .expect("ping link registered");
        assert!(outbound.frames_sent >= u64::from(rounds));
        assert!(outbound.bytes_sent > outbound.frames_sent);
        assert_eq!(outbound.send_window, Some(PING_PONG_WINDOW as u64));
        assert_eq!(outbound.kmc_bound, Some(PING_PONG_WINDOW as u64));
        assert!(!outbound.window_exceeds_bound());
        // The session-facing ring is labelled and bounded identically,
        // so the channel registry proves the watermark never exceeded k.
        let channels = telemetry::channel::snapshot();
        let ring = channels
            .iter()
            .find(|link| link.from == NET_PING && link.to == NET_PONG)
            .expect("ring registered under the same label");
        assert!(!ring.violates_bound());
        telemetry::transport::reset();
        telemetry::channel::reset();
    }
}
