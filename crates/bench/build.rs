//! Captures the compiler version so benchmark artifacts can record the
//! toolchain that produced them (`bench::meta::rustc_version`).

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_owned());
    let version = std::process::Command::new(&rustc)
        .arg("-V")
        .output()
        .ok()
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "rustc unknown".to_owned());
    println!("cargo:rustc-env=BENCH_RUSTC_VERSION={version}");
    println!("cargo:rerun-if-changed=build.rs");
}
