//! Fig 7 (first): verifying the unrolled streaming source.

use std::time::Duration;

use bench::verification::streaming;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/streaming");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [0usize, 20, 40, 60, 80, 100] {
        group.bench_with_input(BenchmarkId::new("soundbinary", n), &n, |b, &n| {
            b.iter(|| streaming::check_soundbinary(n))
        });
        // k-MC's configuration space explodes with the channel bound;
        // keep the sweep where single checks stay under ~seconds.
        if n <= 40 {
            group.bench_with_input(BenchmarkId::new("kmc", n), &n, |b, &n| {
                b.iter(|| streaming::check_kmc(n))
            });
        }
        group.bench_with_input(BenchmarkId::new("rumpsteak", n), &n, |b, &n| {
            b.iter(|| streaming::check_rumpsteak(n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
