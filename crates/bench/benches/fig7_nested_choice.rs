//! Fig 7 (second): verifying nested choices (Chen et al. [13, Fig 3]).

use std::time::Duration;

use bench::verification::nested_choice;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/nested_choice");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in 1usize..=5 {
        if n <= 4 {
            group.bench_with_input(BenchmarkId::new("soundbinary", n), &n, |b, &n| {
                b.iter(|| nested_choice::check_soundbinary(n))
            });
            group.bench_with_input(BenchmarkId::new("kmc", n), &n, |b, &n| {
                b.iter(|| nested_choice::check_kmc(n))
            });
        }
        group.bench_with_input(BenchmarkId::new("rumpsteak", n), &n, |b, &n| {
            b.iter(|| nested_choice::check_rumpsteak(n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
