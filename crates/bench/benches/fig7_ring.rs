//! Fig 7 (third): verifying the optimised ring, local vs global analysis.

use std::time::Duration;

use bench::verification::ring;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/ring");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [2usize, 4, 6, 8, 10, 14, 20, 30] {
        // k-MC explores the product of all n machines: exponential.
        if n <= 8 {
            group.bench_with_input(BenchmarkId::new("kmc", n), &n, |b, &n| {
                b.iter(|| ring::check_kmc(n))
            });
        }
        group.bench_with_input(BenchmarkId::new("rumpsteak", n), &n, |b, &n| {
            b.iter(|| ring::check_rumpsteak(n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
