//! Ablation of the Appendix B.5 implementation tricks: the fail-early
//! reduction cut-off.
//!
//! On *rejecting* runs, fail-early prunes permanently-stuck derivation
//! paths as soon as the prefix pair becomes irreducible; without it the
//! search explores them to the recursion bound. Accepting runs are
//! unaffected (both configurations find the same derivation).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subtyping::SubtypeVisitor;
use theory::fsm::from_local;
use theory::local;

fn fsm(text: &str) -> theory::Fsm {
    from_local(&"r".into(), &local::parse(text).unwrap()).unwrap()
}

/// A rejecting workload: the unsafe double-buffering direction with n
/// extra anticipated readys — every path is doomed but only fail-early
/// notices before the bound.
fn rejecting_pair(n: usize) -> (theory::Fsm, theory::Fsm) {
    let mut optimised = String::new();
    for _ in 0..n {
        optimised.push_str("s!ready . ");
    }
    optimised.push_str("rec x . s!ready . s?value . t?ready . t!value . x");
    // Swapped: the *projection* is checked against the optimisation, a
    // genuinely false subtyping.
    (
        fsm("rec x . s!ready . s?value . t?ready . t!value . x"),
        fsm(&optimised),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/fail_early");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for n in [1usize, 2, 4, 8] {
        let (sub, sup) = rejecting_pair(n);
        let bound = n + 6;
        group.bench_with_input(BenchmarkId::new("with-fail-early", n), &n, |b, _| {
            b.iter(|| {
                assert!(!SubtypeVisitor::new(&sub, &sup, bound).run());
            })
        });
        group.bench_with_input(BenchmarkId::new("without-fail-early", n), &n, |b, _| {
            b.iter(|| {
                assert!(!SubtypeVisitor::new(&sub, &sup, bound)
                    .without_fail_early()
                    .run());
            })
        });
    }

    // Accepting workload: both configurations verify the same optimised
    // kernel; times should coincide.
    let optimised = fsm("s!ready . rec x . s!ready . s?value . t?ready . t!value . x");
    let projected = fsm("rec x . s!ready . s?value . t?ready . t!value . x");
    group.bench_function("accepting/with-fail-early", |b| {
        b.iter(|| assert!(SubtypeVisitor::new(&optimised, &projected, 8).run()))
    });
    group.bench_function("accepting/without-fail-early", |b| {
        b.iter(|| {
            assert!(SubtypeVisitor::new(&optimised, &projected, 8)
                .without_fail_early()
                .run())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
