//! Fig 7 (right): verifying the k-buffering kernel optimisation.

use std::time::Duration;

use bench::verification::k_buffering;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/k_buffering");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [0usize, 5, 10, 20, 40, 60, 80, 100] {
        // k-MC's channel bound follows n; cap the sweep where checks stay
        // tractable (the exponential trend is already visible).
        if n <= 20 {
            group.bench_with_input(BenchmarkId::new("kmc", n), &n, |b, &n| {
                b.iter(|| k_buffering::check_kmc(n))
            });
        }
        group.bench_with_input(BenchmarkId::new("rumpsteak", n), &n, |b, &n| {
            b.iter(|| k_buffering::check_rumpsteak(n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
