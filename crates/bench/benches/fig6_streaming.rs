//! Fig 6 (left): streaming throughput across frameworks.

use std::time::Duration;

use bench::protocols::streaming;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let rt = executor::Runtime::with_default_threads();
    let mut group = c.benchmark_group("fig6/streaming");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [10u32, 20, 30, 40, 50] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("sesh", n), &n, |b, &n| {
            b.iter(|| streaming::run_sesh(n))
        });
        group.bench_with_input(BenchmarkId::new("multicrusty", n), &n, |b, &n| {
            b.iter(|| streaming::run_multicrusty(n))
        });
        group.bench_with_input(BenchmarkId::new("ferrite", n), &n, |b, &n| {
            b.iter(|| streaming::run_ferrite(&rt, n))
        });
        group.bench_with_input(BenchmarkId::new("rumpsteak", n), &n, |b, &n| {
            b.iter(|| streaming::run_rumpsteak(&rt, n, false))
        });
        group.bench_with_input(BenchmarkId::new("rumpsteak-optimised", n), &n, |b, &n| {
            b.iter(|| streaming::run_rumpsteak(&rt, n, true))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
