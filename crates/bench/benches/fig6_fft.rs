//! Fig 6 (right): 8-process FFT throughput vs the sequential baseline.

use std::time::Duration;

use bench::protocols::fft8;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let rt = executor::Runtime::with_default_threads();
    let mut group = c.benchmark_group("fig6/fft");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [1000usize, 2000, 3000, 4000, 5000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("sesh", n), &n, |b, &n| {
            b.iter(|| fft8::run_sesh(n))
        });
        group.bench_with_input(BenchmarkId::new("multicrusty", n), &n, |b, &n| {
            b.iter(|| fft8::run_multicrusty(n))
        });
        group.bench_with_input(BenchmarkId::new("ferrite", n), &n, |b, &n| {
            b.iter(|| fft8::run_ferrite(&rt, n))
        });
        group.bench_with_input(BenchmarkId::new("rustfft", n), &n, |b, &n| {
            b.iter(|| fft8::run_sequential(n))
        });
        group.bench_with_input(BenchmarkId::new("rumpsteak", n), &n, |b, &n| {
            b.iter(|| fft8::run_rumpsteak(&rt, n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
