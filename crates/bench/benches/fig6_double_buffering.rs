//! Fig 6 (middle): double buffering throughput across frameworks.

use std::time::Duration;

use bench::protocols::double_buffering;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let rt = executor::Runtime::with_default_threads();
    let mut group = c.benchmark_group("fig6/double_buffering");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [5000usize, 10000, 15000, 20000, 25000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("sesh", n), &n, |b, &n| {
            b.iter(|| double_buffering::run_sesh(n))
        });
        group.bench_with_input(BenchmarkId::new("multicrusty", n), &n, |b, &n| {
            b.iter(|| double_buffering::run_multicrusty(n))
        });
        group.bench_with_input(BenchmarkId::new("ferrite", n), &n, |b, &n| {
            b.iter(|| double_buffering::run_ferrite(&rt, n))
        });
        group.bench_with_input(BenchmarkId::new("rumpsteak", n), &n, |b, &n| {
            b.iter(|| double_buffering::run_rumpsteak(&rt, n, false))
        });
        group.bench_with_input(BenchmarkId::new("rumpsteak-optimised", n), &n, |b, &n| {
            b.iter(|| double_buffering::run_rumpsteak(&rt, n, true))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
