//! Channel-telemetry invariants on the Fig 6 protocols.
//!
//! Two properties per protocol, exercised with and without the
//! `telemetry` feature (CI runs both):
//!
//! 1. The hand-annotated `bounds { ... }` clauses in the `roles!`
//!    declarations match the depths the k-MC checker actually computes
//!    from the serialised session types — the annotation cannot drift
//!    from the verified truth.
//! 2. After running the protocol (projected *and* optimised variants),
//!    every link's observed high-watermark stays within its registered
//!    bound: the static guarantee, checked against a real execution.
//!
//! In disabled builds the registry is empty and only that is asserted.

use bench::protocols::{double_buffering, fft8, streaming};
use rumpsteak::telemetry;

/// The union of per-channel maxima over several variants of a system,
/// computed by widening `k` until the exploration is exhaustive (the
/// depths are then tight bounds).
fn kmc_bounds(variants: &[Vec<theory::Fsm>]) -> Vec<(String, String, u64)> {
    let mut merged: std::collections::BTreeMap<(String, String), u64> = Default::default();
    for fsms in variants {
        let system = kmc::System::new(fsms.clone()).expect("valid system");
        // A too-small k can surface as a spurious deadlock (a send
        // disabled by a full channel leaves no machine able to move), so
        // widen on violations too; only an exhaustive pass is conclusive.
        let report = (1..=16)
            .find_map(|k| match kmc::check(&system, k) {
                Ok(report) if report.exhaustive => Some(report),
                _ => None,
            })
            .expect("system exhaustively checkable within k <= 16");
        for (from, to, depth) in report.channel_bounds(&system) {
            let entry = merged
                .entry((from.as_str().to_owned(), to.as_str().to_owned()))
                .or_insert(0);
            *entry = (*entry).max(depth as u64);
        }
    }
    merged
        .into_iter()
        .map(|((from, to), depth)| (from, to, depth))
        .collect()
}

/// Asserts the registered bound and observed watermark for `(from, to)`
/// after the protocol ran: bound matches the annotation, watermark is
/// within it, and the link actually carried traffic.
fn assert_link(snapshot: &[telemetry::channel::LinkSnapshot], from: &str, to: &str, bound: u64) {
    let link = snapshot
        .iter()
        .find(|l| l.from == from && l.to == to)
        .unwrap_or_else(|| panic!("link {from} -> {to} not registered"));
    assert_eq!(
        link.kmc_bound,
        Some(bound),
        "registered bound for {from} -> {to}"
    );
    assert!(
        !link.violates_bound(),
        "{from} -> {to}: watermark {} exceeds verified bound {bound}",
        link.high_watermark
    );
    assert!(
        link.high_watermark > 0,
        "{from} -> {to} carried no traffic — the watermark check is vacuous"
    );
    // Every slot commit stamps its wall-clock and every pop reads it
    // back, so a link that carried traffic must have latency samples —
    // and the quantile ladder they produce must be monotone.
    assert!(
        !link.latency.is_empty(),
        "{from} -> {to} carried traffic but recorded no send->recv latency"
    );
    let (p50, p99) = (link.latency.p50(), link.latency.p99());
    assert!(
        p50 <= p99 && p99 <= link.latency.max,
        "{from} -> {to} latency quantiles are not monotone: \
         p50={p50} p99={p99} max={}",
        link.latency.max
    );
}

#[test]
fn streaming_watermarks_stay_within_kmc_bounds() {
    // Annotation cross-check: projected and optimised sources, same sink.
    let variants = vec![
        vec![
            rumpsteak::serialize::<streaming::Source<'static>>().unwrap(),
            rumpsteak::serialize::<streaming::Sink<'static>>().unwrap(),
        ],
        vec![
            rumpsteak::serialize::<streaming::OptSource<'static>>().unwrap(),
            rumpsteak::serialize::<streaming::Sink<'static>>().unwrap(),
        ],
    ];
    assert_eq!(
        kmc_bounds(&variants),
        vec![
            ("S".to_owned(), "T".to_owned(), streaming::UNROLL as u64 + 1),
            ("T".to_owned(), "S".to_owned(), streaming::UNROLL as u64 + 1),
        ],
        "hand-annotated bounds in streaming's roles! clause are stale"
    );

    let rt = executor::Runtime::new(2);
    let count = 40;
    assert_eq!(
        streaming::run_rumpsteak(&rt, count, false),
        streaming::expected(count)
    );
    assert_eq!(
        streaming::run_rumpsteak(&rt, count, true),
        streaming::expected(count)
    );

    let snapshot = telemetry::channel::snapshot();
    if !telemetry::ENABLED {
        assert!(snapshot.is_empty());
        return;
    }
    assert_link(&snapshot, "S", "T", streaming::UNROLL as u64 + 1);
    assert_link(&snapshot, "T", "S", streaming::UNROLL as u64 + 1);

    // Both roles ran to completion twice, so the session-lifetime
    // registry must hold a spawn-to-teardown histogram per role.
    let sessions = telemetry::hist::sessions_snapshot();
    for role in ["S", "T"] {
        let (_, lifetime) = sessions
            .iter()
            .find(|(name, _)| *name == role)
            .unwrap_or_else(|| panic!("role {role} recorded no session lifetime"));
        assert!(lifetime.count >= 2, "role {role} ran twice");
    }
}

#[test]
fn double_buffering_watermarks_stay_within_kmc_bounds() {
    let variants = vec![
        vec![
            rumpsteak::serialize::<double_buffering::Kernel<'static>>().unwrap(),
            rumpsteak::serialize::<double_buffering::Source<'static>>().unwrap(),
            rumpsteak::serialize::<double_buffering::Sink<'static>>().unwrap(),
        ],
        vec![
            rumpsteak::serialize::<double_buffering::KernelOpt<'static>>().unwrap(),
            rumpsteak::serialize::<double_buffering::Source<'static>>().unwrap(),
            rumpsteak::serialize::<double_buffering::Sink<'static>>().unwrap(),
        ],
    ];
    assert_eq!(
        kmc_bounds(&variants),
        vec![
            ("K".to_owned(), "S".to_owned(), 2),
            ("K".to_owned(), "T".to_owned(), 1),
            ("S".to_owned(), "K".to_owned(), 2),
            ("T".to_owned(), "K".to_owned(), 1),
        ],
        "hand-annotated bounds in double_buffering's roles! clause are stale"
    );

    let rt = executor::Runtime::new(2);
    let size = 64;
    assert_eq!(
        double_buffering::run_rumpsteak(&rt, size, false),
        double_buffering::expected(size)
    );
    assert_eq!(
        double_buffering::run_rumpsteak(&rt, size, true),
        double_buffering::expected(size)
    );

    let snapshot = telemetry::channel::snapshot();
    if !telemetry::ENABLED {
        assert!(snapshot.is_empty());
        return;
    }
    assert_link(&snapshot, "K", "S", 2);
    assert_link(&snapshot, "S", "K", 2);
    assert_link(&snapshot, "K", "T", 1);
    assert_link(&snapshot, "T", "K", 1);
}

#[test]
fn fft_watermarks_stay_within_kmc_bounds() {
    use fft8::{P0, P1, P2, P3, P4, P5, P6, P7};
    let variants = vec![vec![
        rumpsteak::serialize::<fft8::FftSession<'static, P0, P1, P2, P4>>().unwrap(),
        rumpsteak::serialize::<fft8::FftSession<'static, P1, P0, P3, P5>>().unwrap(),
        rumpsteak::serialize::<fft8::FftSession<'static, P2, P3, P0, P6>>().unwrap(),
        rumpsteak::serialize::<fft8::FftSession<'static, P3, P2, P1, P7>>().unwrap(),
        rumpsteak::serialize::<fft8::FftSession<'static, P4, P5, P6, P0>>().unwrap(),
        rumpsteak::serialize::<fft8::FftSession<'static, P5, P4, P7, P1>>().unwrap(),
        rumpsteak::serialize::<fft8::FftSession<'static, P6, P7, P4, P2>>().unwrap(),
        rumpsteak::serialize::<fft8::FftSession<'static, P7, P6, P5, P3>>().unwrap(),
    ]];
    let bounds = kmc_bounds(&variants);
    // 8 processes × 3 partners, every directed channel carries one column.
    assert_eq!(bounds.len(), 24, "directed channel count");
    assert!(
        bounds.iter().all(|(_, _, depth)| *depth == 1),
        "hand-annotated bounds in fft8's roles! clause are stale: {bounds:?}"
    );

    let rt = executor::Runtime::new(4);
    let rows = 16;
    let out = fft8::run_rumpsteak(&rt, rows);
    let expected = fft8::run_sequential(rows);
    assert!((fft8::checksum(&out) - fft8::checksum(&expected)).abs() < 1e-6);

    let snapshot = telemetry::channel::snapshot();
    if !telemetry::ENABLED {
        assert!(snapshot.is_empty());
        return;
    }
    for (from, to, depth) in &bounds {
        assert_link(&snapshot, from, to, *depth);
    }
}
