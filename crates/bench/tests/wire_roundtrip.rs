//! Property test for the distributed wire path: every wire-enabled
//! bench message type survives serialise → frame → deframe →
//! deserialise, with the byte stream re-chunked at adversarial
//! boundaries between the two ends.
//!
//! No property-testing crate is used: a small deterministic xorshift
//! generator drives both the message payloads and the chunk sizes, so
//! failures replay exactly from the printed seed.

use bench::protocols::{double_buffering, streaming};
use rumpsteak::net::{encode_frame, encode_frame_traced, FrameDecoder, FRAME_HEADER};
use rumpsteak::wire::{from_bytes, to_bytes, TraceContext, Wire};

/// Xorshift64*: deterministic, seedable, good enough to sweep payload
/// shapes and split points.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Round-trips `messages` through one framed stream delivered in
/// `rng`-sized chunks; `check` compares each decoded message with its
/// original. Every other frame carries a [`TraceContext`] (the stream a
/// telemetry-enabled sender interleaves with an uninstrumented one),
/// and the decoded contexts must come back verbatim.
fn roundtrip<M: Wire>(rng: &mut Rng, messages: &[M], check: impl Fn(&M, &M)) {
    let mut stream = Vec::new();
    let mut contexts = Vec::new();
    for (index, message) in messages.iter().enumerate() {
        let payload = to_bytes(message);
        let trace = (index % 2 == 0).then(|| TraceContext {
            session: rng.next(),
            seq: index as u64,
            t_ns: rng.next(),
        });
        encode_frame_traced(&payload, trace.as_ref(), &mut stream)
            .expect("bench messages are far below MAX_FRAME");
        contexts.push(trace);
    }
    let mut decoder = FrameDecoder::new();
    let mut decoded = Vec::new();
    let mut offset = 0;
    while offset < stream.len() {
        let chunk = 1 + rng.below(64) as usize;
        let end = (offset + chunk).min(stream.len());
        decoder.push(&stream[offset..end]);
        offset = end;
        while let Some(frame) = decoder.next_frame().expect("stream is well-formed") {
            decoded.push(frame);
        }
    }
    assert_eq!(decoder.buffered(), 0, "trailing bytes after the last frame");
    assert_eq!(decoded.len(), messages.len());
    for ((original, frame), trace) in messages.iter().zip(&decoded).zip(&contexts) {
        check(
            original,
            &from_bytes::<M>(&frame.payload).expect("payload round-trips"),
        );
        assert_eq!(&frame.trace, trace, "trace context changed across the wire");
    }
}

#[test]
fn streaming_labels_roundtrip_under_every_split() {
    let seed = 0x5EED_0001_u64;
    let mut rng = Rng(seed);
    for _ in 0..50 {
        let messages: Vec<streaming::Label> = (0..100)
            .map(|_| match rng.below(3) {
                0 => streaming::Label::Ready(streaming::Ready),
                1 => streaming::Label::Value(streaming::Value(rng.next() as i32)),
                _ => streaming::Label::Stop(streaming::Stop),
            })
            .collect();
        roundtrip(&mut rng, &messages, |original, copy| {
            match (original, copy) {
                (streaming::Label::Ready(_), streaming::Label::Ready(_)) => {}
                (streaming::Label::Stop(_), streaming::Label::Stop(_)) => {}
                (
                    streaming::Label::Value(streaming::Value(a)),
                    streaming::Label::Value(streaming::Value(b)),
                ) => assert_eq!(a, b, "seed {seed:#x}"),
                _ => panic!("variant changed across the wire (seed {seed:#x})"),
            }
        });
    }
}

#[test]
fn double_buffering_labels_roundtrip_under_every_split() {
    let seed = 0x5EED_0002_u64;
    let mut rng = Rng(seed);
    for _ in 0..20 {
        let messages: Vec<double_buffering::Label> = (0..40)
            .map(|_| {
                if rng.below(2) == 0 {
                    double_buffering::Label::Ready(double_buffering::Ready)
                } else {
                    let len = rng.below(200) as usize;
                    let buffer: double_buffering::Buffer =
                        (0..len).map(|_| rng.next() as i32).collect();
                    double_buffering::Label::Value(double_buffering::Value(buffer))
                }
            })
            .collect();
        roundtrip(&mut rng, &messages, |original, copy| {
            match (original, copy) {
                (double_buffering::Label::Ready(_), double_buffering::Label::Ready(_)) => {}
                (
                    double_buffering::Label::Value(double_buffering::Value(a)),
                    double_buffering::Label::Value(double_buffering::Value(b)),
                ) => assert_eq!(a, b, "seed {seed:#x}"),
                _ => panic!("variant changed across the wire (seed {seed:#x})"),
            }
        });
    }
}

/// Zero-length payloads (unit labels) are legal frames: `Ready` encodes
/// to a bare tag, and an empty `Vec` payload to a bare count — both
/// must survive framing adjacent to maximum-entropy neighbours.
#[test]
fn zero_and_empty_payloads_frame_cleanly() {
    let mut rng = Rng(0x5EED_0003);
    let messages = vec![
        double_buffering::Label::Ready(double_buffering::Ready),
        double_buffering::Label::Value(double_buffering::Value(Vec::new())),
        double_buffering::Label::Value(double_buffering::Value(vec![i32::MIN, -1, 0, i32::MAX])),
        double_buffering::Label::Ready(double_buffering::Ready),
    ];
    roundtrip(&mut rng, &messages, |original, copy| {
        match (original, copy) {
            (double_buffering::Label::Ready(_), double_buffering::Label::Ready(_)) => {}
            (
                double_buffering::Label::Value(double_buffering::Value(a)),
                double_buffering::Label::Value(double_buffering::Value(b)),
            ) => assert_eq!(a, b),
            _ => panic!("variant changed across the wire"),
        }
    });
    // An empty frame really is header-only on the wire, and attaching a
    // trace context costs exactly its fixed encoding — the payload
    // length word never includes it.
    let mut wire = Vec::new();
    encode_frame(&[], &mut wire).unwrap();
    assert_eq!(wire.len(), FRAME_HEADER);
    wire.clear();
    encode_frame_traced(&[], Some(&TraceContext::default()), &mut wire).unwrap();
    assert_eq!(wire.len(), FRAME_HEADER + TraceContext::WIRE_SIZE);
}

/// Splits a traced frame at *every* byte boundary — including each of
/// the 24 positions inside the trace context — and requires the decoder
/// to reassemble the identical context every time.
#[test]
fn trace_context_survives_every_single_byte_boundary() {
    let ctx = TraceContext {
        session: 0x0123_4567_89AB_CDEF,
        seq: u64::MAX,
        t_ns: 0xFEDC_BA98_7654_3210,
    };
    let payload = to_bytes(&streaming::Label::Value(streaming::Value(-7)));
    let mut wire = Vec::new();
    encode_frame_traced(&payload, Some(&ctx), &mut wire).unwrap();
    for split in 0..=wire.len() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&wire[..split]);
        if split < wire.len() {
            assert!(
                decoder
                    .next_frame()
                    .expect("prefix is well-formed")
                    .is_none(),
                "frame completed {} byte(s) early",
                wire.len() - split
            );
        }
        decoder.push(&wire[split..]);
        let frame = decoder
            .next_frame()
            .expect("stream is well-formed")
            .expect("frame completes once every byte arrived");
        assert_eq!(frame.trace, Some(ctx));
        assert_eq!(frame.payload, payload);
        assert_eq!(decoder.buffered(), 0);
    }
}
