//! Local session types `T` (paper Definition 1):
//!
//! ```text
//! T ::= end | ⊕ᵢ p!ℓᵢ(Sᵢ).Tᵢ | &ᵢ p?ℓᵢ(Sᵢ).Tᵢ | μt.T | t
//! ```
//!
//! Also provides a small textual parser ([`parse`]) used by tests, the CLI
//! tools and the benchmark generators:
//!
//! ```text
//! T := end | X | rec X . T
//!    | p!l(S).T | p?l(S).T          single send / receive
//!    | +{ p!l1(S).T1, p!l2.T2 }     internal choice
//!    | &{ p?l1.T1, p?l2.T2 }        external choice
//! ```

use std::collections::BTreeSet;
use std::fmt;

use crate::name::Name;
use crate::sort::Sort;

/// One labelled continuation of a choice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalBranch {
    /// Message label.
    pub label: Name,
    /// Payload sort.
    pub sort: Sort,
    /// Continuation type.
    pub continuation: LocalType,
}

/// A session type from the point of view of a single participant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LocalType {
    /// Successful termination.
    End,
    /// Internal choice `⊕ᵢ peer!ℓᵢ(Sᵢ).Tᵢ`: this participant picks a label
    /// and sends it to `peer`.
    Select {
        /// The receiving peer.
        peer: Name,
        /// Available labels; must be pairwise distinct.
        branches: Vec<LocalBranch>,
    },
    /// External choice `&ᵢ peer?ℓᵢ(Sᵢ).Tᵢ`: this participant receives one
    /// of the labels from `peer`.
    Branch {
        /// The sending peer.
        peer: Name,
        /// Accepted labels; must be pairwise distinct.
        branches: Vec<LocalBranch>,
    },
    /// Recursive type `μt.T`.
    Rec {
        /// Bound recursion variable.
        var: Name,
        /// Body in which `var` may occur.
        body: Box<LocalType>,
    },
    /// Occurrence of a recursion variable.
    Var(Name),
}

impl LocalType {
    /// Single send `peer!label(sort).continuation`.
    pub fn send(
        peer: impl Into<Name>,
        label: impl Into<Name>,
        sort: Sort,
        continuation: LocalType,
    ) -> Self {
        LocalType::Select {
            peer: peer.into(),
            branches: vec![LocalBranch {
                label: label.into(),
                sort,
                continuation,
            }],
        }
    }

    /// Single receive `peer?label(sort).continuation`.
    pub fn receive(
        peer: impl Into<Name>,
        label: impl Into<Name>,
        sort: Sort,
        continuation: LocalType,
    ) -> Self {
        LocalType::Branch {
            peer: peer.into(),
            branches: vec![LocalBranch {
                label: label.into(),
                sort,
                continuation,
            }],
        }
    }

    /// Internal choice towards `peer`.
    pub fn select(
        peer: impl Into<Name>,
        branches: impl IntoIterator<Item = (Name, Sort, LocalType)>,
    ) -> Self {
        LocalType::Select {
            peer: peer.into(),
            branches: collect_branches(branches),
        }
    }

    /// External choice from `peer`.
    pub fn branch(
        peer: impl Into<Name>,
        branches: impl IntoIterator<Item = (Name, Sort, LocalType)>,
    ) -> Self {
        LocalType::Branch {
            peer: peer.into(),
            branches: collect_branches(branches),
        }
    }

    /// `μvar.body`.
    pub fn rec(var: impl Into<Name>, body: LocalType) -> Self {
        LocalType::Rec {
            var: var.into(),
            body: Box::new(body),
        }
    }

    /// All peers this participant talks to.
    pub fn peers(&self) -> BTreeSet<Name> {
        let mut set = BTreeSet::new();
        self.collect_peers(&mut set);
        set
    }

    fn collect_peers(&self, set: &mut BTreeSet<Name>) {
        match self {
            LocalType::End | LocalType::Var(_) => {}
            LocalType::Select { peer, branches } | LocalType::Branch { peer, branches } => {
                set.insert(peer.clone());
                for branch in branches {
                    branch.continuation.collect_peers(set);
                }
            }
            LocalType::Rec { body, .. } => body.collect_peers(set),
        }
    }

    /// Whether the recursion variable `var` occurs free in this type.
    pub fn uses_var(&self, var: &Name) -> bool {
        match self {
            LocalType::End => false,
            LocalType::Var(v) => v == var,
            LocalType::Rec { var: bound, body } => bound != var && body.uses_var(var),
            LocalType::Select { branches, .. } | LocalType::Branch { branches, .. } => {
                branches.iter().any(|b| b.continuation.uses_var(var))
            }
        }
    }

    /// Unfolds one level of recursion: `μt.T ↦ T[μt.T/t]`; other forms are
    /// returned unchanged.
    pub fn unfold(&self) -> LocalType {
        match self {
            LocalType::Rec { var, body } => body.substitute(var, self),
            other => other.clone(),
        }
    }

    /// Capture-avoiding substitution `self[replacement/var]`.
    pub fn substitute(&self, var: &Name, replacement: &LocalType) -> LocalType {
        match self {
            LocalType::End => LocalType::End,
            LocalType::Var(v) => {
                if v == var {
                    replacement.clone()
                } else {
                    LocalType::Var(v.clone())
                }
            }
            LocalType::Rec { var: bound, body } => {
                if bound == var {
                    // `var` is shadowed; nothing to substitute below.
                    self.clone()
                } else {
                    LocalType::Rec {
                        var: bound.clone(),
                        body: Box::new(body.substitute(var, replacement)),
                    }
                }
            }
            LocalType::Select { peer, branches } => LocalType::Select {
                peer: peer.clone(),
                branches: substitute_branches(branches, var, replacement),
            },
            LocalType::Branch { peer, branches } => LocalType::Branch {
                peer: peer.clone(),
                branches: substitute_branches(branches, var, replacement),
            },
        }
    }
}

fn collect_branches(
    branches: impl IntoIterator<Item = (Name, Sort, LocalType)>,
) -> Vec<LocalBranch> {
    branches
        .into_iter()
        .map(|(label, sort, continuation)| LocalBranch {
            label,
            sort,
            continuation,
        })
        .collect()
}

fn substitute_branches(
    branches: &[LocalBranch],
    var: &Name,
    replacement: &LocalType,
) -> Vec<LocalBranch> {
    branches
        .iter()
        .map(|b| LocalBranch {
            label: b.label.clone(),
            sort: b.sort.clone(),
            continuation: b.continuation.substitute(var, replacement),
        })
        .collect()
}

impl fmt::Display for LocalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_branch(
            f: &mut fmt::Formatter<'_>,
            peer: &Name,
            op: char,
            branch: &LocalBranch,
        ) -> fmt::Result {
            if branch.sort == Sort::Unit {
                write!(f, "{peer}{op}{}.{}", branch.label, branch.continuation)
            } else {
                write!(
                    f,
                    "{peer}{op}{}({}).{}",
                    branch.label, branch.sort, branch.continuation
                )
            }
        }
        match self {
            LocalType::End => f.write_str("end"),
            LocalType::Var(var) => write!(f, "{var}"),
            LocalType::Rec { var, body } => write!(f, "rec {var}.{body}"),
            LocalType::Select { peer, branches } if branches.len() == 1 => {
                write_branch(f, peer, '!', &branches[0])
            }
            LocalType::Branch { peer, branches } if branches.len() == 1 => {
                write_branch(f, peer, '?', &branches[0])
            }
            LocalType::Select { peer, branches } => {
                f.write_str("+{")?;
                for (index, branch) in branches.iter().enumerate() {
                    if index > 0 {
                        f.write_str(", ")?;
                    }
                    write_branch(f, peer, '!', branch)?;
                }
                f.write_str("}")
            }
            LocalType::Branch { peer, branches } => {
                f.write_str("&{")?;
                for (index, branch) in branches.iter().enumerate() {
                    if index > 0 {
                        f.write_str(", ")?;
                    }
                    write_branch(f, peer, '?', branch)?;
                }
                f.write_str("}")
            }
        }
    }
}

mod parser;
pub use parser::{parse, ParseError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfold_streaming_source() {
        // rec x . t?ready . +{ t!value.x, t!stop.end }
        let t = LocalType::rec(
            "x",
            LocalType::receive(
                "t",
                "ready",
                Sort::Unit,
                LocalType::select(
                    "t",
                    [
                        ("value".into(), Sort::I32, LocalType::Var("x".into())),
                        ("stop".into(), Sort::Unit, LocalType::End),
                    ],
                ),
            ),
        );
        let unfolded = t.unfold();
        // The unfolding starts with the receive, and the `value` branch now
        // loops back to the full recursive type.
        match &unfolded {
            LocalType::Branch { peer, branches } => {
                assert_eq!(peer, &Name::from("t"));
                assert_eq!(branches.len(), 1);
                match &branches[0].continuation {
                    LocalType::Select { branches, .. } => {
                        assert_eq!(branches[0].continuation, t);
                    }
                    other => panic!("unexpected {other}"),
                }
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn substitution_respects_shadowing() {
        // (rec x . x)[end/x] must not replace the bound occurrence.
        let t = LocalType::rec("x", LocalType::Var("x".into()));
        assert_eq!(t.substitute(&"x".into(), &LocalType::End), t);
    }

    #[test]
    fn uses_var_sees_through_choices() {
        let t = LocalType::select(
            "p",
            [
                ("a".into(), Sort::Unit, LocalType::End),
                ("b".into(), Sort::Unit, LocalType::Var("x".into())),
            ],
        );
        assert!(t.uses_var(&"x".into()));
        assert!(!t.uses_var(&"y".into()));
    }

    #[test]
    fn display_singletons_without_braces() {
        let t = LocalType::send("p", "hello", Sort::Unit, LocalType::End);
        assert_eq!(t.to_string(), "p!hello.end");
    }
}
