//! Cheaply clonable interned-style names for roles, labels and variables.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An immutable, reference-counted identifier.
///
/// Used for participant names (`s`, `k`, `t`), message labels (`ready`,
/// `value`) and recursion variables. Equality and hashing are by string
/// value; cloning is an `Arc` bump.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(Arc<str>);

impl Name {
    /// Creates a name from any string-like value.
    pub fn new(value: impl AsRef<str>) -> Self {
        Self(Arc::from(value.as_ref()))
    }

    /// View as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", &*self.0)
    }
}

impl From<&str> for Name {
    fn from(value: &str) -> Self {
        Self::new(value)
    }
}

impl From<String> for Name {
    fn from(value: String) -> Self {
        Self::new(value)
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_by_value() {
        assert_eq!(Name::from("s"), Name::new(String::from("s")));
        assert_ne!(Name::from("s"), Name::from("t"));
    }

    #[test]
    fn usable_as_map_key_by_str() {
        let mut map = std::collections::HashMap::new();
        map.insert(Name::from("k"), 1);
        assert_eq!(map.get("k"), Some(&1));
    }
}
