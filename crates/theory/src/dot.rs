//! Graphviz (DOT) rendering of FSMs, for debugging protocols.

use std::fmt::Write as _;

use crate::fsm::Fsm;

/// Renders an FSM in Graphviz DOT syntax.
///
/// Terminal states are drawn as double circles; the initial state receives
/// an incoming arrow from an invisible point node.
pub fn to_dot(fsm: &Fsm) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", fsm.role);
    let _ = writeln!(out, "    rankdir=LR;");
    let _ = writeln!(out, "    __start [shape=point, style=invis];");
    for state in fsm.states() {
        let shape = if fsm.is_terminal(state) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "    {state} [shape={shape}];");
    }
    let _ = writeln!(out, "    __start -> {};", fsm.initial());
    for state in fsm.states() {
        for (action, target) in fsm.transitions(state) {
            let _ = writeln!(out, "    {state} -> {target} [label=\"{action}\"];");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::from_local;
    use crate::local;

    #[test]
    fn renders_kernel_fsm() {
        let t = local::parse("rec x . s!ready . s?value . t?ready . t!value . x").unwrap();
        let fsm = from_local(&"k".into(), &t).unwrap();
        let dot = to_dot(&fsm);
        assert!(dot.contains("digraph \"k\""));
        assert!(dot.contains("s0 -> s1 [label=\"s!ready\"];"));
        assert!(dot.contains("s3 -> s0 [label=\"t!value\"];"));
    }

    #[test]
    fn terminal_states_double_circled() {
        let t = local::parse("p!a.end").unwrap();
        let fsm = from_local(&"r".into(), &t).unwrap();
        assert!(to_dot(&fsm).contains("doublecircle"));
    }
}
