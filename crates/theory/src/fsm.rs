//! Communicating finite state machines (CFSMs).
//!
//! Local types are converted into FSMs before verification (paper §2,
//! Appendix B.5): states are subterms, transitions are send/receive actions.
//! The subtyping algorithm and the k-MC checker both act on this
//! representation; `fsm_to_local`/`from_local` witness that the conversion
//! is faithful.

use std::collections::HashMap;
use std::fmt;

use crate::local::{LocalBranch, LocalType};
use crate::name::Name;
use crate::sort::Sort;

/// Index of a state within one [`Fsm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateIndex(pub usize);

impl fmt::Display for StateIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Whether an action sends or receives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `peer!label` — enqueue onto the channel towards `peer`.
    Send,
    /// `peer?label` — dequeue from the channel from `peer`.
    Receive,
}

impl Direction {
    /// The session-type symbol for the direction (`!` or `?`).
    pub fn symbol(self) -> char {
        match self {
            Direction::Send => '!',
            Direction::Receive => '?',
        }
    }
}

/// A single transition action `peer!label(sort)` or `peer?label(sort)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Action {
    /// Send or receive.
    pub direction: Direction,
    /// The other participant involved.
    pub peer: Name,
    /// The message label.
    pub label: Name,
    /// The payload sort.
    pub sort: Sort,
}

impl Action {
    /// Builds a send action.
    pub fn send(peer: impl Into<Name>, label: impl Into<Name>, sort: Sort) -> Self {
        Self {
            direction: Direction::Send,
            peer: peer.into(),
            label: label.into(),
            sort,
        }
    }

    /// Builds a receive action.
    pub fn receive(peer: impl Into<Name>, label: impl Into<Name>, sort: Sort) -> Self {
        Self {
            direction: Direction::Receive,
            peer: peer.into(),
            label: label.into(),
            sort,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sort == Sort::Unit {
            write!(f, "{}{}{}", self.peer, self.direction.symbol(), self.label)
        } else {
            write!(
                f,
                "{}{}{}({})",
                self.peer,
                self.direction.symbol(),
                self.label,
                self.sort
            )
        }
    }
}

/// Errors arising when constructing or converting FSMs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsmError {
    /// A state mixes send and receive transitions, or transitions towards
    /// different peers; local types require directed choice.
    MixedState(StateIndex),
    /// Two transitions from the same state share a label.
    DuplicateLabel(StateIndex, Name),
    /// A transition referenced a state out of bounds.
    InvalidTarget(StateIndex),
    /// The local type had an unbound recursion variable.
    UnboundVariable(Name),
    /// The type recursed without any intervening action (`μt.t`).
    UnguardedRecursion(Name),
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::MixedState(state) => {
                write!(f, "state {state} mixes directions or peers")
            }
            FsmError::DuplicateLabel(state, label) => {
                write!(f, "state {state} has duplicate label {label}")
            }
            FsmError::InvalidTarget(state) => write!(f, "transition to invalid state {state}"),
            FsmError::UnboundVariable(var) => write!(f, "unbound recursion variable {var}"),
            FsmError::UnguardedRecursion(var) => write!(f, "unguarded recursion on {var}"),
        }
    }
}

impl std::error::Error for FsmError {}

/// A finite state machine describing one participant's view of a protocol.
///
/// Terminal states have no outgoing transitions. Construction via
/// [`FsmBuilder`] or [`from_local`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fsm {
    /// The participant whose behaviour this machine describes.
    pub role: Name,
    transitions: Vec<Vec<(Action, StateIndex)>>,
    initial: StateIndex,
}

impl Fsm {
    /// The initial state.
    pub fn initial(&self) -> StateIndex {
        self.initial
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True for the degenerate machine with no states.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Outgoing transitions of `state`.
    pub fn transitions(&self, state: StateIndex) -> &[(Action, StateIndex)] {
        &self.transitions[state.0]
    }

    /// True if `state` has no outgoing transitions.
    pub fn is_terminal(&self, state: StateIndex) -> bool {
        self.transitions[state.0].is_empty()
    }

    /// Iterates over all state indices.
    pub fn states(&self) -> impl Iterator<Item = StateIndex> {
        (0..self.transitions.len()).map(StateIndex)
    }

    /// The direction of `state`'s transitions, or `None` for terminal
    /// states. Errors if the state mixes directions (allowed by k-MC's wider
    /// syntax but not by local types).
    pub fn state_direction(&self, state: StateIndex) -> Result<Option<Direction>, FsmError> {
        let transitions = &self.transitions[state.0];
        let Some(((first, _), rest)) = transitions.split_first() else {
            return Ok(None);
        };
        for (action, _) in rest {
            if action.direction != first.direction {
                return Err(FsmError::MixedState(state));
            }
        }
        Ok(Some(first.direction))
    }

    /// Validates the directed-choice discipline required by local types:
    /// each non-terminal state is all-send or all-receive towards a single
    /// peer, with pairwise distinct labels.
    pub fn validate_directed(&self) -> Result<(), FsmError> {
        for state in self.states() {
            let transitions = &self.transitions[state.0];
            let Some(((first, _), rest)) = transitions.split_first() else {
                continue;
            };
            let mut labels = std::collections::BTreeSet::new();
            labels.insert(&first.label);
            for (action, target) in rest {
                if action.direction != first.direction || action.peer != first.peer {
                    return Err(FsmError::MixedState(state));
                }
                if !labels.insert(&action.label) {
                    return Err(FsmError::DuplicateLabel(state, action.label.clone()));
                }
                if target.0 >= self.transitions.len() {
                    return Err(FsmError::InvalidTarget(*target));
                }
            }
        }
        Ok(())
    }
}

/// Incremental FSM constructor.
pub struct FsmBuilder {
    role: Name,
    transitions: Vec<Vec<(Action, StateIndex)>>,
}

impl FsmBuilder {
    /// Starts building a machine for `role`.
    pub fn new(role: impl Into<Name>) -> Self {
        Self {
            role: role.into(),
            transitions: Vec::new(),
        }
    }

    /// Adds a fresh state and returns its index.
    pub fn add_state(&mut self) -> StateIndex {
        self.transitions.push(Vec::new());
        StateIndex(self.transitions.len() - 1)
    }

    /// Adds a transition `from --action--> to`.
    pub fn add_transition(&mut self, from: StateIndex, action: Action, to: StateIndex) {
        self.transitions[from.0].push((action, to));
    }

    /// Finishes the machine with `initial` as start state.
    pub fn build(self, initial: StateIndex) -> Result<Fsm, FsmError> {
        if initial.0 >= self.transitions.len() {
            return Err(FsmError::InvalidTarget(initial));
        }
        for row in &self.transitions {
            for (_, target) in row {
                if target.0 >= self.transitions.len() {
                    return Err(FsmError::InvalidTarget(*target));
                }
            }
        }
        Ok(Fsm {
            role: self.role,
            transitions: self.transitions,
            initial,
        })
    }
}

/// Converts a local type into its FSM.
///
/// Recursion variables become back edges; `μt.T` shares the state of its
/// body. Unguarded recursion (`μt.t`) is rejected.
pub fn from_local(role: &Name, local: &LocalType) -> Result<Fsm, FsmError> {
    let mut builder = FsmBuilder::new(role.clone());
    let mut env: HashMap<Name, StateIndex> = HashMap::new();
    let initial = build_state(&mut builder, local, &mut env, &mut Vec::new())?;
    builder.build(initial)
}

fn build_state(
    builder: &mut FsmBuilder,
    local: &LocalType,
    env: &mut HashMap<Name, StateIndex>,
    pending: &mut Vec<Name>,
) -> Result<StateIndex, FsmError> {
    match local {
        LocalType::End => Ok(builder.add_state()),
        LocalType::Var(var) => {
            if pending.contains(var) {
                return Err(FsmError::UnguardedRecursion(var.clone()));
            }
            env.get(var)
                .copied()
                .ok_or_else(|| FsmError::UnboundVariable(var.clone()))
        }
        LocalType::Rec { var, body } => {
            // Reserve the state up front so back edges can point at it.
            let state = builder.add_state();
            let shadowed = env.insert(var.clone(), state);
            pending.push(var.clone());
            let body_state = build_branches_into(builder, state, body, env, pending)?;
            pending.pop();
            match shadowed {
                Some(previous) => {
                    env.insert(var.clone(), previous);
                }
                None => {
                    env.remove(var);
                }
            }
            Ok(body_state)
        }
        LocalType::Select { .. } | LocalType::Branch { .. } => {
            let state = builder.add_state();
            build_branches_into(builder, state, local, env, pending)
        }
    }
}

/// Populates `state` with the transitions of `local`, which must be a
/// choice, a nested `rec`, a variable, or `end` (merged into `state`).
fn build_branches_into(
    builder: &mut FsmBuilder,
    state: StateIndex,
    local: &LocalType,
    env: &mut HashMap<Name, StateIndex>,
    pending: &mut Vec<Name>,
) -> Result<StateIndex, FsmError> {
    match local {
        // `μt.end` and immediate `end`: the reserved state is terminal.
        LocalType::End => Ok(state),
        LocalType::Var(var) => {
            if pending.contains(var) {
                return Err(FsmError::UnguardedRecursion(var.clone()));
            }
            // `μt.t'`: alias to the outer variable's state; the reserved
            // state is left unreachable and `t` maps to the alias target.
            env.get(var)
                .copied()
                .ok_or_else(|| FsmError::UnboundVariable(var.clone()))
        }
        LocalType::Rec { var, body } => {
            let shadowed = env.insert(var.clone(), state);
            pending.push(var.clone());
            let result = build_branches_into(builder, state, body, env, pending);
            pending.pop();
            match shadowed {
                Some(previous) => {
                    env.insert(var.clone(), previous);
                }
                None => {
                    env.remove(var);
                }
            }
            result
        }
        LocalType::Select { peer, branches } => {
            add_choice(builder, state, peer, Direction::Send, branches, env)?;
            Ok(state)
        }
        LocalType::Branch { peer, branches } => {
            add_choice(builder, state, peer, Direction::Receive, branches, env)?;
            Ok(state)
        }
    }
}

fn add_choice(
    builder: &mut FsmBuilder,
    state: StateIndex,
    peer: &Name,
    direction: Direction,
    branches: &[LocalBranch],
    env: &mut HashMap<Name, StateIndex>,
) -> Result<(), FsmError> {
    for branch in branches {
        // Recursion below an action is guarded again: fresh pending set.
        let target = build_state(builder, &branch.continuation, env, &mut Vec::new())?;
        builder.add_transition(
            state,
            Action {
                direction,
                peer: peer.clone(),
                label: branch.label.clone(),
                sort: branch.sort.clone(),
            },
            target,
        );
    }
    Ok(())
}

/// Converts an FSM back into a local type, introducing `rec` binders at
/// states reachable from themselves.
pub fn to_local(fsm: &Fsm) -> Result<LocalType, FsmError> {
    fsm.validate_directed()?;
    let mut on_stack = vec![false; fsm.len()];
    let mut used_var = vec![false; fsm.len()];
    let t = to_local_state(fsm, fsm.initial(), &mut on_stack, &mut used_var)?;
    Ok(t)
}

fn to_local_state(
    fsm: &Fsm,
    state: StateIndex,
    on_stack: &mut Vec<bool>,
    used_var: &mut Vec<bool>,
) -> Result<LocalType, FsmError> {
    if on_stack[state.0] {
        used_var[state.0] = true;
        return Ok(LocalType::Var(var_for(state)));
    }
    let transitions = fsm.transitions(state);
    if transitions.is_empty() {
        return Ok(LocalType::End);
    }
    on_stack[state.0] = true;
    let direction = transitions[0].0.direction;
    let peer = transitions[0].0.peer.clone();
    let mut branches = Vec::with_capacity(transitions.len());
    for (action, target) in transitions {
        branches.push(LocalBranch {
            label: action.label.clone(),
            sort: action.sort.clone(),
            continuation: to_local_state(fsm, *target, on_stack, used_var)?,
        });
    }
    on_stack[state.0] = false;
    let body = match direction {
        Direction::Send => LocalType::Select { peer, branches },
        Direction::Receive => LocalType::Branch { peer, branches },
    };
    Ok(if used_var[state.0] {
        LocalType::Rec {
            var: var_for(state),
            body: Box::new(body),
        }
    } else {
        body
    })
}

fn var_for(state: StateIndex) -> Name {
    Name::new(format!("X{}", state.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local;

    #[test]
    fn streaming_source_fsm() {
        let t = local::parse("rec x . t?ready . +{ t!value(i32).x, t!stop.end }").unwrap();
        let fsm = from_local(&"s".into(), &t).unwrap();
        assert_eq!(fsm.len(), 3); // loop head, choice state, end
        let initial = fsm.initial();
        let transitions = fsm.transitions(initial);
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].0, Action::receive("t", "ready", Sort::Unit));
        let choice = transitions[0].1;
        let choice_transitions = fsm.transitions(choice);
        assert_eq!(choice_transitions.len(), 2);
        // `value` loops back to the initial state.
        assert_eq!(choice_transitions[0].1, initial);
        assert!(fsm.is_terminal(choice_transitions[1].1));
    }

    #[test]
    fn kernel_fsm_matches_fig4a() {
        // Mk: s!ready -> s?value -> t?ready -> t!value -> back
        let t = local::parse("rec x . s!ready . s?value . t?ready . t!value . x").unwrap();
        let fsm = from_local(&"k".into(), &t).unwrap();
        assert_eq!(fsm.len(), 4);
        let mut state = fsm.initial();
        let expected = [
            Action::send("s", "ready", Sort::Unit),
            Action::receive("s", "value", Sort::Unit),
            Action::receive("t", "ready", Sort::Unit),
            Action::send("t", "value", Sort::Unit),
        ];
        for action in &expected {
            let transitions = fsm.transitions(state);
            assert_eq!(transitions.len(), 1);
            assert_eq!(&transitions[0].0, action);
            state = transitions[0].1;
        }
        assert_eq!(state, fsm.initial());
    }

    #[test]
    fn round_trip_local_fsm_local() {
        for text in [
            "end",
            "p!a.end",
            "rec x . t?ready . +{ t!value(i32).x, t!stop.end }",
            "rec x . s!ready . s?value . t?ready . t!value . x",
            "&{p?a.end, p?b.p!c.end}",
        ] {
            let t = local::parse(text).unwrap();
            let fsm = from_local(&"r".into(), &t).unwrap();
            let back = to_local(&fsm).unwrap();
            let fsm2 = from_local(&"r".into(), &back).unwrap();
            // FSMs are compared structurally; state numbering is canonical
            // because construction order is deterministic.
            assert_eq!(fsm.len(), fsm2.len(), "{text}");
        }
    }

    #[test]
    fn rejects_unguarded_recursion() {
        let t = local::parse("rec x . x").unwrap();
        assert!(matches!(
            from_local(&"r".into(), &t),
            Err(FsmError::UnguardedRecursion(_))
        ));
    }

    #[test]
    fn rejects_unbound_variable() {
        let t = LocalType::Var("x".into());
        assert!(matches!(
            from_local(&"r".into(), &t),
            Err(FsmError::UnboundVariable(_))
        ));
    }

    #[test]
    fn validate_rejects_mixed_state() {
        let mut builder = FsmBuilder::new("r");
        let s0 = builder.add_state();
        let s1 = builder.add_state();
        builder.add_transition(s0, Action::send("p", "a", Sort::Unit), s1);
        builder.add_transition(s0, Action::receive("p", "b", Sort::Unit), s1);
        let fsm = builder.build(s0).unwrap();
        assert!(matches!(
            fsm.validate_directed(),
            Err(FsmError::MixedState(_))
        ));
    }
}
