//! Projection of global types onto participants (`G ↾ r`).
//!
//! Implements the standard MPST projection with **full merging** of
//! external choices: when a participant is not involved in a choice, the
//! projections of all branches must merge — identical behaviour is always
//! mergeable, and external choices from the same peer merge by label union
//! (common labels must merge recursively). This is the projection νScr
//! performs for the paper's examples.

use std::fmt;

use crate::global::GlobalType;
use crate::local::{LocalBranch, LocalType};
use crate::name::Name;

/// Errors raised during projection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProjectionError {
    /// Branch projections for an uninvolved participant failed to merge.
    Unmergeable {
        /// The participant being projected.
        role: Name,
        /// Rendering of the first conflicting type.
        left: String,
        /// Rendering of the second conflicting type.
        right: String,
    },
    /// Common label with conflicting payload sorts during a merge.
    SortMismatch { role: Name, label: Name },
    /// The global type failed validation first.
    InvalidGlobal(crate::global::GlobalError),
}

impl fmt::Display for ProjectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectionError::Unmergeable { role, left, right } => write!(
                f,
                "projection onto {role} is undefined: cannot merge `{left}` with `{right}`"
            ),
            ProjectionError::SortMismatch { role, label } => {
                write!(f, "merge for {role} has sort mismatch on label {label}")
            }
            ProjectionError::InvalidGlobal(e) => write!(f, "invalid global type: {e}"),
        }
    }
}

impl std::error::Error for ProjectionError {}

/// Projects `global` onto participant `role`.
///
/// ```
/// use theory::{global::GlobalType, projection::project, Sort, LocalType};
///
/// // k → s : ready. s → k : value. end
/// let g = GlobalType::message(
///     "k", "s", "ready", Sort::Unit,
///     GlobalType::message("s", "k", "value", Sort::I32, GlobalType::End),
/// );
/// let k = project(&g, &"k".into()).unwrap();
/// assert_eq!(k.to_string(), "s!ready.s?value(i32).end");
/// ```
pub fn project(global: &GlobalType, role: &Name) -> Result<LocalType, ProjectionError> {
    global.validate().map_err(ProjectionError::InvalidGlobal)?;
    project_inner(global, role)
}

fn project_inner(global: &GlobalType, role: &Name) -> Result<LocalType, ProjectionError> {
    match global {
        GlobalType::End => Ok(LocalType::End),
        GlobalType::Var(var) => Ok(LocalType::Var(var.clone())),
        GlobalType::Rec { var, body } => {
            let projected = project_inner(body, role)?;
            // If the participant does not act in the loop body its
            // projection reduces to the bare variable (or end): drop the
            // binder to avoid unguarded recursion.
            match &projected {
                LocalType::Var(_) | LocalType::End => Ok(LocalType::End),
                _ if !projected.uses_var(var) => Ok(projected),
                _ => Ok(LocalType::Rec {
                    var: var.clone(),
                    body: Box::new(projected),
                }),
            }
        }
        GlobalType::Comm { from, to, branches } => {
            let projected: Result<Vec<LocalBranch>, _> = branches
                .iter()
                .map(|branch| {
                    Ok(LocalBranch {
                        label: branch.label.clone(),
                        sort: branch.sort.clone(),
                        continuation: project_inner(&branch.continuation, role)?,
                    })
                })
                .collect();
            let projected = projected?;
            if role == from {
                Ok(LocalType::Select {
                    peer: to.clone(),
                    branches: projected,
                })
            } else if role == to {
                Ok(LocalType::Branch {
                    peer: from.clone(),
                    branches: projected,
                })
            } else {
                let mut iter = projected.into_iter();
                let first = iter.next().expect("validated choices are non-empty");
                iter.try_fold(first.continuation, |acc, branch| {
                    merge(role, acc, branch.continuation)
                })
            }
        }
    }
}

/// Full merge of two projections of an uninvolved participant.
pub fn merge(role: &Name, left: LocalType, right: LocalType) -> Result<LocalType, ProjectionError> {
    if left == right {
        return Ok(left);
    }
    match (left, right) {
        (
            LocalType::Branch {
                peer: peer_left,
                branches: mut branches_left,
            },
            LocalType::Branch {
                peer: peer_right,
                branches: branches_right,
            },
        ) if peer_left == peer_right => {
            // Union of labels; common labels merge recursively.
            for branch_right in branches_right {
                match branches_left
                    .iter_mut()
                    .find(|b| b.label == branch_right.label)
                {
                    Some(branch_left) => {
                        if branch_left.sort != branch_right.sort {
                            return Err(ProjectionError::SortMismatch {
                                role: role.clone(),
                                label: branch_right.label,
                            });
                        }
                        let merged = merge(
                            role,
                            std::mem::replace(&mut branch_left.continuation, LocalType::End),
                            branch_right.continuation,
                        )?;
                        branch_left.continuation = merged;
                    }
                    None => branches_left.push(branch_right),
                }
            }
            Ok(LocalType::Branch {
                peer: peer_left,
                branches: branches_left,
            })
        }
        (
            LocalType::Rec {
                var: var_left,
                body: body_left,
            },
            LocalType::Rec {
                var: var_right,
                body: body_right,
            },
        ) if var_left == var_right => Ok(LocalType::Rec {
            var: var_left,
            body: Box::new(merge(role, *body_left, *body_right)?),
        }),
        (left, right) => Err(ProjectionError::Unmergeable {
            role: role.clone(),
            left: left.to_string(),
            right: right.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local;
    use crate::sort::Sort;

    /// The streaming protocol (paper §2, Fig 3).
    fn streaming() -> GlobalType {
        GlobalType::rec(
            "x",
            GlobalType::message(
                "t",
                "s",
                "ready",
                Sort::Unit,
                GlobalType::choice(
                    "s",
                    "t",
                    [
                        ("value".into(), Sort::Unit, GlobalType::Var("x".into())),
                        ("stop".into(), Sort::Unit, GlobalType::End),
                    ],
                ),
            ),
        )
    }

    /// The double buffering protocol (paper §2, Listing 1).
    fn double_buffering() -> GlobalType {
        GlobalType::rec(
            "x",
            GlobalType::message(
                "k",
                "s",
                "ready",
                Sort::Unit,
                GlobalType::message(
                    "s",
                    "k",
                    "value",
                    Sort::Unit,
                    GlobalType::message(
                        "t",
                        "k",
                        "ready",
                        Sort::Unit,
                        GlobalType::message(
                            "k",
                            "t",
                            "value",
                            Sort::Unit,
                            GlobalType::Var("x".into()),
                        ),
                    ),
                ),
            ),
        )
    }

    #[test]
    fn streaming_projections_match_fig3b() {
        let source = project(&streaming(), &"s".into()).unwrap();
        assert_eq!(
            source,
            local::parse("rec x . t?ready . +{ t!value.x, t!stop.end }").unwrap()
        );
        let sink = project(&streaming(), &"t".into()).unwrap();
        assert_eq!(
            sink,
            local::parse("rec x . s!ready . &{ s?value.x, s?stop.end }").unwrap()
        );
    }

    #[test]
    fn double_buffering_kernel_matches_fig4a() {
        let kernel = project(&double_buffering(), &"k".into()).unwrap();
        assert_eq!(
            kernel,
            local::parse("rec x . s!ready . s?value . t?ready . t!value . x").unwrap()
        );
    }

    #[test]
    fn double_buffering_source_and_sink_match_fig4() {
        let source = project(&double_buffering(), &"s".into()).unwrap();
        assert_eq!(
            source,
            local::parse("rec x . k?ready . k!value . x").unwrap()
        );
        let sink = project(&double_buffering(), &"t".into()).unwrap();
        assert_eq!(sink, local::parse("rec x . k!ready . k?value . x").unwrap());
    }

    #[test]
    fn uninvolved_role_projects_to_end() {
        let g = GlobalType::message("a", "b", "l", Sort::Unit, GlobalType::End);
        assert_eq!(project(&g, &"c".into()).unwrap(), LocalType::End);
    }

    #[test]
    fn merge_unions_external_choices() {
        // a → b : { l1. b → c : m1, l2. b → c : m2 }  projected on c
        let g = GlobalType::choice(
            "a",
            "b",
            [
                (
                    "l1".into(),
                    Sort::Unit,
                    GlobalType::message("b", "c", "m1", Sort::Unit, GlobalType::End),
                ),
                (
                    "l2".into(),
                    Sort::Unit,
                    GlobalType::message("b", "c", "m2", Sort::Unit, GlobalType::End),
                ),
            ],
        );
        let c = project(&g, &"c".into()).unwrap();
        assert_eq!(c, local::parse("&{ b?m1.end, b?m2.end }").unwrap());
    }

    #[test]
    fn unmergeable_projection_is_rejected() {
        // c must *send* different things depending on a choice it cannot
        // observe: projection is undefined.
        let g = GlobalType::choice(
            "a",
            "b",
            [
                (
                    "l1".into(),
                    Sort::Unit,
                    GlobalType::message("c", "b", "m1", Sort::Unit, GlobalType::End),
                ),
                (
                    "l2".into(),
                    Sort::Unit,
                    GlobalType::message("c", "b", "m2", Sort::Unit, GlobalType::End),
                ),
            ],
        );
        assert!(matches!(
            project(&g, &"c".into()),
            Err(ProjectionError::Unmergeable { .. })
        ));
    }

    #[test]
    fn merge_rejects_sort_conflict() {
        let g = GlobalType::choice(
            "a",
            "b",
            [
                (
                    "l1".into(),
                    Sort::Unit,
                    GlobalType::message("b", "c", "m", Sort::I32, GlobalType::End),
                ),
                (
                    "l2".into(),
                    Sort::Unit,
                    GlobalType::message("b", "c", "m", Sort::Str, GlobalType::End),
                ),
            ],
        );
        assert!(matches!(
            project(&g, &"c".into()),
            Err(ProjectionError::SortMismatch { .. })
        ));
    }
}
