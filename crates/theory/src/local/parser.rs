//! Textual parser for local session types.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! T      := "end" | "rec" IDENT "." T | action "." T
//!         | "+" "{" action "." T ("," action "." T)* "}"
//!         | "&" "{" action "." T ("," action "." T)* "}"
//!         | IDENT                                   (recursion variable)
//! action := IDENT ("!" | "?") IDENT ("(" IDENT? ")")?
//! ```

use std::fmt;
use std::str::FromStr;

use crate::local::{LocalBranch, LocalType};
use crate::name::Name;
use crate::sort::Sort;

/// Error produced when a local type fails to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input at which the error was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses the textual form of a local session type.
///
/// ```
/// use theory::local;
///
/// let t = local::parse("rec x . s!ready . s?value(i32) . x").unwrap();
/// assert_eq!(t.to_string(), "rec x.s!ready.s?value(i32).x");
/// ```
pub fn parse(input: &str) -> Result<LocalType, ParseError> {
    let mut parser = Parser {
        input: input.as_bytes(),
        position: 0,
    };
    let t = parser.parse_type()?;
    parser.skip_ws();
    if parser.position != parser.input.len() {
        return Err(parser.error("trailing input after type"));
    }
    Ok(t)
}

struct Parser<'a> {
    input: &'a [u8],
    position: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.position,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .input
            .get(self.position)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.position += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.position).copied()
    }

    fn eat(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.position += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.position;
        while self
            .input
            .get(self.position)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.position += 1;
        }
        if self.position == start {
            return Err(self.error("expected identifier"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.position])
            .expect("ascii idents are valid utf-8")
            .to_owned())
    }

    fn parse_type(&mut self) -> Result<LocalType, ParseError> {
        match self.peek() {
            Some(b'+') => {
                self.position += 1;
                self.parse_choice(b'!')
            }
            Some(b'&') => {
                self.position += 1;
                self.parse_choice(b'?')
            }
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' => {
                let word = self.ident()?;
                match word.as_str() {
                    "end" => Ok(LocalType::End),
                    "rec" => {
                        let var = self.ident()?;
                        self.eat(b'.')?;
                        let body = self.parse_type()?;
                        Ok(LocalType::rec(var, body))
                    }
                    _ => match self.peek() {
                        Some(op @ (b'!' | b'?')) => {
                            self.position += 1;
                            let (label, sort) = self.parse_label_sort()?;
                            self.eat(b'.')?;
                            let continuation = self.parse_type()?;
                            let branch = LocalBranch {
                                label,
                                sort,
                                continuation,
                            };
                            Ok(if op == b'!' {
                                LocalType::Select {
                                    peer: Name::from(word),
                                    branches: vec![branch],
                                }
                            } else {
                                LocalType::Branch {
                                    peer: Name::from(word),
                                    branches: vec![branch],
                                }
                            })
                        }
                        // A bare identifier is a recursion variable.
                        _ => Ok(LocalType::Var(Name::from(word))),
                    },
                }
            }
            _ => Err(self.error("expected a local type")),
        }
    }

    fn parse_label_sort(&mut self) -> Result<(Name, Sort), ParseError> {
        let label = Name::from(self.ident()?);
        let sort = if self.peek() == Some(b'(') {
            self.position += 1;
            let sort = if self.peek() == Some(b')') {
                Sort::Unit
            } else {
                Sort::from_str(&self.ident()?).expect("sort parsing is infallible")
            };
            self.eat(b')')?;
            sort
        } else {
            Sort::Unit
        };
        Ok((label, sort))
    }

    /// Parses `{ p OP l1.T1, p OP l2.T2, ... }` where `OP` fixed by caller.
    fn parse_choice(&mut self, op: u8) -> Result<LocalType, ParseError> {
        self.eat(b'{')?;
        let mut peer: Option<Name> = None;
        let mut branches = Vec::new();
        loop {
            let role = Name::from(self.ident()?);
            match &peer {
                None => peer = Some(role.clone()),
                Some(existing) if *existing == role => {}
                Some(existing) => {
                    return Err(self.error(format!(
                        "choice mixes peers {existing} and {role}; directed choice requires one"
                    )))
                }
            }
            self.eat(op)?;
            let (label, sort) = self.parse_label_sort()?;
            self.eat(b'.')?;
            let continuation = self.parse_type()?;
            branches.push(LocalBranch {
                label,
                sort,
                continuation,
            });
            match self.peek() {
                Some(b',') => {
                    self.position += 1;
                }
                Some(b'}') => {
                    self.position += 1;
                    break;
                }
                _ => return Err(self.error("expected `,` or `}` in choice")),
            }
        }
        let peer = peer.expect("at least one branch parsed");
        Ok(if op == b'!' {
            LocalType::Select { peer, branches }
        } else {
            LocalType::Branch { peer, branches }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_streaming_source() {
        let t = parse("rec x . t?ready . +{ t!value(i32).x, t!stop.end }").unwrap();
        assert_eq!(
            t,
            LocalType::rec(
                "x",
                LocalType::receive(
                    "t",
                    "ready",
                    Sort::Unit,
                    LocalType::select(
                        "t",
                        [
                            ("value".into(), Sort::I32, LocalType::Var("x".into())),
                            ("stop".into(), Sort::Unit, LocalType::End),
                        ],
                    ),
                ),
            )
        );
    }

    #[test]
    fn parses_double_buffering_kernel() {
        let t = parse("rec x . s!ready . s?value(i32) . t?ready . t!value(i32) . x").unwrap();
        assert_eq!(
            t.to_string(),
            "rec x.s!ready.s?value(i32).t?ready.t!value(i32).x"
        );
    }

    #[test]
    fn round_trips_display() {
        for text in [
            "end",
            "rec x.p!a.x",
            "&{p?a.end, p?b.rec y.p!c.y}",
            "+{p!a(i32).end, p!b.end}",
        ] {
            let parsed = parse(text).unwrap();
            assert_eq!(parse(&parsed.to_string()).unwrap(), parsed);
        }
    }

    #[test]
    fn rejects_mixed_peer_choice() {
        assert!(parse("+{p!a.end, q!b.end}").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("end end").is_err());
    }
}
