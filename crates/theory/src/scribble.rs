//! Parser for the Scribble subset used in the paper.
//!
//! Supported syntax (Listing 1, Fig 3a):
//!
//! ```text
//! global protocol Name(role a, role b, ...) {
//!     label(sort?) from a to b;
//!     rec loop { ...; continue loop; }
//!     choice at a { ... } or { ... } or { ... }
//! }
//! ```
//!
//! Each `choice` branch must start with a message from the deciding role,
//! and all branches must target the same receiver with distinct labels —
//! the directed-choice discipline of Definition 1.

use std::fmt;
use std::str::FromStr;

use crate::global::{GlobalBranch, GlobalType};
use crate::name::Name;
use crate::sort::Sort;

/// A parsed `global protocol` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Protocol {
    /// Protocol name.
    pub name: Name,
    /// Declared roles, in declaration order.
    pub roles: Vec<Name>,
    /// The protocol body as a global type.
    pub body: GlobalType,
}

/// Scribble parse error with line/column information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScribbleError {
    /// Description of the failure.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

impl fmt::Display for ScribbleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ScribbleError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Ident(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Semi,
    Comma,
}

#[derive(Clone, Debug)]
struct Spanned {
    token: Token,
    line: usize,
    column: usize,
}

fn lex(source: &str) -> Result<Vec<Spanned>, ScribbleError> {
    let mut tokens = Vec::new();
    let mut line = 1;
    let mut column = 1;
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        let (token_line, token_column) = (line, column);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                column = 1;
                continue;
            }
            c if c.is_whitespace() => {
                chars.next();
                column += 1;
                continue;
            }
            '/' => {
                // Line comment `// ...`.
                chars.next();
                column += 1;
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            column = 1;
                            break;
                        }
                    }
                    continue;
                }
                return Err(ScribbleError {
                    message: "unexpected `/`".into(),
                    line: token_line,
                    column: token_column,
                });
            }
            '(' | ')' | '{' | '}' | ';' | ',' => {
                chars.next();
                column += 1;
                let token = match c {
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    '{' => Token::LBrace,
                    '}' => Token::RBrace,
                    ';' => Token::Semi,
                    _ => Token::Comma,
                };
                tokens.push(Spanned {
                    token,
                    line: token_line,
                    column: token_column,
                });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Spanned {
                    token: Token::Ident(ident),
                    line: token_line,
                    column: token_column,
                });
            }
            other => {
                return Err(ScribbleError {
                    message: format!("unexpected character `{other}`"),
                    line,
                    column,
                })
            }
        }
    }
    Ok(tokens)
}

/// Parses a Scribble `global protocol` into a [`Protocol`].
pub fn parse(source: &str) -> Result<Protocol, ScribbleError> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        tokens: &tokens,
        position: 0,
    };
    let protocol = parser.parse_protocol()?;
    if parser.position != parser.tokens.len() {
        return Err(parser.error("trailing tokens after protocol"));
    }
    protocol.body.validate().map_err(|e| ScribbleError {
        message: e.to_string(),
        line: 0,
        column: 0,
    })?;
    Ok(protocol)
}

struct Parser<'a> {
    tokens: &'a [Spanned],
    position: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ScribbleError {
        let (line, column) = self
            .tokens
            .get(self.position.min(self.tokens.len().saturating_sub(1)))
            .map(|t| (t.line, t.column))
            .unwrap_or((0, 0));
        ScribbleError {
            message: message.into(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.position).map(|t| &t.token)
    }

    fn next(&mut self) -> Option<&Token> {
        let token = self.tokens.get(self.position).map(|t| &t.token);
        if token.is_some() {
            self.position += 1;
        }
        token
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), ScribbleError> {
        if self.peek() == Some(expected) {
            self.position += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn keyword(&mut self, word: &str) -> Result<(), ScribbleError> {
        match self.next() {
            Some(Token::Ident(ident)) if ident == word => Ok(()),
            _ => {
                self.position = self.position.saturating_sub(1);
                Err(self.error(format!("expected keyword `{word}`")))
            }
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ScribbleError> {
        match self.next() {
            Some(Token::Ident(ident)) => Ok(ident.clone()),
            _ => {
                self.position = self.position.saturating_sub(1);
                Err(self.error(format!("expected {what}")))
            }
        }
    }

    fn parse_protocol(&mut self) -> Result<Protocol, ScribbleError> {
        self.keyword("global")?;
        self.keyword("protocol")?;
        let name = Name::from(self.ident("protocol name")?);
        self.expect(&Token::LParen, "`(`")?;
        let mut roles = Vec::new();
        loop {
            self.keyword("role")?;
            roles.push(Name::from(self.ident("role name")?));
            match self.next() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                _ => return Err(self.error("expected `,` or `)` in role list")),
            }
        }
        self.expect(&Token::LBrace, "`{`")?;
        let body = self.parse_block(&roles)?;
        self.expect(&Token::RBrace, "`}`")?;
        Ok(Protocol { name, roles, body })
    }

    /// Parses a `;`-sequenced block into a right-nested global type.
    fn parse_block(&mut self, roles: &[Name]) -> Result<GlobalType, ScribbleError> {
        match self.peek() {
            None | Some(Token::RBrace) => Ok(GlobalType::End),
            Some(Token::Ident(word)) => match word.as_str() {
                "rec" => {
                    self.position += 1;
                    let var = Name::from(self.ident("recursion label")?);
                    self.expect(&Token::LBrace, "`{`")?;
                    let body = self.parse_block(roles)?;
                    self.expect(&Token::RBrace, "`}`")?;
                    self.ensure_block_end("rec")?;
                    Ok(GlobalType::Rec {
                        var,
                        body: Box::new(body),
                    })
                }
                "continue" => {
                    self.position += 1;
                    let var = Name::from(self.ident("recursion label")?);
                    self.expect(&Token::Semi, "`;`")?;
                    self.ensure_block_end("continue")?;
                    Ok(GlobalType::Var(var))
                }
                "choice" => {
                    self.position += 1;
                    self.keyword("at")?;
                    let chooser = Name::from(self.ident("role name")?);
                    let mut branches = Vec::new();
                    let mut receiver: Option<Name> = None;
                    loop {
                        self.expect(&Token::LBrace, "`{`")?;
                        let branch = self.parse_block(roles)?;
                        self.expect(&Token::RBrace, "`}`")?;
                        let (label, sort, to, continuation) =
                            self.split_choice_branch(&chooser, branch)?;
                        match &receiver {
                            None => receiver = Some(to.clone()),
                            Some(existing) if *existing == to => {}
                            Some(existing) => {
                                return Err(self.error(format!(
                                    "choice branches target different receivers {existing} and {to}"
                                )))
                            }
                        }
                        branches.push(GlobalBranch {
                            label,
                            sort,
                            continuation,
                        });
                        if let Some(Token::Ident(word)) = self.peek() {
                            if word == "or" {
                                self.position += 1;
                                continue;
                            }
                        }
                        break;
                    }
                    if branches.len() < 2 {
                        return Err(self.error("choice requires at least two branches"));
                    }
                    self.ensure_block_end("choice")?;
                    Ok(GlobalType::Comm {
                        from: chooser,
                        to: receiver.expect("at least one branch"),
                        branches,
                    })
                }
                _ => {
                    // Message statement: label(sort?) from a to b;
                    let label = Name::from(self.ident("message label")?);
                    self.expect(&Token::LParen, "`(`")?;
                    let sort = match self.peek() {
                        Some(Token::RParen) => Sort::Unit,
                        Some(Token::Ident(_)) => {
                            let sort = self.ident("sort")?;
                            Sort::from_str(&sort).expect("sort parsing is infallible")
                        }
                        _ => return Err(self.error("expected sort or `)`")),
                    };
                    self.expect(&Token::RParen, "`)`")?;
                    self.keyword("from")?;
                    let from = Name::from(self.ident("role name")?);
                    self.keyword("to")?;
                    let to = Name::from(self.ident("role name")?);
                    self.expect(&Token::Semi, "`;`")?;
                    for role in [&from, &to] {
                        if !roles.contains(role) {
                            return Err(self.error(format!("undeclared role {role}")));
                        }
                    }
                    let continuation = self.parse_block(roles)?;
                    Ok(GlobalType::Comm {
                        from,
                        to,
                        branches: vec![GlobalBranch {
                            label,
                            sort,
                            continuation,
                        }],
                    })
                }
            },
            Some(_) => Err(self.error("expected a statement")),
        }
    }

    /// `rec`/`continue`/`choice` must end their enclosing block: anything
    /// sequenced after them has no defined meaning in the global type.
    fn ensure_block_end(&self, construct: &str) -> Result<(), ScribbleError> {
        match self.peek() {
            None | Some(Token::RBrace) => Ok(()),
            _ => Err(self.error(format!(
                "`{construct}` must be the final statement of its block"
            ))),
        }
    }

    /// A choice branch must start `chooser → to : label`; returns the parts.
    fn split_choice_branch(
        &self,
        chooser: &Name,
        branch: GlobalType,
    ) -> Result<(Name, Sort, Name, GlobalType), ScribbleError> {
        match branch {
            GlobalType::Comm { from, to, branches } if &from == chooser && branches.len() == 1 => {
                let branch = branches.into_iter().next().expect("len checked");
                Ok((branch.label, branch.sort, to, branch.continuation))
            }
            other => Err(self.error(format!(
                "each choice branch must start with a message from {chooser}; found `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::project;

    const STREAMING: &str = r#"
        global protocol Streaming(role s, role t) {
            rec loop {
                ready() from t to s;
                choice at s {
                    value() from s to t;
                    continue loop;
                } or {
                    stop() from s to t;
                }
            }
        }
    "#;

    const DOUBLE_BUFFERING: &str = r#"
        global protocol DoubleBuffering(role s, role k, role t) {
            rec loop {
                ready() from k to s;
                value() from s to k;
                ready() from t to k;
                value() from k to t;
                continue loop;
            }
        }
    "#;

    #[test]
    fn parses_streaming() {
        let protocol = parse(STREAMING).unwrap();
        assert_eq!(protocol.name, Name::from("Streaming"));
        assert_eq!(protocol.roles, vec![Name::from("s"), Name::from("t")]);
        assert_eq!(
            protocol.body,
            GlobalType::rec(
                "loop",
                GlobalType::message(
                    "t",
                    "s",
                    "ready",
                    Sort::Unit,
                    GlobalType::choice(
                        "s",
                        "t",
                        [
                            ("value".into(), Sort::Unit, GlobalType::Var("loop".into())),
                            ("stop".into(), Sort::Unit, GlobalType::End),
                        ],
                    ),
                ),
            )
        );
    }

    #[test]
    fn parses_double_buffering_listing1() {
        let protocol = parse(DOUBLE_BUFFERING).unwrap();
        let kernel = project(&protocol.body, &"k".into()).unwrap();
        // Recursion variable names differ ("loop" vs "x"); compare up to
        // alpha-equivalence by comparing the generated FSMs.
        let expected =
            crate::local::parse("rec x . s!ready . s?value . t?ready . t!value . x").unwrap();
        let fsm_actual = crate::fsm::from_local(&"k".into(), &kernel).unwrap();
        let fsm_expected = crate::fsm::from_local(&"k".into(), &expected).unwrap();
        assert_eq!(fsm_actual, fsm_expected);
    }

    #[test]
    fn comments_are_skipped() {
        let source = r#"
            // the two-party streaming protocol
            global protocol P(role a, role b) {
                hello() from a to b; // greeting
            }
        "#;
        let protocol = parse(source).unwrap();
        assert_eq!(
            protocol.body,
            GlobalType::message("a", "b", "hello", Sort::Unit, GlobalType::End)
        );
    }

    #[test]
    fn rejects_undeclared_role() {
        let source = "global protocol P(role a, role b) { hi() from a to c; }";
        assert!(parse(source).is_err());
    }

    #[test]
    fn rejects_statement_after_continue() {
        let source = r#"
            global protocol P(role a, role b) {
                rec l { continue l; hi() from a to b; }
            }
        "#;
        assert!(parse(source).is_err());
    }

    #[test]
    fn rejects_single_branch_choice() {
        let source = r#"
            global protocol P(role a, role b) {
                choice at a { hi() from a to b; }
            }
        "#;
        assert!(parse(source).is_err());
    }

    #[test]
    fn payload_sorts_are_parsed() {
        let source = "global protocol P(role a, role b) { v(i32) from a to b; }";
        let protocol = parse(source).unwrap();
        assert_eq!(
            protocol.body,
            GlobalType::message("a", "b", "v", Sort::I32, GlobalType::End)
        );
    }
}
