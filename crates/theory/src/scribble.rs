//! Parser for the Scribble subset used in the paper, extended with
//! **parameterised role families**.
//!
//! Supported syntax (Listing 1, Fig 3a, plus the `w[1..n]` extension):
//!
//! ```text
//! global protocol Name(role a, role w[1..n]) {
//!     label(sort?) from a to w[1];
//!     foreach i in 1..n-1 { hop() from w[i] to w[i+1]; }
//!     rec loop { ...; continue loop; }
//!     choice at a { ... } or { ... } or { ... }
//! }
//! ```
//!
//! Each `choice` branch must start with a message from the deciding role,
//! and all branches must target the same receiver with distinct labels —
//! the directed-choice discipline of Definition 1.
//!
//! A protocol whose header declares a role family (`role w[1..n]`) is a
//! *template*: parsing yields a [`Template`], and [`Template::instantiate`]
//! turns it into a concrete [`Protocol`] once every parameter (`n` above)
//! is bound to an integer. Index expressions over parameters and `foreach`
//! variables support literals, variables, `+`, `-` and `*` (so non-linear
//! strides like `w[2*i]`/`w[2*i-1]` work). `foreach` expands
//! its body once per index value (inclusive bounds, empty when `lo > hi`)
//! and may contain only message statements and nested `foreach`s, so the
//! expansion is a straight-line splice.
//!
//! [`parse`] remains the one-call entry point for non-parameterised
//! sources: it instantiates with no bindings, which succeeds whenever the
//! protocol has no unbound parameters (literal-bound families like
//! `role w[1..3]` are fine).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::str::FromStr;

use crate::global::{GlobalBranch, GlobalType};
use crate::name::Name;
use crate::sort::Sort;

/// A parsed `global protocol` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Protocol {
    /// Protocol name.
    pub name: Name,
    /// Declared roles, in declaration order (families expanded in place).
    pub roles: Vec<Name>,
    /// The protocol body as a global type.
    pub body: GlobalType,
}

/// Scribble parse error with line/column information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScribbleError {
    /// Description of the failure.
    pub message: String,
    /// 1-based line (0 when the error has no source position, e.g. it
    /// arose while instantiating a template).
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

impl ScribbleError {
    fn unpositioned(message: impl Into<String>) -> Self {
        ScribbleError {
            message: message.into(),
            line: 0,
            column: 0,
        }
    }
}

impl fmt::Display for ScribbleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ScribbleError {}

/// Integer bindings for template parameters, by parameter name.
pub type Bindings = BTreeMap<Name, i64>;

/// An integer expression over template parameters and `foreach` variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndexExpr {
    /// A literal integer.
    Lit(i64),
    /// A parameter or `foreach` variable.
    Var(Name),
    /// Sum of two expressions.
    Add(Box<IndexExpr>, Box<IndexExpr>),
    /// Difference of two expressions.
    Sub(Box<IndexExpr>, Box<IndexExpr>),
    /// Product of two expressions (`2*i` role strides).
    Mul(Box<IndexExpr>, Box<IndexExpr>),
}

impl IndexExpr {
    fn eval(&self, env: &Bindings) -> Result<i64, ScribbleError> {
        match self {
            IndexExpr::Lit(value) => Ok(*value),
            IndexExpr::Var(var) => env
                .get(var)
                .copied()
                .ok_or_else(|| ScribbleError::unpositioned(format!("unbound parameter `{var}`"))),
            IndexExpr::Add(left, right) => Ok(left.eval(env)? + right.eval(env)?),
            IndexExpr::Sub(left, right) => Ok(left.eval(env)? - right.eval(env)?),
            IndexExpr::Mul(left, right) => Ok(left.eval(env)? * right.eval(env)?),
        }
    }

    fn free_vars(&self, out: &mut BTreeSet<Name>) {
        match self {
            IndexExpr::Lit(_) => {}
            IndexExpr::Var(var) => {
                out.insert(var.clone());
            }
            IndexExpr::Add(left, right)
            | IndexExpr::Sub(left, right)
            | IndexExpr::Mul(left, right) => {
                left.free_vars(out);
                right.free_vars(out);
            }
        }
    }
}

impl fmt::Display for IndexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexExpr::Lit(value) => write!(f, "{value}"),
            IndexExpr::Var(var) => write!(f, "{var}"),
            IndexExpr::Add(left, right) => write!(f, "{left}+{right}"),
            IndexExpr::Sub(left, right) => write!(f, "{left}-{right}"),
            IndexExpr::Mul(left, right) => {
                fn factor(expr: &IndexExpr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    match expr {
                        IndexExpr::Add(..) | IndexExpr::Sub(..) => write!(f, "({expr})"),
                        other => write!(f, "{other}"),
                    }
                }
                factor(left, f)?;
                f.write_str("*")?;
                factor(right, f)
            }
        }
    }
}

/// One entry of a protocol's role list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoleDecl {
    /// A plain role: `role a`.
    Single(Name),
    /// An indexed family: `role w[lo..hi]` (inclusive bounds).
    Family {
        /// Family name; instance `i` becomes the role `{name}{i}`.
        name: Name,
        /// Lower bound.
        lo: IndexExpr,
        /// Upper bound (inclusive).
        hi: IndexExpr,
    },
}

/// A reference to a role inside the protocol body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoleRef {
    /// A plain role name.
    Plain(Name),
    /// A family member: `w[i+1]`.
    Indexed {
        /// The family being indexed.
        family: Name,
        /// The member index.
        index: IndexExpr,
    },
}

impl fmt::Display for RoleRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoleRef::Plain(name) => write!(f, "{name}"),
            RoleRef::Indexed { family, index } => write!(f, "{family}[{index}]"),
        }
    }
}

/// Protocol body before instantiation: global-type syntax over role
/// references, plus `foreach` splices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TemplateType {
    /// `end`.
    End,
    /// A single message `label(sort) from a to b; continuation`.
    Comm {
        /// Sender reference.
        from: RoleRef,
        /// Receiver reference.
        to: RoleRef,
        /// Message label.
        label: Name,
        /// Payload sort.
        sort: Sort,
        /// Rest of the block.
        continuation: Box<TemplateType>,
    },
    /// `choice at r { ... } or { ... }`; each branch is a whole block that
    /// must expand to a message from `at` once instantiated.
    Choice {
        /// The deciding role.
        at: RoleRef,
        /// Branch blocks, in source order.
        branches: Vec<TemplateType>,
    },
    /// `rec var { body }`.
    Rec {
        /// Recursion variable.
        var: Name,
        /// Loop body.
        body: Box<TemplateType>,
    },
    /// `continue var;`.
    Var(Name),
    /// `foreach var in lo..hi { body } continuation` — expands to
    /// `body[var:=lo] ... body[var:=hi] continuation`.
    Foreach {
        /// The splice variable.
        var: Name,
        /// Lower bound.
        lo: IndexExpr,
        /// Upper bound (inclusive).
        hi: IndexExpr,
        /// The spliced block (messages and nested `foreach`s only).
        body: Box<TemplateType>,
        /// Rest of the enclosing block.
        continuation: Box<TemplateType>,
    },
}

/// A parsed, possibly parameterised `global protocol`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Template {
    /// Protocol name.
    pub name: Name,
    /// Role declarations, in source order.
    pub roles: Vec<RoleDecl>,
    /// The protocol body.
    pub body: TemplateType,
}

impl Template {
    /// The template's parameters: every variable occurring free in a role
    /// family bound. All of them must be bound for instantiation.
    pub fn params(&self) -> BTreeSet<Name> {
        let mut params = BTreeSet::new();
        for decl in &self.roles {
            if let RoleDecl::Family { lo, hi, .. } = decl {
                lo.free_vars(&mut params);
                hi.free_vars(&mut params);
            }
        }
        params
    }

    /// True when the header declares at least one role family.
    pub fn is_parameterised(&self) -> bool {
        self.roles
            .iter()
            .any(|decl| matches!(decl, RoleDecl::Family { .. }))
    }

    /// Expands the template into a concrete [`Protocol`] under `bindings`.
    ///
    /// Every parameter must be bound and every binding must name a
    /// parameter; each family must instantiate to at least one role; the
    /// expanded body must satisfy the same well-formedness rules `parse`
    /// enforces for plain protocols (directed choices, validation).
    pub fn instantiate(&self, bindings: &Bindings) -> Result<Protocol, ScribbleError> {
        let params = self.params();
        for name in bindings.keys() {
            if !params.contains(name) {
                return Err(ScribbleError::unpositioned(format!(
                    "unknown parameter `{name}` (protocol `{}` has {})",
                    self.name,
                    if params.is_empty() {
                        "no parameters".to_owned()
                    } else {
                        format!(
                            "parameters {}",
                            params
                                .iter()
                                .map(Name::to_string)
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    }
                )));
            }
        }

        // Expand the role list, recording each family's bounds.
        let mut roles = Vec::new();
        let mut families: BTreeMap<Name, (i64, i64)> = BTreeMap::new();
        for decl in &self.roles {
            match decl {
                RoleDecl::Single(name) => roles.push(name.clone()),
                RoleDecl::Family { name, lo, hi } => {
                    let lo = lo.eval(bindings)?;
                    let hi = hi.eval(bindings)?;
                    if lo > hi {
                        return Err(ScribbleError::unpositioned(format!(
                            "role family {name}[{lo}..{hi}] is empty"
                        )));
                    }
                    for i in lo..=hi {
                        roles.push(Name::from(format!("{name}{i}")));
                    }
                    families.insert(name.clone(), (lo, hi));
                }
            }
        }
        let mut seen = BTreeSet::new();
        for role in &roles {
            if !seen.insert(role.clone()) {
                return Err(ScribbleError::unpositioned(format!(
                    "role {role} declared twice after family expansion"
                )));
            }
        }

        let mut env = bindings.clone();
        let body = expand(&self.body, &families, &mut env)?;
        body.validate()
            .map_err(|e| ScribbleError::unpositioned(e.to_string()))?;
        Ok(Protocol {
            name: self.name.clone(),
            roles,
            body,
        })
    }
}

/// Resolves a role reference to a concrete role name under `env`.
fn resolve_ref(
    role: &RoleRef,
    families: &BTreeMap<Name, (i64, i64)>,
    env: &Bindings,
) -> Result<Name, ScribbleError> {
    match role {
        RoleRef::Plain(name) => Ok(name.clone()),
        RoleRef::Indexed { family, index } => {
            let (lo, hi) = families.get(family).ok_or_else(|| {
                ScribbleError::unpositioned(format!("`{family}` is not a role family"))
            })?;
            let i = index.eval(env)?;
            if i < *lo || i > *hi {
                return Err(ScribbleError::unpositioned(format!(
                    "index {family}[{index}] = {family}[{i}] is outside the \
                     declared range [{lo}..{hi}]"
                )));
            }
            Ok(Name::from(format!("{family}{i}")))
        }
    }
}

/// Expands a template body to a concrete global type under `env`.
fn expand(
    template: &TemplateType,
    families: &BTreeMap<Name, (i64, i64)>,
    env: &mut Bindings,
) -> Result<GlobalType, ScribbleError> {
    match template {
        TemplateType::End => Ok(GlobalType::End),
        TemplateType::Var(var) => Ok(GlobalType::Var(var.clone())),
        TemplateType::Rec { var, body } => Ok(GlobalType::Rec {
            var: var.clone(),
            body: Box::new(expand(body, families, env)?),
        }),
        TemplateType::Comm {
            from,
            to,
            label,
            sort,
            continuation,
        } => {
            let from = resolve_ref(from, families, env)?;
            let to = resolve_ref(to, families, env)?;
            let continuation = expand(continuation, families, env)?;
            Ok(GlobalType::message(
                from,
                to,
                label.clone(),
                sort.clone(),
                continuation,
            ))
        }
        TemplateType::Choice { at, branches } => {
            let chooser = resolve_ref(at, families, env)?;
            let mut receiver: Option<Name> = None;
            let mut global_branches = Vec::new();
            for branch in branches {
                let expanded = expand(branch, families, env)?;
                let (label, sort, to, continuation) = split_choice_branch(&chooser, expanded)?;
                match &receiver {
                    None => receiver = Some(to.clone()),
                    Some(existing) if *existing == to => {}
                    Some(existing) => {
                        return Err(ScribbleError::unpositioned(format!(
                            "choice branches target different receivers {existing} and {to}"
                        )))
                    }
                }
                global_branches.push(GlobalBranch {
                    label,
                    sort,
                    continuation,
                });
            }
            Ok(GlobalType::Comm {
                from: chooser,
                to: receiver.expect("parser guarantees at least two branches"),
                branches: global_branches,
            })
        }
        TemplateType::Foreach {
            var,
            lo,
            hi,
            body,
            continuation,
        } => {
            let lo = lo.eval(env)?;
            let hi = hi.eval(env)?;
            let mut acc = expand(continuation, families, env)?;
            // Build back-to-front so each iteration's body is spliced in
            // front of everything after it.
            for i in (lo..=hi).rev() {
                let shadowed = env.insert(var.clone(), i);
                let iteration = expand(body, families, env);
                match shadowed {
                    Some(previous) => {
                        env.insert(var.clone(), previous);
                    }
                    None => {
                        env.remove(var);
                    }
                }
                acc = splice(iteration?, acc);
            }
            Ok(acc)
        }
    }
}

/// Grafts `rest` onto every `end` leaf of `body` (the sequencing of a
/// `foreach` iteration with what follows it). The parser restricts
/// `foreach` bodies to messages and nested `foreach`s, so every leaf is an
/// `end` and the splice is a straight-line concatenation.
fn splice(body: GlobalType, rest: GlobalType) -> GlobalType {
    match body {
        GlobalType::End => rest,
        GlobalType::Comm { from, to, branches } => {
            let mut branches = branches;
            // Foreach bodies contain only message statements, each with
            // exactly one branch; splice into its continuation.
            for branch in branches.iter_mut() {
                let continuation = std::mem::replace(&mut branch.continuation, GlobalType::End);
                branch.continuation = splice(continuation, rest.clone());
            }
            GlobalType::Comm { from, to, branches }
        }
        other => other,
    }
}

/// A choice branch must start `chooser → to : label`; returns the parts.
fn split_choice_branch(
    chooser: &Name,
    branch: GlobalType,
) -> Result<(Name, Sort, Name, GlobalType), ScribbleError> {
    match branch {
        GlobalType::Comm { from, to, branches } if &from == chooser && branches.len() == 1 => {
            let branch = branches.into_iter().next().expect("len checked");
            Ok((branch.label, branch.sort, to, branch.continuation))
        }
        other => Err(ScribbleError::unpositioned(format!(
            "each choice branch must start with a message from {chooser}; found `{other}`"
        ))),
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Ident(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    DotDot,
    Plus,
    Minus,
    Star,
}

#[derive(Clone, Debug)]
struct Spanned {
    token: Token,
    line: usize,
    column: usize,
}

fn lex(source: &str) -> Result<Vec<Spanned>, ScribbleError> {
    let mut tokens = Vec::new();
    let mut line = 1;
    let mut column = 1;
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        let (token_line, token_column) = (line, column);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                column = 1;
                continue;
            }
            c if c.is_whitespace() => {
                chars.next();
                column += 1;
                continue;
            }
            '/' => {
                // Line comment `// ...`.
                chars.next();
                column += 1;
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            column = 1;
                            break;
                        }
                    }
                    continue;
                }
                return Err(ScribbleError {
                    message: "unexpected `/`".into(),
                    line: token_line,
                    column: token_column,
                });
            }
            '.' => {
                chars.next();
                column += 1;
                if chars.peek() == Some(&'.') {
                    chars.next();
                    column += 1;
                    tokens.push(Spanned {
                        token: Token::DotDot,
                        line: token_line,
                        column: token_column,
                    });
                    continue;
                }
                return Err(ScribbleError {
                    message: "unexpected `.` (ranges are written `lo..hi`)".into(),
                    line: token_line,
                    column: token_column,
                });
            }
            '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '+' | '-' | '*' => {
                chars.next();
                column += 1;
                let token = match c {
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    '{' => Token::LBrace,
                    '}' => Token::RBrace,
                    '[' => Token::LBracket,
                    ']' => Token::RBracket,
                    ';' => Token::Semi,
                    '+' => Token::Plus,
                    '-' => Token::Minus,
                    '*' => Token::Star,
                    _ => Token::Comma,
                };
                tokens.push(Spanned {
                    token,
                    line: token_line,
                    column: token_column,
                });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Spanned {
                    token: Token::Ident(ident),
                    line: token_line,
                    column: token_column,
                });
            }
            other => {
                return Err(ScribbleError {
                    message: format!("unexpected character `{other}`"),
                    line,
                    column,
                })
            }
        }
    }
    Ok(tokens)
}

/// Parses a Scribble `global protocol` into a concrete [`Protocol`].
///
/// Equivalent to [`parse_template`] followed by an instantiation with no
/// bindings; fails if the protocol has unbound parameters.
pub fn parse(source: &str) -> Result<Protocol, ScribbleError> {
    let template = parse_template(source)?;
    template.instantiate(&Bindings::new())
}

/// Parses a Scribble `global protocol` into a (possibly parameterised)
/// [`Template`] without instantiating it.
pub fn parse_template(source: &str) -> Result<Template, ScribbleError> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        tokens: &tokens,
        position: 0,
        singles: BTreeSet::new(),
        families: BTreeSet::new(),
        index_vars: Vec::new(),
    };
    let template = parser.parse_protocol()?;
    if parser.position != parser.tokens.len() {
        return Err(parser.error("trailing tokens after protocol"));
    }
    Ok(template)
}

struct Parser<'a> {
    tokens: &'a [Spanned],
    position: usize,
    /// Declared plain roles.
    singles: BTreeSet<Name>,
    /// Declared role families.
    families: BTreeSet<Name>,
    /// In-scope index variables: template parameters, then any enclosing
    /// `foreach` variables.
    index_vars: Vec<Name>,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ScribbleError {
        let (line, column) = self
            .tokens
            .get(self.position.min(self.tokens.len().saturating_sub(1)))
            .map(|t| (t.line, t.column))
            .unwrap_or((0, 0));
        ScribbleError {
            message: message.into(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.position).map(|t| &t.token)
    }

    fn next(&mut self) -> Option<&Token> {
        let token = self.tokens.get(self.position).map(|t| &t.token);
        if token.is_some() {
            self.position += 1;
        }
        token
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), ScribbleError> {
        if self.peek() == Some(expected) {
            self.position += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn keyword(&mut self, word: &str) -> Result<(), ScribbleError> {
        match self.next() {
            Some(Token::Ident(ident)) if ident == word => Ok(()),
            _ => {
                self.position = self.position.saturating_sub(1);
                Err(self.error(format!("expected keyword `{word}`")))
            }
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ScribbleError> {
        match self.next() {
            Some(Token::Ident(ident)) => Ok(ident.clone()),
            _ => {
                self.position = self.position.saturating_sub(1);
                Err(self.error(format!("expected {what}")))
            }
        }
    }

    fn parse_protocol(&mut self) -> Result<Template, ScribbleError> {
        self.keyword("global")?;
        self.keyword("protocol")?;
        let name = Name::from(self.ident("protocol name")?);
        self.expect(&Token::LParen, "`(`")?;
        let mut roles = Vec::new();
        loop {
            self.keyword("role")?;
            let role = Name::from(self.ident("role name")?);
            let decl = if self.peek() == Some(&Token::LBracket) {
                self.position += 1;
                let lo = self.parse_index_expr()?;
                self.expect(&Token::DotDot, "`..` in role family range")?;
                let hi = self.parse_index_expr()?;
                self.expect(&Token::RBracket, "`]`")?;
                self.families.insert(role.clone());
                RoleDecl::Family { name: role, lo, hi }
            } else {
                self.singles.insert(role.clone());
                RoleDecl::Single(role)
            };
            roles.push(decl);
            match self.next() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                _ => return Err(self.error("expected `,` or `)` in role list")),
            }
        }
        // Family-bound variables are the template's parameters; they are
        // in scope throughout the body.
        let mut params = BTreeSet::new();
        for decl in &roles {
            if let RoleDecl::Family { lo, hi, .. } = decl {
                lo.free_vars(&mut params);
                hi.free_vars(&mut params);
            }
        }
        for param in &params {
            if self.singles.contains(param) || self.families.contains(param) {
                return Err(self.error(format!(
                    "parameter `{param}` collides with a role of the same name"
                )));
            }
        }
        self.index_vars.extend(params);
        self.expect(&Token::LBrace, "`{`")?;
        let body = self.parse_block(false)?;
        self.expect(&Token::RBrace, "`}`")?;
        Ok(Template { name, roles, body })
    }

    /// Parses `product (+|-) product ...`, left-associative; `*` binds
    /// tighter than `+`/`-`, so `2*i-1` strides over odd indices.
    fn parse_index_expr(&mut self) -> Result<IndexExpr, ScribbleError> {
        let mut expr = self.parse_index_product()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.position += 1;
                    let right = self.parse_index_product()?;
                    expr = IndexExpr::Add(Box::new(expr), Box::new(right));
                }
                Some(Token::Minus) => {
                    self.position += 1;
                    let right = self.parse_index_product()?;
                    expr = IndexExpr::Sub(Box::new(expr), Box::new(right));
                }
                _ => return Ok(expr),
            }
        }
    }

    /// Parses `term (* term) ...`, left-associative.
    fn parse_index_product(&mut self) -> Result<IndexExpr, ScribbleError> {
        let mut expr = self.parse_index_term()?;
        while self.peek() == Some(&Token::Star) {
            self.position += 1;
            let right = self.parse_index_term()?;
            expr = IndexExpr::Mul(Box::new(expr), Box::new(right));
        }
        Ok(expr)
    }

    /// Every variable of `expr` must be a template parameter or an
    /// enclosing `foreach` variable — otherwise the expression could
    /// never be evaluated by any instantiation.
    fn check_index_scope(&self, expr: &IndexExpr) -> Result<(), ScribbleError> {
        let mut vars = BTreeSet::new();
        expr.free_vars(&mut vars);
        for var in vars {
            if !self.index_vars.contains(&var) {
                return Err(self.error(format!(
                    "unknown index variable `{var}` (not a parameter or \
                     enclosing `foreach` variable)"
                )));
            }
        }
        Ok(())
    }

    fn parse_index_term(&mut self) -> Result<IndexExpr, ScribbleError> {
        let ident = self.ident("index expression")?;
        if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return match ident.parse::<i64>() {
                Ok(value) => Ok(IndexExpr::Lit(value)),
                Err(_) => {
                    self.position = self.position.saturating_sub(1);
                    Err(self.error(format!("malformed integer literal `{ident}`")))
                }
            };
        }
        Ok(IndexExpr::Var(Name::from(ident)))
    }

    /// Parses a role reference: `a` or `w[expr]`, checking declarations
    /// and index-variable scope.
    fn parse_role_ref(&mut self) -> Result<RoleRef, ScribbleError> {
        let name = Name::from(self.ident("role name")?);
        if self.peek() == Some(&Token::LBracket) {
            if !self.families.contains(&name) {
                return Err(self.error(format!("`{name}` is not a role family")));
            }
            self.position += 1;
            let index = self.parse_index_expr()?;
            self.expect(&Token::RBracket, "`]`")?;
            self.check_index_scope(&index)?;
            return Ok(RoleRef::Indexed {
                family: name,
                index,
            });
        }
        if self.families.contains(&name) {
            return Err(self.error(format!("role family `{name}` must be indexed: `{name}[i]`")));
        }
        if !self.singles.contains(&name) {
            return Err(self.error(format!("undeclared role {name}")));
        }
        Ok(RoleRef::Plain(name))
    }

    /// Parses a `;`-sequenced block into a right-nested template type.
    /// Inside a `foreach` body (`in_foreach`), only message statements and
    /// nested `foreach`s are allowed, so expansion stays a straight-line
    /// splice.
    fn parse_block(&mut self, in_foreach: bool) -> Result<TemplateType, ScribbleError> {
        match self.peek() {
            None | Some(Token::RBrace) => Ok(TemplateType::End),
            Some(Token::Ident(word)) => match word.as_str() {
                "rec" | "continue" | "choice" if in_foreach => Err(self.error(format!(
                    "`{word}` is not allowed inside a `foreach` body \
                     (only messages and nested `foreach`s are)"
                ))),
                "rec" => {
                    self.position += 1;
                    let var = Name::from(self.ident("recursion label")?);
                    self.expect(&Token::LBrace, "`{`")?;
                    let body = self.parse_block(false)?;
                    self.expect(&Token::RBrace, "`}`")?;
                    self.ensure_block_end("rec")?;
                    Ok(TemplateType::Rec {
                        var,
                        body: Box::new(body),
                    })
                }
                "continue" => {
                    self.position += 1;
                    let var = Name::from(self.ident("recursion label")?);
                    self.expect(&Token::Semi, "`;`")?;
                    self.ensure_block_end("continue")?;
                    Ok(TemplateType::Var(var))
                }
                "choice" => {
                    self.position += 1;
                    self.keyword("at")?;
                    let at = self.parse_role_ref()?;
                    let mut branches = Vec::new();
                    loop {
                        self.expect(&Token::LBrace, "`{`")?;
                        branches.push(self.parse_block(false)?);
                        self.expect(&Token::RBrace, "`}`")?;
                        if let Some(Token::Ident(word)) = self.peek() {
                            if word == "or" {
                                self.position += 1;
                                continue;
                            }
                        }
                        break;
                    }
                    if branches.len() < 2 {
                        return Err(self.error("choice requires at least two branches"));
                    }
                    self.ensure_block_end("choice")?;
                    Ok(TemplateType::Choice { at, branches })
                }
                "foreach" => {
                    self.position += 1;
                    let var = Name::from(self.ident("foreach variable")?);
                    if self.index_vars.contains(&var) {
                        return Err(self.error(format!(
                            "`foreach` variable `{var}` shadows a parameter or \
                             enclosing `foreach` variable"
                        )));
                    }
                    if self.singles.contains(&var) || self.families.contains(&var) {
                        return Err(self.error(format!(
                            "`foreach` variable `{var}` collides with a role name"
                        )));
                    }
                    self.keyword("in")?;
                    let lo = self.parse_index_expr()?;
                    self.expect(&Token::DotDot, "`..` in foreach range")?;
                    let hi = self.parse_index_expr()?;
                    // Bounds may only use parameters and enclosing
                    // `foreach` variables; anything else could never be
                    // bound by any instantiation.
                    self.check_index_scope(&lo)?;
                    self.check_index_scope(&hi)?;
                    self.expect(&Token::LBrace, "`{`")?;
                    self.index_vars.push(var.clone());
                    let body = self.parse_block(true);
                    self.index_vars.pop();
                    let body = body?;
                    self.expect(&Token::RBrace, "`}`")?;
                    let continuation = self.parse_block(in_foreach)?;
                    Ok(TemplateType::Foreach {
                        var,
                        lo,
                        hi,
                        body: Box::new(body),
                        continuation: Box::new(continuation),
                    })
                }
                _ => {
                    // Message statement: label(sort?) from a to b;
                    let label = Name::from(self.ident("message label")?);
                    self.expect(&Token::LParen, "`(`")?;
                    let sort = match self.peek() {
                        Some(Token::RParen) => Sort::Unit,
                        Some(Token::Ident(_)) => {
                            let sort = self.ident("sort")?;
                            Sort::from_str(&sort).expect("sort parsing is infallible")
                        }
                        _ => return Err(self.error("expected sort or `)`")),
                    };
                    self.expect(&Token::RParen, "`)`")?;
                    self.keyword("from")?;
                    let from = self.parse_role_ref()?;
                    self.keyword("to")?;
                    let to = self.parse_role_ref()?;
                    self.expect(&Token::Semi, "`;`")?;
                    let continuation = self.parse_block(in_foreach)?;
                    Ok(TemplateType::Comm {
                        from,
                        to,
                        label,
                        sort,
                        continuation: Box::new(continuation),
                    })
                }
            },
            Some(_) => Err(self.error("expected a statement")),
        }
    }

    /// `rec`/`continue`/`choice` must end their enclosing block: anything
    /// sequenced after them has no defined meaning in the global type.
    fn ensure_block_end(&self, construct: &str) -> Result<(), ScribbleError> {
        match self.peek() {
            None | Some(Token::RBrace) => Ok(()),
            _ => Err(self.error(format!(
                "`{construct}` must be the final statement of its block"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::project;

    const STREAMING: &str = r#"
        global protocol Streaming(role s, role t) {
            rec loop {
                ready() from t to s;
                choice at s {
                    value() from s to t;
                    continue loop;
                } or {
                    stop() from s to t;
                }
            }
        }
    "#;

    const DOUBLE_BUFFERING: &str = r#"
        global protocol DoubleBuffering(role s, role k, role t) {
            rec loop {
                ready() from k to s;
                value() from s to k;
                ready() from t to k;
                value() from k to t;
                continue loop;
            }
        }
    "#;

    #[test]
    fn parses_streaming() {
        let protocol = parse(STREAMING).unwrap();
        assert_eq!(protocol.name, Name::from("Streaming"));
        assert_eq!(protocol.roles, vec![Name::from("s"), Name::from("t")]);
        assert_eq!(
            protocol.body,
            GlobalType::rec(
                "loop",
                GlobalType::message(
                    "t",
                    "s",
                    "ready",
                    Sort::Unit,
                    GlobalType::choice(
                        "s",
                        "t",
                        [
                            ("value".into(), Sort::Unit, GlobalType::Var("loop".into())),
                            ("stop".into(), Sort::Unit, GlobalType::End),
                        ],
                    ),
                ),
            )
        );
    }

    #[test]
    fn parses_double_buffering_listing1() {
        let protocol = parse(DOUBLE_BUFFERING).unwrap();
        let kernel = project(&protocol.body, &"k".into()).unwrap();
        // Recursion variable names differ ("loop" vs "x"); compare up to
        // alpha-equivalence by comparing the generated FSMs.
        let expected =
            crate::local::parse("rec x . s!ready . s?value . t?ready . t!value . x").unwrap();
        let fsm_actual = crate::fsm::from_local(&"k".into(), &kernel).unwrap();
        let fsm_expected = crate::fsm::from_local(&"k".into(), &expected).unwrap();
        assert_eq!(fsm_actual, fsm_expected);
    }

    #[test]
    fn comments_are_skipped() {
        let source = r#"
            // the two-party streaming protocol
            global protocol P(role a, role b) {
                hello() from a to b; // greeting
            }
        "#;
        let protocol = parse(source).unwrap();
        assert_eq!(
            protocol.body,
            GlobalType::message("a", "b", "hello", Sort::Unit, GlobalType::End)
        );
    }

    #[test]
    fn rejects_undeclared_role() {
        let source = "global protocol P(role a, role b) { hi() from a to c; }";
        assert!(parse(source).is_err());
    }

    #[test]
    fn rejects_statement_after_continue() {
        let source = r#"
            global protocol P(role a, role b) {
                rec l { continue l; hi() from a to b; }
            }
        "#;
        assert!(parse(source).is_err());
    }

    #[test]
    fn rejects_single_branch_choice() {
        let source = r#"
            global protocol P(role a, role b) {
                choice at a { hi() from a to b; }
            }
        "#;
        assert!(parse(source).is_err());
    }

    #[test]
    fn payload_sorts_are_parsed() {
        let source = "global protocol P(role a, role b) { v(i32) from a to b; }";
        let protocol = parse(source).unwrap();
        assert_eq!(
            protocol.body,
            GlobalType::message("a", "b", "v", Sort::I32, GlobalType::End)
        );
    }

    // ---- parameterised templates ------------------------------------

    const PIPELINE: &str = r#"
        global protocol Pipeline(role s, role w[1..n], role t) {
            start() from s to w[1];
            foreach i in 1..n-1 {
                hop() from w[i] to w[i+1];
            }
            done() from w[n] to t;
        }
    "#;

    fn bind(pairs: &[(&str, i64)]) -> Bindings {
        pairs
            .iter()
            .map(|(name, value)| (Name::from(*name), *value))
            .collect()
    }

    #[test]
    fn template_reports_params() {
        let template = parse_template(PIPELINE).unwrap();
        assert!(template.is_parameterised());
        assert_eq!(
            template.params().into_iter().collect::<Vec<_>>(),
            vec![Name::from("n")]
        );
    }

    #[test]
    fn pipeline_instantiates_and_splices() {
        let template = parse_template(PIPELINE).unwrap();
        let protocol = template.instantiate(&bind(&[("n", 3)])).unwrap();
        assert_eq!(
            protocol.roles,
            ["s", "w1", "w2", "w3", "t"].map(Name::from).to_vec()
        );
        assert_eq!(
            protocol.body,
            GlobalType::message(
                "s",
                "w1",
                "start",
                Sort::Unit,
                GlobalType::message(
                    "w1",
                    "w2",
                    "hop",
                    Sort::Unit,
                    GlobalType::message(
                        "w2",
                        "w3",
                        "hop",
                        Sort::Unit,
                        GlobalType::message("w3", "t", "done", Sort::Unit, GlobalType::End),
                    ),
                ),
            )
        );
    }

    #[test]
    fn non_linear_index_expressions_instantiate() {
        // `2*i` / `i*2-1` strides: a coordinator gathers from the odd and
        // even member of each pair.
        let source = r#"
            global protocol Gather(role c, role w[1..2*n]) {
                foreach i in 1..n {
                    odd() from w[i*2-1] to c;
                    even() from w[2*i] to c;
                }
            }
        "#;
        let template = parse_template(source).unwrap();
        assert_eq!(template.params(), [Name::from("n")].into_iter().collect());
        let protocol = template.instantiate(&bind(&[("n", 2)])).unwrap();
        assert_eq!(
            protocol.roles,
            ["c", "w1", "w2", "w3", "w4"].map(Name::from).to_vec()
        );
        assert_eq!(
            protocol.body,
            GlobalType::message(
                "w1",
                "c",
                "odd",
                Sort::Unit,
                GlobalType::message(
                    "w2",
                    "c",
                    "even",
                    Sort::Unit,
                    GlobalType::message(
                        "w3",
                        "c",
                        "odd",
                        Sort::Unit,
                        GlobalType::message("w4", "c", "even", Sort::Unit, GlobalType::End),
                    ),
                ),
            )
        );
    }

    #[test]
    fn star_binds_tighter_than_additive_operators() {
        let tokens = lex("2*i-1+n*2").unwrap();
        let mut parser = Parser {
            tokens: &tokens,
            position: 0,
            singles: BTreeSet::new(),
            families: BTreeSet::new(),
            index_vars: Vec::new(),
        };
        let expr = parser.parse_index_expr().unwrap();
        assert_eq!(expr.to_string(), "2*i-1+n*2");
        let env: Bindings = bind(&[("i", 3), ("n", 5)]);
        assert_eq!(expr.eval(&env).unwrap(), 2 * 3 - 1 + 5 * 2);
        // Display parenthesises additive factors it would otherwise lose.
        let product = IndexExpr::Mul(
            Box::new(IndexExpr::Add(
                Box::new(IndexExpr::Lit(1)),
                Box::new(IndexExpr::Var(Name::from("i"))),
            )),
            Box::new(IndexExpr::Lit(2)),
        );
        assert_eq!(product.to_string(), "(1+i)*2");
    }

    #[test]
    fn empty_foreach_expands_to_nothing() {
        let template = parse_template(PIPELINE).unwrap();
        // n = 1: the foreach range 1..0 is empty.
        let protocol = template.instantiate(&bind(&[("n", 1)])).unwrap();
        assert_eq!(
            protocol.body,
            GlobalType::message(
                "s",
                "w1",
                "start",
                Sort::Unit,
                GlobalType::message("w1", "t", "done", Sort::Unit, GlobalType::End),
            )
        );
    }

    #[test]
    fn literal_family_bounds_need_no_bindings() {
        let source = r#"
            global protocol P(role w[1..2]) {
                ping() from w[1] to w[2];
            }
        "#;
        let protocol = parse(source).unwrap();
        assert_eq!(protocol.roles, ["w1", "w2"].map(Name::from).to_vec());
    }

    #[test]
    fn missing_binding_is_an_error() {
        let template = parse_template(PIPELINE).unwrap();
        let err = template.instantiate(&Bindings::new()).unwrap_err();
        assert!(err.message.contains("unbound parameter `n`"), "{err}");
    }

    #[test]
    fn unknown_binding_is_an_error() {
        let template = parse_template(PIPELINE).unwrap();
        let err = template
            .instantiate(&bind(&[("n", 2), ("m", 1)]))
            .unwrap_err();
        assert!(err.message.contains("unknown parameter `m`"), "{err}");
    }

    #[test]
    fn out_of_range_index_is_an_error() {
        let source = r#"
            global protocol P(role a, role w[1..n]) {
                hi() from a to w[n+1];
            }
        "#;
        let template = parse_template(source).unwrap();
        let err = template.instantiate(&bind(&[("n", 2)])).unwrap_err();
        assert!(err.message.contains("outside the declared range"), "{err}");
    }

    #[test]
    fn empty_family_is_an_error() {
        let template = parse_template(PIPELINE).unwrap();
        let err = template.instantiate(&bind(&[("n", 0)])).unwrap_err();
        assert!(err.message.contains("is empty"), "{err}");
    }

    #[test]
    fn family_expansion_collision_is_an_error() {
        let source = r#"
            global protocol P(role w1, role w[1..n]) {
                hi() from w1 to w[n];
            }
        "#;
        let template = parse_template(source).unwrap();
        let err = template.instantiate(&bind(&[("n", 2)])).unwrap_err();
        assert!(err.message.contains("declared twice"), "{err}");
    }

    #[test]
    fn rejects_unknown_index_variable() {
        let source = r#"
            global protocol P(role a, role w[1..n]) {
                hi() from a to w[j];
            }
        "#;
        assert!(parse_template(source)
            .unwrap_err()
            .message
            .contains("unknown index variable `j`"));
    }

    #[test]
    fn rejects_unknown_variable_in_foreach_bounds() {
        // `k` is bound by no role family, so no `--param` set could ever
        // instantiate this template; reject it at parse time.
        let source = r#"
            global protocol P(role a, role w[1..n]) {
                foreach i in 1..k {
                    hi() from a to w[1];
                }
            }
        "#;
        assert!(parse_template(source)
            .unwrap_err()
            .message
            .contains("unknown index variable `k`"));
    }

    #[test]
    fn rejects_unindexed_family_reference() {
        let source = r#"
            global protocol P(role a, role w[1..n]) {
                hi() from a to w;
            }
        "#;
        assert!(parse_template(source)
            .unwrap_err()
            .message
            .contains("must be indexed"));
    }

    #[test]
    fn rejects_rec_inside_foreach() {
        let source = r#"
            global protocol P(role a, role w[1..n]) {
                foreach i in 1..n {
                    rec l { hi() from a to w[i]; continue l; }
                }
            }
        "#;
        assert!(parse_template(source)
            .unwrap_err()
            .message
            .contains("not allowed inside a `foreach`"));
    }

    #[test]
    fn rejects_shadowing_foreach_variable() {
        let source = r#"
            global protocol P(role a, role w[1..n]) {
                foreach i in 1..n {
                    foreach i in 1..n { hi() from a to w[i]; }
                }
            }
        "#;
        assert!(parse_template(source)
            .unwrap_err()
            .message
            .contains("shadows"));
    }

    #[test]
    fn nested_foreach_expands_all_pairs() {
        let source = r#"
            global protocol P(role w[1..n]) {
                foreach i in 1..n-1 {
                    foreach j in i+1..n {
                        hi() from w[i] to w[j];
                    }
                }
            }
        "#;
        let template = parse_template(source).unwrap();
        let protocol = template.instantiate(&bind(&[("n", 3)])).unwrap();
        // Pairs in order: (1,2), (1,3), (2,3).
        let mut messages = Vec::new();
        let mut body = &protocol.body;
        while let GlobalType::Comm { from, to, branches } = body {
            messages.push((from.to_string(), to.to_string()));
            body = &branches[0].continuation;
        }
        assert_eq!(
            messages,
            vec![
                ("w1".into(), "w2".into()),
                ("w1".into(), "w3".into()),
                ("w2".into(), "w3".into()),
            ] as Vec<(String, String)>
        );
    }

    #[test]
    fn parameterised_choice_projects_per_instance() {
        // A parameterised ring with a stop signal: every instantiation
        // must project for every family member.
        let source = r#"
            global protocol PRing(role w[1..n]) {
                rec loop {
                    choice at w[1] {
                        token() from w[1] to w[2];
                        foreach i in 2..n-1 {
                            token() from w[i] to w[i+1];
                        }
                        token() from w[n] to w[1];
                        continue loop;
                    } or {
                        stop() from w[1] to w[2];
                        foreach i in 2..n-1 {
                            stop() from w[i] to w[i+1];
                        }
                        stop() from w[n] to w[1];
                    }
                }
            }
        "#;
        let template = parse_template(source).unwrap();
        for n in 2..=5 {
            let protocol = template.instantiate(&bind(&[("n", n)])).unwrap();
            assert_eq!(protocol.roles.len(), n as usize);
            for role in &protocol.roles {
                project(&protocol.body, role)
                    .unwrap_or_else(|e| panic!("projection of {role} failed at n={n}: {e}"));
            }
        }
    }
}
