//! Global session types `G` (paper Definition 1):
//!
//! ```text
//! G ::= end | p → q : {ℓᵢ(Sᵢ).Gᵢ}ᵢ∈I | μt.G | t
//! ```

use std::collections::BTreeSet;
use std::fmt;

use crate::name::Name;
use crate::sort::Sort;

/// One labelled continuation `ℓ(S).G` of a communication.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalBranch {
    /// Message label `ℓ`.
    pub label: Name,
    /// Payload sort `S`.
    pub sort: Sort,
    /// Continuation `G`.
    pub continuation: GlobalType,
}

/// A global session type describing a whole protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GlobalType {
    /// Successful termination (`end`).
    End,
    /// A message exchange `from → to : {ℓᵢ(Sᵢ).Gᵢ}`; a singleton branch
    /// list is a plain message, several branches form a choice made by
    /// `from`.
    Comm {
        /// Sending participant `p`.
        from: Name,
        /// Receiving participant `q`.
        to: Name,
        /// Labelled continuations; labels must be pairwise distinct.
        branches: Vec<GlobalBranch>,
    },
    /// Recursive type `μt.G`.
    Rec {
        /// The bound recursion variable `t`.
        var: Name,
        /// Body in which `var` may occur.
        body: Box<GlobalType>,
    },
    /// Occurrence of a recursion variable `t`.
    Var(Name),
}

/// Errors raised by [`GlobalType::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GlobalError {
    /// A participant sends a message to itself.
    SelfCommunication(Name),
    /// Two branches of the same communication carry the same label.
    DuplicateLabel { from: Name, to: Name, label: Name },
    /// A recursion variable appears free.
    UnboundVariable(Name),
    /// A communication has no branches.
    EmptyChoice { from: Name, to: Name },
}

impl fmt::Display for GlobalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalError::SelfCommunication(role) => {
                write!(f, "participant {role} communicates with itself")
            }
            GlobalError::DuplicateLabel { from, to, label } => {
                write!(f, "duplicate label {label} in {from} -> {to}")
            }
            GlobalError::UnboundVariable(var) => write!(f, "unbound recursion variable {var}"),
            GlobalError::EmptyChoice { from, to } => {
                write!(f, "empty choice in {from} -> {to}")
            }
        }
    }
}

impl std::error::Error for GlobalError {}

impl GlobalType {
    /// Convenience constructor for a single-label message.
    pub fn message(
        from: impl Into<Name>,
        to: impl Into<Name>,
        label: impl Into<Name>,
        sort: Sort,
        continuation: GlobalType,
    ) -> Self {
        GlobalType::Comm {
            from: from.into(),
            to: to.into(),
            branches: vec![GlobalBranch {
                label: label.into(),
                sort,
                continuation,
            }],
        }
    }

    /// Convenience constructor for a directed choice.
    pub fn choice(
        from: impl Into<Name>,
        to: impl Into<Name>,
        branches: impl IntoIterator<Item = (Name, Sort, GlobalType)>,
    ) -> Self {
        GlobalType::Comm {
            from: from.into(),
            to: to.into(),
            branches: branches
                .into_iter()
                .map(|(label, sort, continuation)| GlobalBranch {
                    label,
                    sort,
                    continuation,
                })
                .collect(),
        }
    }

    /// Convenience constructor for `μvar.body`.
    pub fn rec(var: impl Into<Name>, body: GlobalType) -> Self {
        GlobalType::Rec {
            var: var.into(),
            body: Box::new(body),
        }
    }

    /// All participants occurring anywhere in the type, sorted.
    pub fn participants(&self) -> BTreeSet<Name> {
        let mut set = BTreeSet::new();
        self.collect_participants(&mut set);
        set
    }

    fn collect_participants(&self, set: &mut BTreeSet<Name>) {
        match self {
            GlobalType::End | GlobalType::Var(_) => {}
            GlobalType::Comm { from, to, branches } => {
                set.insert(from.clone());
                set.insert(to.clone());
                for branch in branches {
                    branch.continuation.collect_participants(set);
                }
            }
            GlobalType::Rec { body, .. } => body.collect_participants(set),
        }
    }

    /// Structural well-formedness: no self-messages, distinct labels per
    /// choice, no empty choices, all recursion variables bound.
    pub fn validate(&self) -> Result<(), GlobalError> {
        self.validate_inner(&mut Vec::new())
    }

    fn validate_inner(&self, bound: &mut Vec<Name>) -> Result<(), GlobalError> {
        match self {
            GlobalType::End => Ok(()),
            GlobalType::Var(var) => {
                if bound.contains(var) {
                    Ok(())
                } else {
                    Err(GlobalError::UnboundVariable(var.clone()))
                }
            }
            GlobalType::Rec { var, body } => {
                bound.push(var.clone());
                let result = body.validate_inner(bound);
                bound.pop();
                result
            }
            GlobalType::Comm { from, to, branches } => {
                if from == to {
                    return Err(GlobalError::SelfCommunication(from.clone()));
                }
                if branches.is_empty() {
                    return Err(GlobalError::EmptyChoice {
                        from: from.clone(),
                        to: to.clone(),
                    });
                }
                let mut seen = BTreeSet::new();
                for branch in branches {
                    if !seen.insert(&branch.label) {
                        return Err(GlobalError::DuplicateLabel {
                            from: from.clone(),
                            to: to.clone(),
                            label: branch.label.clone(),
                        });
                    }
                    branch.continuation.validate_inner(bound)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for GlobalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalType::End => f.write_str("end"),
            GlobalType::Var(var) => write!(f, "{var}"),
            GlobalType::Rec { var, body } => write!(f, "mu {var}.{body}"),
            GlobalType::Comm { from, to, branches } => {
                write!(f, "{from} -> {to} : {{")?;
                for (index, branch) in branches.iter().enumerate() {
                    if index > 0 {
                        f.write_str(", ")?;
                    }
                    if branch.sort == Sort::Unit {
                        write!(f, "{}.{}", branch.label, branch.continuation)?;
                    } else {
                        write!(
                            f,
                            "{}({}).{}",
                            branch.label, branch.sort, branch.continuation
                        )?;
                    }
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streaming() -> GlobalType {
        // μx. t → s : { ready. s → t : { value.x, stop.end } }
        GlobalType::rec(
            "x",
            GlobalType::message(
                "t",
                "s",
                "ready",
                Sort::Unit,
                GlobalType::choice(
                    "s",
                    "t",
                    [
                        ("value".into(), Sort::I32, GlobalType::Var("x".into())),
                        ("stop".into(), Sort::Unit, GlobalType::End),
                    ],
                ),
            ),
        )
    }

    #[test]
    fn participants_of_streaming() {
        let g = streaming();
        let roles: Vec<_> = g.participants().into_iter().collect();
        assert_eq!(roles, vec![Name::from("s"), Name::from("t")]);
    }

    #[test]
    fn streaming_is_well_formed() {
        assert_eq!(streaming().validate(), Ok(()));
    }

    #[test]
    fn rejects_self_communication() {
        let g = GlobalType::message("s", "s", "l", Sort::Unit, GlobalType::End);
        assert_eq!(
            g.validate(),
            Err(GlobalError::SelfCommunication("s".into()))
        );
    }

    #[test]
    fn rejects_duplicate_labels() {
        let g = GlobalType::choice(
            "a",
            "b",
            [
                ("l".into(), Sort::Unit, GlobalType::End),
                ("l".into(), Sort::Unit, GlobalType::End),
            ],
        );
        assert!(matches!(
            g.validate(),
            Err(GlobalError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn rejects_unbound_variable() {
        let g = GlobalType::message("a", "b", "l", Sort::Unit, GlobalType::Var("x".into()));
        assert_eq!(g.validate(), Err(GlobalError::UnboundVariable("x".into())));
    }

    #[test]
    fn display_round_readable() {
        assert_eq!(
            streaming().to_string(),
            "mu x.t -> s : {ready.s -> t : {value(i32).x, stop.end}}"
        );
    }
}
