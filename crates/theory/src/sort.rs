//! Payload sorts `S` (Definition 1) and the subsort relation `≤:`.

use std::fmt;
use std::str::FromStr;

use crate::name::Name;

/// The payload sort carried by a message label.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum Sort {
    /// No payload (`label()` in Scribble).
    #[default]
    Unit,
    /// 32-bit signed integer.
    I32,
    /// 32-bit unsigned integer (plays the role of `nat` in the paper).
    U32,
    /// 64-bit signed integer.
    I64,
    /// 64-bit unsigned integer.
    U64,
    /// 64-bit float.
    F64,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Str,
    /// An opaque application-defined sort, compared nominally.
    Custom(Name),
}

impl Sort {
    /// The reflexive subsort relation `≤:` of the paper, extended to the
    /// full sort lattice: unsigned widths embed into wider signed/unsigned
    /// widths (`nat ≤: int` generalised).
    pub fn is_subsort_of(&self, other: &Sort) -> bool {
        use Sort::*;
        if self == other {
            return true;
        }
        matches!(
            (self, other),
            (U32, I64) | (U32, U64) | (U32, I32) | (I32, I64) | (U64, I64)
        )
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Unit => f.write_str("unit"),
            Sort::I32 => f.write_str("i32"),
            Sort::U32 => f.write_str("u32"),
            Sort::I64 => f.write_str("i64"),
            Sort::U64 => f.write_str("u64"),
            Sort::F64 => f.write_str("f64"),
            Sort::Bool => f.write_str("bool"),
            Sort::Str => f.write_str("str"),
            Sort::Custom(name) => write!(f, "{name}"),
        }
    }
}

impl FromStr for Sort {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "" | "unit" | "()" => Sort::Unit,
            "i32" | "int" => Sort::I32,
            "u32" | "nat" => Sort::U32,
            "i64" => Sort::I64,
            "u64" => Sort::U64,
            "f64" => Sort::F64,
            "bool" => Sort::Bool,
            "str" | "string" => Sort::Str,
            other => Sort::Custom(Name::from(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflexive() {
        for sort in [Sort::Unit, Sort::I32, Sort::U32, Sort::Custom("x".into())] {
            assert!(sort.is_subsort_of(&sort));
        }
    }

    #[test]
    fn nat_below_int() {
        assert!(Sort::U32.is_subsort_of(&Sort::I32));
        assert!(Sort::U32.is_subsort_of(&Sort::I64));
        assert!(!Sort::I32.is_subsort_of(&Sort::U32));
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("nat".parse::<Sort>().unwrap(), Sort::U32);
        assert_eq!("int".parse::<Sort>().unwrap(), Sort::I32);
        assert_eq!(
            "matrix".parse::<Sort>().unwrap(),
            Sort::Custom("matrix".into())
        );
    }
}
