//! Multiparty session type theory: the νScr/Scribble substrate.
//!
//! This crate implements the "paper" side of Rumpsteak's top-down workflow
//! (Fig 1a of the paper):
//!
//! * [`global`] — global session types `G` (Definition 1),
//! * [`local`] — local session types `T` with internal/external choice,
//! * [`scribble`] — a parser for the Scribble subset used by the paper
//!   (`global protocol`, `rec`/`continue`, `choice at`),
//! * [`projection`] — projection of a global type onto each participant,
//!   with full merging of external choices,
//! * [`fsm`] — communicating finite state machines and conversions
//!   local type ⇄ FSM (the representation the subtyping algorithm and the
//!   k-MC checker operate on),
//! * [`dot`] — Graphviz output for debugging protocols.
//!
//! # Example: the streaming protocol of §2
//!
//! ```
//! use theory::scribble;
//! use theory::projection::project;
//!
//! let source = r#"
//!     global protocol Streaming(role s, role t) {
//!         rec loop {
//!             ready() from t to s;
//!             choice at s {
//!                 value() from s to t;
//!                 continue loop;
//!             } or {
//!                 stop() from s to t;
//!             }
//!         }
//!     }
//! "#;
//! let protocol = scribble::parse(source).unwrap();
//! let local_s = project(&protocol.body, &"s".into()).unwrap();
//! let fsm = theory::fsm::from_local(&"s".into(), &local_s).unwrap();
//! assert_eq!(fsm.len(), 3); // loop head, choice state, end
//! ```

pub mod dot;
pub mod fsm;
pub mod global;
pub mod local;
pub mod name;
pub mod projection;
pub mod scribble;
pub mod sort;

pub use fsm::{Action, Direction, Fsm, StateIndex};
pub use global::GlobalType;
pub use local::LocalType;
pub use name::Name;
pub use sort::Sort;
