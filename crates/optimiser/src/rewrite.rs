//! The AMR rewrite rules: every way one send can move earlier in a local
//! type.
//!
//! Three rules generate candidates (paper §2, Fig 4; §3 Example 2):
//!
//! * **hoist past receive** — an internal choice immediately preceded by
//!   a single receive moves above it, duplicating the receive into each
//!   branch (`p?a.⊕ᵢq!ℓᵢ.Tᵢ ↦ ⊕ᵢq!ℓᵢ.p?a.Tᵢ`). This is output
//!   anticipation across an input — rule `[)B]`/R2 territory — and is
//!   what unblocks a send that waits on an unrelated receive.
//! * **hoist past send** — an internal choice immediately preceded by a
//!   single send *to a different peer* moves above it. No receive is
//!   crossed (score 0) but the move enables further hoists, e.g. the
//!   second `ready` of the finite double-buffering kernel crossing the
//!   `value` towards the sink (Fig 4b).
//! * **anticipate** — one copy of a send occurring in a loop body is
//!   prepended ahead of the `rec` binder (`μt.T ↦ q!ℓ.μt.T`), the
//!   unfold-once-and-commute transformation behind k-buffering: `k`
//!   applications yield the `k+1`-buffer pipeline.
//!
//! Rules fire at *any* position in the term, and compose: the candidate
//! search closes over them breadth-first. None of them is checked for
//! soundness here — every candidate is validated against the projection
//! by `subtyping::is_subtype` afterwards, so an unsound combination
//! (e.g. anticipating past an exit branch that unbalances the loop, or
//! crossing a same-peer send) is simply rejected.

use std::fmt;

use theory::local::{LocalBranch, LocalType};
use theory::name::Name;
use theory::sort::Sort;

/// One rewrite application, recorded in a candidate's derivation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// A send-choice towards `sender_peer` moved above a receive from
    /// `receive_peer`.
    HoistPastReceive {
        /// Peer of the hoisted internal choice.
        send_peer: Name,
        /// Peer of the receive that was crossed.
        receive_peer: Name,
    },
    /// A send-choice towards `inner` moved above a send to `outer`
    /// (a different peer; same-peer crossings are never generated, the
    /// subtyping relation forbids them).
    HoistPastSend {
        /// Peer of the hoisted inner choice.
        inner: Name,
        /// Peer of the outer send that was crossed.
        outer: Name,
    },
    /// One copy of `peer!label` was prepended ahead of a `rec` loop that
    /// sends it, anticipating the next iteration's send.
    Anticipate {
        /// Receiver of the anticipated send.
        peer: Name,
        /// Label of the anticipated send.
        label: Name,
    },
}

impl Step {
    /// How many receives this step moved a send ahead of — the
    /// "sends made non-blocking" contribution to a candidate's score.
    /// An anticipation counts 1 (one extra iteration of pipeline depth);
    /// a send-past-send crossing is enabling only.
    pub fn score(&self) -> usize {
        match self {
            Step::HoistPastReceive { .. } | Step::Anticipate { .. } => 1,
            Step::HoistPastSend { .. } => 0,
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::HoistPastReceive {
                send_peer,
                receive_peer,
            } => write!(f, "hoist {send_peer}! past {receive_peer}?"),
            Step::HoistPastSend { inner, outer } => write!(f, "hoist {inner}! past {outer}!"),
            Step::Anticipate { peer, label } => write!(f, "anticipate {peer}!{label}"),
        }
    }
}

/// All single-step rewrites of `term`, at every position.
///
/// `allow_anticipate` gates the loop-anticipation rule (the search turns
/// it off once a candidate has used its unfold budget).
pub fn rewrites(term: &LocalType, allow_anticipate: bool) -> Vec<(LocalType, Step)> {
    let mut out = Vec::new();
    collect(term, allow_anticipate, &mut |candidate, step| {
        out.push((candidate, step))
    });
    out
}

fn collect(term: &LocalType, allow_anticipate: bool, emit: &mut dyn FnMut(LocalType, Step)) {
    // Rewrites rooted at this node.
    match term {
        LocalType::End | LocalType::Var(_) => {}
        LocalType::Branch { peer, branches } if branches.len() == 1 => {
            let guard = &branches[0];
            if let LocalType::Select {
                peer: send_peer,
                branches: inner,
            } = &guard.continuation
            {
                emit(
                    hoisted(send_peer, inner, |continuation| LocalType::Branch {
                        peer: peer.clone(),
                        branches: vec![LocalBranch {
                            label: guard.label.clone(),
                            sort: guard.sort.clone(),
                            continuation,
                        }],
                    }),
                    Step::HoistPastReceive {
                        send_peer: send_peer.clone(),
                        receive_peer: peer.clone(),
                    },
                );
            }
        }
        LocalType::Select { peer, branches } if branches.len() == 1 => {
            let outer = &branches[0];
            if let LocalType::Select {
                peer: inner_peer,
                branches: inner,
            } = &outer.continuation
            {
                // Same-peer crossings violate the subtyping relation's
                // FIFO-per-peer discipline; don't bother generating them.
                if inner_peer != peer {
                    emit(
                        hoisted(inner_peer, inner, |continuation| LocalType::Select {
                            peer: peer.clone(),
                            branches: vec![LocalBranch {
                                label: outer.label.clone(),
                                sort: outer.sort.clone(),
                                continuation,
                            }],
                        }),
                        Step::HoistPastSend {
                            inner: inner_peer.clone(),
                            outer: peer.clone(),
                        },
                    );
                }
            }
        }
        _ => {}
    }
    if allow_anticipate {
        if let LocalType::Rec { body, .. } = term {
            for (peer, label, sort) in body_sends(body) {
                emit(
                    LocalType::send(peer.clone(), label.clone(), sort.clone(), term.clone()),
                    Step::Anticipate { peer, label },
                );
            }
        }
    }

    // Rewrites in subterms, spliced back into place.
    match term {
        LocalType::End | LocalType::Var(_) => {}
        LocalType::Rec { var, body } => {
            collect(body, allow_anticipate, &mut |new_body, step| {
                emit(
                    LocalType::Rec {
                        var: var.clone(),
                        body: Box::new(new_body),
                    },
                    step,
                )
            });
        }
        LocalType::Select { peer, branches } | LocalType::Branch { peer, branches } => {
            let is_select = matches!(term, LocalType::Select { .. });
            for (index, branch) in branches.iter().enumerate() {
                collect(&branch.continuation, allow_anticipate, &mut |cont, step| {
                    let mut branches = branches.clone();
                    branches[index].continuation = cont;
                    let peer = peer.clone();
                    emit(
                        if is_select {
                            LocalType::Select { peer, branches }
                        } else {
                            LocalType::Branch { peer, branches }
                        },
                        step,
                    )
                });
            }
        }
    }
}

/// Builds the hoisted form: the inner select's branches, each wrapped by
/// `rebuild` (which reinstates the crossed outer action inside the
/// branch).
fn hoisted(
    send_peer: &Name,
    inner: &[LocalBranch],
    rebuild: impl Fn(LocalType) -> LocalType,
) -> LocalType {
    LocalType::Select {
        peer: send_peer.clone(),
        branches: inner
            .iter()
            .map(|branch| LocalBranch {
                label: branch.label.clone(),
                sort: branch.sort.clone(),
                continuation: rebuild(branch.continuation.clone()),
            })
            .collect(),
    }
}

/// Distinct send actions occurring anywhere in `body`, in term order.
fn body_sends(body: &LocalType) -> Vec<(Name, Name, Sort)> {
    fn go(term: &LocalType, out: &mut Vec<(Name, Name, Sort)>) {
        match term {
            LocalType::End | LocalType::Var(_) => {}
            LocalType::Rec { body, .. } => go(body, out),
            LocalType::Select { peer, branches } => {
                for branch in branches {
                    let action = (peer.clone(), branch.label.clone(), branch.sort.clone());
                    if !out.contains(&action) {
                        out.push(action);
                    }
                    go(&branch.continuation, out);
                }
            }
            LocalType::Branch { branches, .. } => {
                for branch in branches {
                    go(&branch.continuation, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    go(body, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use theory::local::parse;

    fn displays(term: &str, allow_anticipate: bool) -> Vec<String> {
        rewrites(&parse(term).unwrap(), allow_anticipate)
            .into_iter()
            .map(|(t, _)| t.to_string())
            .collect()
    }

    #[test]
    fn hoists_send_past_receive() {
        assert_eq!(displays("p?a.q!b.end", false), vec!["q!b.p?a.end"]);
    }

    #[test]
    fn hoists_choice_past_receive_duplicating_it() {
        // The appendix B.2.1 ring-with-choice reordering.
        assert_eq!(
            displays("a?add.+{ c!add.end, c!sub.end }", false),
            vec!["+{c!add.a?add.end, c!sub.a?add.end}"]
        );
    }

    #[test]
    fn hoists_send_past_send_to_other_peer_only() {
        assert_eq!(displays("q!b.p!a.end", false), vec!["p!a.q!b.end"]);
        // Same peer: generating it would only waste a verification call.
        assert!(displays("p!b.p!a.end", false).is_empty());
    }

    #[test]
    fn anticipates_each_loop_send_once() {
        let candidates = displays("rec x . s!ready . s?value . t!value . x", true);
        assert!(candidates.contains(&"s!ready.rec x.s!ready.s?value.t!value.x".to_owned()));
        assert!(candidates.contains(&"t!value.rec x.s!ready.s?value.t!value.x".to_owned()));
    }

    #[test]
    fn anticipation_can_be_disabled() {
        assert!(displays("rec x . s!ready . s?value . x", false).is_empty());
    }

    #[test]
    fn rewrites_fire_under_binders_and_in_branches() {
        let candidates = displays("rec x . p?a . q!b . x", true);
        // In-body hoist and loop anticipation both found.
        assert!(candidates.contains(&"rec x.q!b.p?a.x".to_owned()));
        assert!(candidates.contains(&"q!b.rec x.p?a.q!b.x".to_owned()));
    }

    #[test]
    fn receives_are_never_hoisted() {
        // Input anticipation before an output deadlocks (paper Example 2);
        // the generator does not even propose it.
        assert!(displays("q!b.p?a.end", false)
            .iter()
            .all(|c| !c.starts_with("p?")));
    }
}
