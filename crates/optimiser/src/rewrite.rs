//! The AMR rewrite rules: every way one send can move earlier in a local
//! type.
//!
//! Five rules generate candidates (paper §2, Fig 4; §3 Example 2):
//!
//! * **hoist past receive** — an internal choice immediately preceded by
//!   a single receive moves above it, duplicating the receive into each
//!   branch (`p?a.⊕ᵢq!ℓᵢ.Tᵢ ↦ ⊕ᵢq!ℓᵢ.p?a.Tᵢ`). This is output
//!   anticipation across an input — rule `[)B]`/R2 territory — and is
//!   what unblocks a send that waits on an unrelated receive.
//! * **hoist past send** — an internal choice immediately preceded by a
//!   single send *to a different peer* moves above it. No receive is
//!   crossed (score 0) but the move enables further hoists, e.g. the
//!   second `ready` of the finite double-buffering kernel crossing the
//!   `value` towards the sink (Fig 4b).
//! * **hoist out of branches** — when every branch of a *multi-label*
//!   external choice starts with the *same* single send, that send moves
//!   above the choice (`&ᵢ p?ℓᵢ.q!m.Tᵢ ↦ q!m.&ᵢ p?ℓᵢ.Tᵢ`): the send no
//!   longer waits to learn which label arrives, crossing the guarding
//!   receive exactly like the single-label hoist does.
//! * **swap receives** — two adjacent single receives from *different*
//!   peers commute (`p?a.q?b.T ↦ q?b.p?a.T`). Messages from different
//!   peers travel on independent channels, so neither order is forced;
//!   the swap crosses no receive with a send (score 0) but can expose a
//!   hoist the original receive order blocks. Same-peer swaps would
//!   violate the per-channel FIFO discipline and are never generated.
//! * **anticipate** — one copy of a send occurring in a loop body is
//!   prepended ahead of the `rec` binder (`μt.T ↦ q!ℓ.μt.T`), the
//!   unfold-once-and-commute transformation behind k-buffering: `k`
//!   applications yield the `k+1`-buffer pipeline.
//!
//! Rules fire at *any* position in the term, and compose: the candidate
//! search closes over them breadth-first. None of them is checked for
//! *protocol* soundness here — every candidate is validated against the
//! projection by `subtyping::is_subtype` afterwards, so an unsound
//! combination (e.g. anticipating past an exit branch that unbalances
//! the loop, or crossing a same-peer send) is simply rejected.
//!
//! # Data-dependence pruning
//!
//! One class of candidate is dropped *before* verification: a hoist
//! whose payload plausibly *is* the value produced by a receive it
//! crosses (same label, same data-carrying sort — the forwarding shape
//! `p?value(S).q!value(S)`). Such a reordering can be protocol-sound yet
//! unimplementable: the `--skeleton` emitter sends `Default::default()`
//! payloads precisely because it has no data flow to consult, and
//! hoisting a forwarded payload above the receive that produces it would
//! force an invented default onto the wire. Unit-sort labels carry no
//! data and are always hoistable; the pruned count is reported so a
//! search that discards candidates says so. Each [`Step`] records the
//! payload sorts involved, which is also what the profile-guided
//! [`cost`](crate::cost) model prices.

use std::fmt;

use theory::local::{LocalBranch, LocalType};
use theory::name::Name;
use theory::sort::Sort;

/// One rewrite application, recorded in a candidate's derivation.
#[derive(Clone, Debug, PartialEq)]
pub enum Step {
    /// A send-choice towards `send_peer` moved above a receive from
    /// `receive_peer`.
    HoistPastReceive {
        /// Peer of the hoisted internal choice.
        send_peer: Name,
        /// Peer of the receive that was crossed.
        receive_peer: Name,
        /// Payload sorts of the hoisted choice's branches (what the
        /// cost model prices as occupancy).
        send_sorts: Vec<Sort>,
        /// Payload sort of the crossed receive (the latency the hoist
        /// stops paying).
        receive_sort: Sort,
    },
    /// A send-choice towards `inner` moved above a send to `outer`
    /// (a different peer; same-peer crossings are never generated, the
    /// subtyping relation forbids them).
    HoistPastSend {
        /// Peer of the hoisted inner choice.
        inner: Name,
        /// Peer of the outer send that was crossed.
        outer: Name,
    },
    /// The identical leading send of every branch of an external choice
    /// moved above the choice.
    HoistFromBranches {
        /// Receiver of the hoisted send.
        send_peer: Name,
        /// Peer of the external choice that was crossed.
        receive_peer: Name,
        /// Label of the hoisted send.
        label: Name,
        /// Payload sort of the hoisted send.
        sort: Sort,
        /// Payload sorts of the crossed choice's branches.
        receive_sorts: Vec<Sort>,
    },
    /// A receive from `moved` commuted ahead of an adjacent receive from
    /// `crossed` (different peers).
    SwapReceives {
        /// Peer of the receive that moved earlier.
        moved: Name,
        /// Peer of the receive that was crossed.
        crossed: Name,
    },
    /// One copy of `peer!label` was prepended ahead of a `rec` loop that
    /// sends it, anticipating the next iteration's send.
    Anticipate {
        /// Receiver of the anticipated send.
        peer: Name,
        /// Label of the anticipated send.
        label: Name,
        /// Payload sort of the anticipated send.
        sort: Sort,
        /// The receives of the crossed loop iteration, as (peer, payload
        /// sort) pairs — the latency one anticipation pipelines away.
        crossed_receives: Vec<(Name, Sort)>,
    },
}

impl Step {
    /// How many receives this step moved a send ahead of — the
    /// "sends made non-blocking" contribution to a candidate's score.
    /// An anticipation counts 1 (one extra iteration of pipeline depth);
    /// send-past-send and receive-receive swaps are enabling only.
    pub fn score(&self) -> usize {
        match self {
            Step::HoistPastReceive { .. }
            | Step::HoistFromBranches { .. }
            | Step::Anticipate { .. } => 1,
            Step::HoistPastSend { .. } | Step::SwapReceives { .. } => 0,
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::HoistPastReceive {
                send_peer,
                receive_peer,
                ..
            } => write!(f, "hoist {send_peer}! past {receive_peer}?"),
            Step::HoistPastSend { inner, outer } => write!(f, "hoist {inner}! past {outer}!"),
            Step::HoistFromBranches {
                send_peer,
                receive_peer,
                label,
                ..
            } => write!(
                f,
                "hoist {send_peer}!{label} out of {receive_peer}? branches"
            ),
            Step::SwapReceives { moved, crossed } => {
                write!(f, "swap {moved}? ahead of {crossed}?")
            }
            Step::Anticipate { peer, label, .. } => write!(f, "anticipate {peer}!{label}"),
        }
    }
}

/// The single-step rewrites of one term, plus how many applications the
/// data-dependence filter pruned (see the module docs).
pub struct Rewrites {
    /// Every surviving candidate with the step that produced it.
    pub candidates: Vec<(LocalType, Step)>,
    /// Rewrite applications dropped because the hoisted payload
    /// data-depends on a crossed receive.
    pub pruned: usize,
}

/// All single-step rewrites of `term`, at every position.
///
/// `allow_anticipate` gates the loop-anticipation rule (the search turns
/// it off once a candidate has used its unfold budget).
pub fn rewrites(term: &LocalType, allow_anticipate: bool) -> Rewrites {
    let mut out = Rewrites {
        candidates: Vec::new(),
        pruned: 0,
    };
    let mut pruned = 0usize;
    collect(
        term,
        allow_anticipate,
        &mut pruned,
        &mut |candidate, step| out.candidates.push((candidate, step)),
    );
    out.pruned = pruned;
    out
}

/// Whether a send of `send_label(send_sort)` plausibly forwards the
/// value produced by a receive of `recv_label(recv_sort)`: same label,
/// and a data-carrying sort on both ends that the subsort relation
/// connects. Unit payloads carry nothing, so they never depend.
fn data_depends(send_label: &Name, send_sort: &Sort, recv_label: &Name, recv_sort: &Sort) -> bool {
    send_label == recv_label
        && *send_sort != Sort::Unit
        && *recv_sort != Sort::Unit
        && (recv_sort.is_subsort_of(send_sort) || send_sort.is_subsort_of(recv_sort))
}

fn collect(
    term: &LocalType,
    allow_anticipate: bool,
    pruned: &mut usize,
    emit: &mut dyn FnMut(LocalType, Step),
) {
    // Rewrites rooted at this node.
    match term {
        LocalType::End | LocalType::Var(_) => {}
        LocalType::Branch { peer, branches } if branches.len() == 1 => {
            let guard = &branches[0];
            if let LocalType::Select {
                peer: send_peer,
                branches: inner,
            } = &guard.continuation
            {
                if inner
                    .iter()
                    .any(|b| data_depends(&b.label, &b.sort, &guard.label, &guard.sort))
                {
                    *pruned += 1;
                } else {
                    emit(
                        hoisted(send_peer, inner, |continuation| LocalType::Branch {
                            peer: peer.clone(),
                            branches: vec![LocalBranch {
                                label: guard.label.clone(),
                                sort: guard.sort.clone(),
                                continuation,
                            }],
                        }),
                        Step::HoistPastReceive {
                            send_peer: send_peer.clone(),
                            receive_peer: peer.clone(),
                            send_sorts: inner.iter().map(|b| b.sort.clone()).collect(),
                            receive_sort: guard.sort.clone(),
                        },
                    );
                }
            }
            // Receive-receive reordering: the guarded continuation is
            // itself a single receive from a *different* peer.
            if let LocalType::Branch {
                peer: inner_peer,
                branches: inner,
            } = &guard.continuation
            {
                if inner.len() == 1 && inner_peer != peer {
                    let moved = &inner[0];
                    emit(
                        LocalType::receive(
                            inner_peer.clone(),
                            moved.label.clone(),
                            moved.sort.clone(),
                            LocalType::receive(
                                peer.clone(),
                                guard.label.clone(),
                                guard.sort.clone(),
                                moved.continuation.clone(),
                            ),
                        ),
                        Step::SwapReceives {
                            moved: inner_peer.clone(),
                            crossed: peer.clone(),
                        },
                    );
                }
            }
        }
        LocalType::Branch { peer, branches } if branches.len() > 1 => {
            // Hoist out of branches: every branch starts with the same
            // single send.
            if let Some(common) = common_leading_send(branches) {
                let (send_peer, label, sort) = common;
                if branches
                    .iter()
                    .any(|b| data_depends(&label, &sort, &b.label, &b.sort))
                {
                    *pruned += 1;
                } else {
                    let stripped: Vec<LocalBranch> = branches
                        .iter()
                        .map(|b| LocalBranch {
                            label: b.label.clone(),
                            sort: b.sort.clone(),
                            continuation: match &b.continuation {
                                LocalType::Select { branches, .. } => {
                                    branches[0].continuation.clone()
                                }
                                _ => unreachable!("common_leading_send checked the shape"),
                            },
                        })
                        .collect();
                    emit(
                        LocalType::send(
                            send_peer.clone(),
                            label.clone(),
                            sort.clone(),
                            LocalType::Branch {
                                peer: peer.clone(),
                                branches: stripped,
                            },
                        ),
                        Step::HoistFromBranches {
                            send_peer,
                            receive_peer: peer.clone(),
                            label,
                            sort,
                            receive_sorts: branches.iter().map(|b| b.sort.clone()).collect(),
                        },
                    );
                }
            }
        }
        LocalType::Select { peer, branches } if branches.len() == 1 => {
            let outer = &branches[0];
            if let LocalType::Select {
                peer: inner_peer,
                branches: inner,
            } = &outer.continuation
            {
                // Same-peer crossings violate the subtyping relation's
                // FIFO-per-peer discipline; don't bother generating them.
                if inner_peer != peer {
                    emit(
                        hoisted(inner_peer, inner, |continuation| LocalType::Select {
                            peer: peer.clone(),
                            branches: vec![LocalBranch {
                                label: outer.label.clone(),
                                sort: outer.sort.clone(),
                                continuation,
                            }],
                        }),
                        Step::HoistPastSend {
                            inner: inner_peer.clone(),
                            outer: peer.clone(),
                        },
                    );
                }
            }
        }
        _ => {}
    }
    if allow_anticipate {
        if let LocalType::Rec { body, .. } = term {
            let receives = body_receives(body);
            for (peer, label, sort) in body_sends(body) {
                if receives
                    .iter()
                    .any(|(_, rl, rs)| data_depends(&label, &sort, rl, rs))
                {
                    *pruned += 1;
                    continue;
                }
                emit(
                    LocalType::send(peer.clone(), label.clone(), sort.clone(), term.clone()),
                    Step::Anticipate {
                        peer,
                        label,
                        sort,
                        crossed_receives: receives
                            .iter()
                            .map(|(from, _, s)| (from.clone(), s.clone()))
                            .collect(),
                    },
                );
            }
        }
    }

    // Rewrites in subterms, spliced back into place.
    match term {
        LocalType::End | LocalType::Var(_) => {}
        LocalType::Rec { var, body } => {
            collect(body, allow_anticipate, pruned, &mut |new_body, step| {
                emit(
                    LocalType::Rec {
                        var: var.clone(),
                        body: Box::new(new_body),
                    },
                    step,
                )
            });
        }
        LocalType::Select { peer, branches } | LocalType::Branch { peer, branches } => {
            let is_select = matches!(term, LocalType::Select { .. });
            for (index, branch) in branches.iter().enumerate() {
                collect(
                    &branch.continuation,
                    allow_anticipate,
                    pruned,
                    &mut |cont, step| {
                        let mut branches = branches.clone();
                        branches[index].continuation = cont;
                        let peer = peer.clone();
                        emit(
                            if is_select {
                                LocalType::Select { peer, branches }
                            } else {
                                LocalType::Branch { peer, branches }
                            },
                            step,
                        )
                    },
                );
            }
        }
    }
}

/// When every branch of a multi-label external choice starts with the
/// same single send, that common `(peer, label, sort)`.
fn common_leading_send(branches: &[LocalBranch]) -> Option<(Name, Name, Sort)> {
    let mut common: Option<(Name, Name, Sort)> = None;
    for branch in branches {
        let LocalType::Select { peer, branches } = &branch.continuation else {
            return None;
        };
        if branches.len() != 1 {
            return None;
        }
        let lead = (
            peer.clone(),
            branches[0].label.clone(),
            branches[0].sort.clone(),
        );
        match &common {
            None => common = Some(lead),
            Some(seen) if *seen == lead => {}
            Some(_) => return None,
        }
    }
    common
}

/// Builds the hoisted form: the inner select's branches, each wrapped by
/// `rebuild` (which reinstates the crossed outer action inside the
/// branch).
fn hoisted(
    send_peer: &Name,
    inner: &[LocalBranch],
    rebuild: impl Fn(LocalType) -> LocalType,
) -> LocalType {
    LocalType::Select {
        peer: send_peer.clone(),
        branches: inner
            .iter()
            .map(|branch| LocalBranch {
                label: branch.label.clone(),
                sort: branch.sort.clone(),
                continuation: rebuild(branch.continuation.clone()),
            })
            .collect(),
    }
}

/// Distinct send actions occurring anywhere in `body`, in term order.
fn body_sends(body: &LocalType) -> Vec<(Name, Name, Sort)> {
    fn go(term: &LocalType, out: &mut Vec<(Name, Name, Sort)>) {
        match term {
            LocalType::End | LocalType::Var(_) => {}
            LocalType::Rec { body, .. } => go(body, out),
            LocalType::Select { peer, branches } => {
                for branch in branches {
                    let action = (peer.clone(), branch.label.clone(), branch.sort.clone());
                    if !out.contains(&action) {
                        out.push(action);
                    }
                    go(&branch.continuation, out);
                }
            }
            LocalType::Branch { branches, .. } => {
                for branch in branches {
                    go(&branch.continuation, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    go(body, &mut out);
    out
}

/// Distinct receive actions occurring anywhere in `body`, in term order:
/// what one loop anticipation pipelines across (and what a forwarded
/// payload may data-depend on).
fn body_receives(body: &LocalType) -> Vec<(Name, Name, Sort)> {
    fn go(term: &LocalType, out: &mut Vec<(Name, Name, Sort)>) {
        match term {
            LocalType::End | LocalType::Var(_) => {}
            LocalType::Rec { body, .. } => go(body, out),
            LocalType::Branch { peer, branches } => {
                for branch in branches {
                    let action = (peer.clone(), branch.label.clone(), branch.sort.clone());
                    if !out.contains(&action) {
                        out.push(action);
                    }
                    go(&branch.continuation, out);
                }
            }
            LocalType::Select { branches, .. } => {
                for branch in branches {
                    go(&branch.continuation, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    go(body, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use theory::local::parse;

    fn displays(term: &str, allow_anticipate: bool) -> Vec<String> {
        rewrites(&parse(term).unwrap(), allow_anticipate)
            .candidates
            .into_iter()
            .map(|(t, _)| t.to_string())
            .collect()
    }

    #[test]
    fn hoists_send_past_receive() {
        assert_eq!(displays("p?a.q!b.end", false), vec!["q!b.p?a.end"]);
    }

    #[test]
    fn hoists_choice_past_receive_duplicating_it() {
        // The appendix B.2.1 ring-with-choice reordering.
        assert_eq!(
            displays("a?add.+{ c!add.end, c!sub.end }", false),
            vec!["+{c!add.a?add.end, c!sub.a?add.end}"]
        );
    }

    #[test]
    fn hoists_send_past_send_to_other_peer_only() {
        assert_eq!(displays("q!b.p!a.end", false), vec!["p!a.q!b.end"]);
        // Same peer: generating it would only waste a verification call.
        assert!(displays("p!b.p!a.end", false).is_empty());
    }

    #[test]
    fn hoists_common_send_out_of_branches() {
        // Both labels of the external choice lead with the same send, so
        // it no longer waits to learn which label arrives.
        let candidates = displays("&{ p?go.q!ack.end, p?halt.q!ack.end }", false);
        assert!(candidates.contains(&"q!ack.&{p?go.end, p?halt.end}".to_owned()));
    }

    #[test]
    fn differing_branch_sends_are_not_hoisted() {
        // Branches answer with different labels: the send *is* the
        // reaction to the choice and cannot move above it.
        assert!(displays("&{ p?go.q!ack.end, p?halt.q!nack.end }", false).is_empty());
    }

    #[test]
    fn swaps_adjacent_receives_from_different_peers() {
        assert_eq!(displays("p?a.q?b.end", false), vec!["q?b.p?a.end"]);
        // Same peer: per-channel FIFO forbids it.
        assert!(displays("p?a.p?b.end", false).is_empty());
    }

    #[test]
    fn anticipates_each_loop_send_once() {
        let candidates = displays("rec x . s!ready . s?value . t!value . x", true);
        assert!(candidates.contains(&"s!ready.rec x.s!ready.s?value.t!value.x".to_owned()));
        assert!(candidates.contains(&"t!value.rec x.s!ready.s?value.t!value.x".to_owned()));
    }

    #[test]
    fn anticipation_can_be_disabled() {
        assert!(displays("rec x . s!ready . s?value . x", false).is_empty());
    }

    #[test]
    fn rewrites_fire_under_binders_and_in_branches() {
        let candidates = displays("rec x . p?a . q!b . x", true);
        // In-body hoist and loop anticipation both found.
        assert!(candidates.contains(&"rec x.q!b.p?a.x".to_owned()));
        assert!(candidates.contains(&"q!b.rec x.p?a.q!b.x".to_owned()));
    }

    #[test]
    fn receives_are_never_hoisted_past_sends() {
        // Input anticipation before an output deadlocks (paper Example 2);
        // the generator does not even propose it.
        assert!(displays("q!b.p?a.end", false)
            .iter()
            .all(|c| !c.starts_with("p?")));
    }

    #[test]
    fn forwarded_payloads_are_pruned() {
        // `p?v(i32).q!v(i32)` forwards the received value: hoisting the
        // send above the receive would invent its payload.
        let result = rewrites(&parse("p?v(i32).q!v(i32).end").unwrap(), false);
        assert!(result.candidates.is_empty());
        assert_eq!(result.pruned, 1);
        // The unit-sort version carries no data and hoists freely —
        // exactly the ring's token forwarding.
        let unit = rewrites(&parse("p?v.q!v.end").unwrap(), false);
        assert_eq!(unit.candidates.len(), 1);
        assert_eq!(unit.pruned, 0);
        // Different labels with the same sort are independent values.
        let renamed = rewrites(&parse("p?a(i32).q!b(i32).end").unwrap(), false);
        assert_eq!(renamed.candidates.len(), 1);
        assert_eq!(renamed.pruned, 0);
    }

    #[test]
    fn forwarding_loop_anticipation_is_pruned() {
        // Anticipating `q!v(i32)` would send a value the loop has not
        // received yet; the unit-sort `q!ready` anticipation survives.
        // (The in-body hoist of the same forwarded send is pruned too.)
        let result = rewrites(
            &parse("rec x . p?v(i32) . q!v(i32) . q!ready . x").unwrap(),
            true,
        );
        assert_eq!(result.pruned, 2);
        let anticipated: Vec<&str> = result
            .candidates
            .iter()
            .filter_map(|(_, step)| match step {
                Step::Anticipate { label, .. } => Some(label.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(anticipated, ["ready"]);
    }

    #[test]
    fn steps_record_payload_sorts_for_the_cost_model() {
        let result = rewrites(&parse("p?a.q!big(str).end").unwrap(), false);
        let (_, step) = &result.candidates[0];
        match step {
            Step::HoistPastReceive {
                send_sorts,
                receive_sort,
                ..
            } => {
                assert_eq!(send_sorts, &[Sort::Str]);
                assert_eq!(receive_sort, &Sort::Unit);
            }
            other => panic!("expected a receive hoist, got {other}"),
        }
    }
}
