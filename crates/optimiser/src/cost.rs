//! Profile-guided cost model: score AMR candidates by *estimated
//! nanoseconds saved* instead of the crude receives-crossed proxy.
//!
//! The proxy from the original search counts how many receives a send
//! was moved ahead of — every crossing is worth the same. PR 7's
//! pooled-buffer benches showed that is wrong by an order of magnitude:
//! payload size dominates link cost (a 16 KiB `value` costs 10–15× a
//! bare token), so hoisting a bulky send past a cheap `ready` can *lose*
//! throughput even though it crosses a receive. This module prices each
//! rewrite step with measured link costs:
//!
//! * **benefit** — the latency of every receive the send was moved ahead
//!   of no longer blocks the send: `recv_base_ns + ns_per_byte ×
//!   wire_size(receive payload)` per crossed receive;
//! * **penalty** — the hoisted payload occupies the send edge earlier
//!   and for longer: [`OCCUPANCY_FACTOR`]` × ns_per_byte × wire_size(sent
//!   payload)`. Unit-sort sends (bare labels) are free to hoist.
//!
//! A step's estimated saving is benefit − penalty and *can go negative*;
//! a candidate's saving is the sum over its derivation. Candidates are
//! ranked by saving (then by the old crossing score, then fewer states),
//! and [`Optimised::best`](crate::Optimised::best) only reports a winner
//! whose saving is strictly positive — an expensive reordering keeps the
//! projection instead.
//!
//! # Where the numbers come from
//!
//! [`CostModel::from_profile`] reads the machine-readable `edge_costs`
//! section that `fig6 --json --edge-costs` emits into `BENCH_fig6.json`:
//! per link class (in-process SPSC, bounded/pooled, loopback TCP, UDS),
//! a send base cost, a receive base cost and a per-byte transfer cost,
//! each fitted from two payload sizes of the corresponding
//! microbenchmark. [`CostModel::default_table`] is the documented
//! fallback when no profile is supplied: a static table transcribed from
//! the committed artifact's channel rows (SPSC burst ≈ 15 ns/token,
//! 1 KiB burst ≈ 380 ns → ≈ 0.36 ns/byte; pooled ≈ 0.03 ns/byte;
//! loopback sockets in the tens of µs per frame), so the ranking is
//! sensible out of the box and exact with `--costs`.
//!
//! Sends are priced on the edge towards their peer, receives on the edge
//! from theirs; [`CostModel::set_edge`] pins a per-peer override (used by
//! the monotonicity property tests and available to tools that know the
//! deployment topology), otherwise every edge uses the model's default
//! link class — in-process SPSC, the data plane generated code runs on.
//!
//! # Payload wire sizes
//!
//! [`wire_size`] maps a payload [`Sort`] to the byte count the wire
//! layer moves for it, mirroring `rumpsteak::wire`: `unit` 0, `bool` 1,
//! 32-bit ints 4, 64-bit ints and floats 8. Sorts whose size the type
//! alone cannot determine use documented defaults: `str` 1024 (the
//! smaller pooled-bench payload), custom sorts 16384 (the bulky
//! pooled-bench payload — `buffer` in the double-buffering protocol).

use std::collections::BTreeMap;
use std::fmt;

use theory::name::Name;
use theory::sort::Sort;

use crate::rewrite::Step;

/// Fraction of a hoisted payload's transfer cost charged as the
/// occupancy penalty: moving a send earlier makes the link busy sooner,
/// but the transfer itself overlaps with work the reordering unblocks,
/// so only half of it is assumed to land on the critical path.
pub const OCCUPANCY_FACTOR: f64 = 0.5;

/// Assumed wire size of a `str` payload, in bytes (no static bound; the
/// smaller pooled-bench payload is the documented default).
pub const STR_WIRE_SIZE: usize = 1024;

/// Assumed wire size of a custom (application-defined) payload sort, in
/// bytes: the bulky pooled-bench payload, e.g. the double-buffering
/// `buffer`.
pub const CUSTOM_WIRE_SIZE: usize = 16384;

/// Bytes the wire layer moves for a payload of this sort (see the
/// [module docs](self) for the `str`/custom defaults).
pub fn wire_size(sort: &Sort) -> usize {
    match sort {
        Sort::Unit => 0,
        Sort::Bool => 1,
        Sort::I32 | Sort::U32 => 4,
        Sort::I64 | Sort::U64 | Sort::F64 => 8,
        Sort::Str => STR_WIRE_SIZE,
        Sort::Custom(_) => CUSTOM_WIRE_SIZE,
    }
}

/// Measured (or defaulted) cost of moving one message over one edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeCost {
    /// Fixed cost of the send side of one message, in ns.
    pub send_base_ns: f64,
    /// Fixed cost of the receive side of one message, in ns.
    pub recv_base_ns: f64,
    /// Marginal cost per payload byte, in ns.
    pub ns_per_byte: f64,
}

impl EdgeCost {
    /// Cost of receiving one message with a `bytes`-byte payload: the
    /// latency a send stops paying for each receive it is hoisted past.
    pub fn receive_ns(&self, bytes: usize) -> f64 {
        self.recv_base_ns + self.ns_per_byte * bytes as f64
    }

    /// Occupancy penalty of hoisting a `bytes`-byte payload onto this
    /// edge earlier than the projection would.
    pub fn occupancy_ns(&self, bytes: usize) -> f64 {
        OCCUPANCY_FACTOR * self.ns_per_byte * bytes as f64
    }
}

/// Where a [`CostModel`]'s numbers came from, recorded in reports so a
/// reader can tell a measured ranking from the static fallback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostSource {
    /// The documented static table (no profile supplied).
    DefaultTable,
    /// An `edge_costs` section measured by `fig6 --json --edge-costs`.
    Measured,
}

impl fmt::Display for CostSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostSource::DefaultTable => f.write_str("default-table"),
            CostSource::Measured => f.write_str("measured"),
        }
    }
}

/// Errors loading a measured profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CostError {
    /// The profile is not well-formed JSON.
    Json(String),
    /// The profile has no `edge_costs` section (run
    /// `fig6 --json --edge-costs` to produce one).
    MissingSection,
    /// The `edge_costs` section is malformed.
    Malformed(String),
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::Json(error) => write!(f, "profile is not valid JSON: {error}"),
            CostError::MissingSection => f.write_str(
                "profile has no `edge_costs` section; regenerate it with \
                 `fig6 --json --edge-costs`",
            ),
            CostError::Malformed(what) => write!(f, "malformed `edge_costs` section: {what}"),
        }
    }
}

impl std::error::Error for CostError {}

/// The per-edge cost table driving estimated-ns-saved scoring.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Cost per link class, keyed by class name (`spsc`, `bounded`,
    /// `tcp`, `uds`).
    classes: BTreeMap<String, EdgeCost>,
    /// The class priced for edges without an override: the in-process
    /// SPSC ring, the data plane generated code runs on.
    default_class: String,
    /// Per-peer overrides for tools that know the topology.
    overrides: BTreeMap<Name, EdgeCost>,
    source: CostSource,
}

impl CostModel {
    /// The documented static fallback, transcribed from the committed
    /// `BENCH_fig6.json` channel and transport rows (see module docs).
    pub fn default_table() -> Self {
        let mut classes = BTreeMap::new();
        // channel_spsc_burst ≈ 14.5 ns/token; channel_spsc_burst_1k
        // ≈ 379 ns → slope ≈ (379 − 14.5) / 1024 ≈ 0.36 ns/byte.
        classes.insert(
            "spsc".to_owned(),
            EdgeCost {
                send_base_ns: 15.0,
                recv_base_ns: 15.0,
                ns_per_byte: 0.36,
            },
        );
        // channel_spsc_burst_1k_pooled ≈ 86 ns, 16k_pooled ≈ 506 ns →
        // slope ≈ (506 − 86) / 15360 ≈ 0.03 ns/byte.
        classes.insert(
            "bounded".to_owned(),
            EdgeCost {
                send_base_ns: 12.0,
                recv_base_ns: 12.0,
                ns_per_byte: 0.03,
            },
        );
        // transport_tcp_pingpong ≈ 60–120 µs per round trip: tens of µs
        // per framed one-way hop, split evenly between the two sides.
        classes.insert(
            "tcp".to_owned(),
            EdgeCost {
                send_base_ns: 15000.0,
                recv_base_ns: 15000.0,
                ns_per_byte: 1.0,
            },
        );
        classes.insert(
            "uds".to_owned(),
            EdgeCost {
                send_base_ns: 12000.0,
                recv_base_ns: 12000.0,
                ns_per_byte: 1.0,
            },
        );
        CostModel {
            classes,
            default_class: "spsc".to_owned(),
            overrides: BTreeMap::new(),
            source: CostSource::DefaultTable,
        }
    }

    /// Loads the `edge_costs` section of a `fig6 --json --edge-costs`
    /// artifact (`BENCH_fig6.json`). Classes present in the profile
    /// replace the default table's entries; the rest keep their
    /// documented fallbacks, so a partial profile still ranks sensibly.
    pub fn from_profile(json: &str) -> Result<Self, CostError> {
        let value = json::parse(json).map_err(CostError::Json)?;
        let section = value
            .get("edge_costs")
            .ok_or(CostError::MissingSection)?
            .get("classes")
            .ok_or_else(|| CostError::Malformed("no `classes` array".into()))?;
        let classes = section
            .as_array()
            .ok_or_else(|| CostError::Malformed("`classes` is not an array".into()))?;
        let mut model = CostModel::default_table();
        model.source = CostSource::Measured;
        let mut parsed = 0usize;
        for class in classes {
            let name = class
                .get("class")
                .and_then(json::Value::as_str)
                .ok_or_else(|| CostError::Malformed("class entry without a name".into()))?;
            let field = |key: &str| {
                class.get(key).and_then(json::Value::as_f64).ok_or_else(|| {
                    CostError::Malformed(format!("class `{name}` missing numeric `{key}`"))
                })
            };
            let cost = EdgeCost {
                send_base_ns: field("send_base_ns")?,
                recv_base_ns: field("recv_base_ns")?,
                ns_per_byte: field("ns_per_byte")?,
            };
            if !(cost.send_base_ns >= 0.0 && cost.recv_base_ns >= 0.0 && cost.ns_per_byte >= 0.0) {
                return Err(CostError::Malformed(format!(
                    "class `{name}` has a negative or non-finite cost"
                )));
            }
            model.classes.insert(name.to_owned(), cost);
            parsed += 1;
        }
        if parsed == 0 {
            return Err(CostError::Malformed("`classes` array is empty".into()));
        }
        Ok(model)
    }

    /// Where this model's numbers came from.
    pub fn source(&self) -> CostSource {
        self.source
    }

    /// The cost table of one link class, if present.
    pub fn class(&self, name: &str) -> Option<&EdgeCost> {
        self.classes.get(name)
    }

    /// Pins the cost of every edge to/from `peer`, overriding the
    /// default link class for that peer.
    pub fn set_edge(&mut self, peer: impl Into<Name>, cost: EdgeCost) {
        self.overrides.insert(peer.into(), cost);
    }

    /// The cost of the edge shared with `peer`: its override if pinned,
    /// else the model's default link class.
    pub fn edge(&self, peer: &Name) -> &EdgeCost {
        self.overrides.get(peer).unwrap_or_else(|| {
            self.classes
                .get(&self.default_class)
                .expect("default class always present")
        })
    }

    /// Estimated nanoseconds one rewrite step saves (negative when the
    /// occupancy penalty outweighs the crossing benefit).
    ///
    /// * hoists past a receive stop paying that receive's latency but
    ///   occupy the send edge earlier;
    /// * hoisting out of external-choice branches conservatively banks
    ///   the *cheapest* crossed branch's latency;
    /// * an anticipation crosses one whole loop iteration: every receive
    ///   in the loop body, against the occupancy of its own payload;
    /// * send-past-send and receive-receive swaps are enabling-only.
    pub fn step_saving_ns(&self, step: &Step) -> f64 {
        match step {
            Step::HoistPastReceive {
                send_peer,
                receive_peer,
                send_sorts,
                receive_sort,
            } => {
                let benefit = self.edge(receive_peer).receive_ns(wire_size(receive_sort));
                benefit - self.edge(send_peer).occupancy_ns(max_size(send_sorts))
            }
            Step::HoistFromBranches {
                send_peer,
                receive_peer,
                sort,
                receive_sorts,
                ..
            } => {
                let crossed = self.edge(receive_peer);
                let benefit = receive_sorts
                    .iter()
                    .map(|s| crossed.receive_ns(wire_size(s)))
                    .fold(f64::INFINITY, f64::min);
                let benefit = if benefit.is_finite() { benefit } else { 0.0 };
                benefit - self.edge(send_peer).occupancy_ns(wire_size(sort))
            }
            Step::Anticipate {
                peer,
                sort,
                crossed_receives,
                ..
            } => {
                let benefit: f64 = crossed_receives
                    .iter()
                    .map(|(from, s)| self.edge(from).receive_ns(wire_size(s)))
                    .sum();
                benefit - self.edge(peer).occupancy_ns(wire_size(sort))
            }
            Step::HoistPastSend { .. } | Step::SwapReceives { .. } => 0.0,
        }
    }

    /// Estimated nanoseconds a whole derivation saves: the sum of its
    /// steps' savings.
    pub fn saving_ns(&self, derivation: &[Step]) -> f64 {
        derivation.iter().map(|s| self.step_saving_ns(s)).sum()
    }
}

/// Largest wire size among a choice's branch payloads (the conservative
/// occupancy estimate for hoisting the whole choice).
fn max_size(sorts: &[Sort]) -> usize {
    sorts.iter().map(wire_size).max().unwrap_or(0)
}

/// A minimal hand-rolled JSON reader, just enough to pull the
/// `edge_costs` section out of `BENCH_fig6.json` — the workspace has no
/// serde, and the bench artifacts are hand-written JSON too.
mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        /// Member lookup on objects; `None` elsewhere.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(members) => members.get(key),
                _ => None,
            }
        }

        /// The elements of an array; `None` elsewhere.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The number as `f64`; `None` elsewhere.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The string contents; `None` elsewhere.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }
    }

    /// Parses one JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing input at byte {}", parser.pos));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, byte: u8) -> Result<(), String> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", byte as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(format!("unexpected input at byte {}", self.pos)),
            }
        }

        fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                Ok(value)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while matches!(
                self.peek(),
                Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            ) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .filter(|n| n.is_finite())
                .map(Value::Number)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = Vec::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return String::from_utf8(out)
                            .map_err(|_| "invalid UTF-8 in string escape".into());
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(c @ (b'"' | b'\\' | b'/')) => out.push(c),
                            Some(b'n') => out.push(b'\n'),
                            Some(b't') => out.push(b'\t'),
                            Some(b'r') => out.push(b'\r'),
                            Some(b'b') => out.push(0x08),
                            Some(b'f') => out.push(0x0c),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| "invalid \\u escape".to_owned())?;
                                // Surrogate pairs are absent from our
                                // artifacts; reject rather than mangle.
                                let c = char::from_u32(hex)
                                    .ok_or_else(|| "unpaired surrogate in \\u escape".to_owned())?;
                                let mut buf = [0u8; 4];
                                out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                                self.pos += 4;
                            }
                            _ => return Err("invalid escape".into()),
                        }
                        self.pos += 1;
                    }
                    Some(c) => {
                        out.push(c);
                        self.pos += 1;
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut members = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(members));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                members.insert(key, value);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROFILE: &str = r#"{
      "bench": "fig6",
      "results": [],
      "edge_costs": {
        "unit": "ns",
        "classes": [
          {"class": "spsc", "send_base_ns": 20.0, "recv_base_ns": 30.0, "ns_per_byte": 0.5},
          {"class": "tcp", "send_base_ns": 40000, "recv_base_ns": 41000, "ns_per_byte": 2.5}
        ]
      }
    }"#;

    #[test]
    fn profile_overrides_default_classes() {
        let model = CostModel::from_profile(PROFILE).unwrap();
        assert_eq!(model.source(), CostSource::Measured);
        assert_eq!(model.class("spsc").unwrap().recv_base_ns, 30.0);
        assert_eq!(model.class("tcp").unwrap().ns_per_byte, 2.5);
        // Classes absent from the profile keep the documented fallback.
        assert_eq!(
            model.class("bounded"),
            CostModel::default_table().class("bounded")
        );
    }

    #[test]
    fn missing_section_is_a_distinct_error() {
        assert_eq!(
            CostModel::from_profile(r#"{"results": []}"#),
            Err(CostError::MissingSection)
        );
        assert!(matches!(
            CostModel::from_profile("not json"),
            Err(CostError::Json(_))
        ));
        assert!(matches!(
            CostModel::from_profile(r#"{"edge_costs": {"classes": []}}"#),
            Err(CostError::Malformed(_))
        ));
    }

    #[test]
    fn wire_sizes_follow_the_wire_layer() {
        assert_eq!(wire_size(&Sort::Unit), 0);
        assert_eq!(wire_size(&Sort::Bool), 1);
        assert_eq!(wire_size(&Sort::I32), 4);
        assert_eq!(wire_size(&Sort::U64), 8);
        assert_eq!(wire_size(&Sort::Str), STR_WIRE_SIZE);
        assert_eq!(wire_size(&Sort::Custom("buffer".into())), CUSTOM_WIRE_SIZE);
    }

    #[test]
    fn bulky_hoists_are_penalised() {
        let model = CostModel::default_table();
        let cheap = Step::HoistPastReceive {
            send_peer: "q".into(),
            receive_peer: "p".into(),
            send_sorts: vec![Sort::I32],
            receive_sort: Sort::Unit,
        };
        let bulky = Step::HoistPastReceive {
            send_peer: "q".into(),
            receive_peer: "p".into(),
            send_sorts: vec![Sort::Str],
            receive_sort: Sort::Unit,
        };
        assert!(model.step_saving_ns(&cheap) > model.step_saving_ns(&bulky));
        // The bulky hoist's occupancy outweighs crossing a bare token.
        assert!(model.step_saving_ns(&bulky) < 0.0);
    }

    #[test]
    fn per_peer_override_changes_only_that_edge() {
        let mut model = CostModel::default_table();
        let base = model.step_saving_ns(&Step::HoistPastReceive {
            send_peer: "q".into(),
            receive_peer: "p".into(),
            send_sorts: vec![Sort::I32],
            receive_sort: Sort::Unit,
        });
        model.set_edge(
            "q",
            EdgeCost {
                send_base_ns: 15.0,
                recv_base_ns: 15.0,
                ns_per_byte: 100.0,
            },
        );
        let inflated = model.step_saving_ns(&Step::HoistPastReceive {
            send_peer: "q".into(),
            receive_peer: "p".into(),
            send_sorts: vec![Sort::I32],
            receive_sort: Sort::Unit,
        });
        assert!(inflated < base);
        // An edge not involving `q` is untouched.
        let other = Step::HoistPastReceive {
            send_peer: "r".into(),
            receive_peer: "p".into(),
            send_sorts: vec![Sort::I32],
            receive_sort: Sort::Unit,
        };
        assert_eq!(
            model.step_saving_ns(&other),
            CostModel::default_table().step_saving_ns(&other)
        );
    }
}
