//! Automatic asynchronous message reordering (AMR) — the paper's core
//! contribution, as a subsystem: take any projected local type (or FSM)
//! and *derive* optimised variants automatically instead of writing them
//! by hand.
//!
//! The pipeline (§2–§3, Fig 1b):
//!
//! 1. **generate** — close the projection under the send-hoisting
//!    rewrites of [`rewrite`] (commute a send past preceding receives
//!    from other roles, and anticipate loop sends across `rec`
//!    unfoldings up to a configurable depth), breadth-first with
//!    deduplication and budget caps;
//! 2. **verify** — validate every candidate against the projection with
//!    the sound asynchronous subtyping algorithm
//!    (`subtyping::check_candidates`), so only provably safe
//!    reorderings survive;
//! 3. **score** — rank the verified candidates: with a [`cost`] model in
//!    the [`Config`], by *estimated nanoseconds saved* (each crossed
//!    receive weighted by measured edge cost and payload wire size,
//!    minus the occupancy of hoisting the payload earlier); without one,
//!    by the receives-crossed proxy (sends made non-blocking / pipeline
//!    depth unlocked) — both tie-breaking towards smaller machines;
//! 4. **report** — return the best verified subtype plus a
//!    machine-readable [`Report`] of the whole search.
//!
//! Candidates whose hoisted payload data-depends on a crossed receive
//! (the forwarding shape `p?value(S)…q!value(S)`) are pruned during
//! generation — protocol-sound but unimplementable without inventing
//! the payload; see [`rewrite`]. The report counts them.
//!
//! ```
//! use optimiser::{optimise, Config};
//! use theory::local;
//!
//! // The projected double-buffering kernel Mk (paper Fig 4a)...
//! let projected = local::parse("rec x . s!ready . s?value . t?ready . t!value . x").unwrap();
//! let outcome = optimise(&"k".into(), &projected, &Config::with_depth(1)).unwrap();
//! // ...contains the hand-derived optimised kernel M'k (Fig 4b) among
//! // its verified candidates, each a proven subtype of the projection.
//! let fig4b = local::parse("s!ready . rec x . s!ready . s?value . t?ready . t!value . x").unwrap();
//! assert!(outcome.candidates.iter().any(|c| c.local == fig4b));
//! assert!(outcome.best().is_some());
//! ```

pub mod cost;
pub mod rewrite;

use std::collections::HashSet;
use std::fmt::Write as _;

use theory::fsm::{self, Fsm, FsmError};
use theory::local::LocalType;
use theory::name::Name;

pub use cost::CostModel;
pub use rewrite::Step;

/// Search budgets for the candidate generation and verification.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum loop anticipations per candidate — how many `rec`
    /// unfoldings a send may be hoisted across (the pipeline depth, the
    /// CLI's `--bound`).
    pub unfold_depth: usize,
    /// Maximum rewrite steps per candidate derivation.
    pub max_steps: usize,
    /// Maximum number of candidates generated before the search stops
    /// (the report records whether this cap was hit).
    pub max_candidates: usize,
    /// Recursion-unrolling bound handed to the subtype checker; deeper
    /// anticipation needs a larger bound.
    pub bound: usize,
    /// Cost model for estimated-ns-saved ranking. `None` keeps the
    /// receives-crossed proxy (and its exact legacy tie-breaking); the
    /// CLI always supplies a model — measured with `--costs`, the
    /// documented [`cost::CostModel::default_table`] otherwise.
    pub cost: Option<CostModel>,
}

impl Config {
    /// Budgets for an optimisation of pipeline depth `depth`: up to
    /// `depth` anticipations per loop, enough rewrite steps to move a
    /// send across a handful of actions, and a subtype bound with slack
    /// to discharge the deepest anticipation.
    pub fn with_depth(depth: usize) -> Self {
        Config {
            unfold_depth: depth,
            max_steps: depth.max(4),
            max_candidates: 512,
            bound: depth + 4,
            cost: None,
        }
    }

    /// Ranks candidates with `model` instead of the crossing proxy.
    pub fn with_cost(mut self, model: CostModel) -> Self {
        self.cost = Some(model);
        self
    }
}

impl Default for Config {
    /// The CLI default: single anticipation (double buffering).
    fn default() -> Self {
        Config::with_depth(1)
    }
}

/// One verified reordering of the projection.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The reordered local type.
    pub local: LocalType,
    /// Its FSM (what emission and k-MC consume).
    pub fsm: Fsm,
    /// The rewrite steps that produced it, in application order.
    pub derivation: Vec<Step>,
    /// Σ of step scores: receives that sends were moved ahead of.
    pub score: usize,
    /// Estimated nanoseconds the reordering saves under the configured
    /// cost model; `None` when the search ran without one. Can be
    /// negative — an occupancy penalty outweighing the crossing benefit.
    pub estimated_saving_ns: Option<f64>,
    /// Statistics of the subtype check that verified it.
    pub stats: subtyping::CheckStats,
}

/// The outcome of one optimisation run for a single role.
#[derive(Clone, Debug)]
pub struct Optimised {
    /// The role the projection belongs to.
    pub role: Name,
    /// The input projection.
    pub projection: LocalType,
    /// The projection's FSM (the supertype every candidate was checked
    /// against).
    pub projection_fsm: Fsm,
    /// Candidates generated (before verification).
    pub generated: usize,
    /// Rewrite applications dropped by data-dependence pruning.
    pub pruned: usize,
    /// Verified candidates, best first (estimated saving desc under a
    /// cost model, else score desc; then score desc, fewer states,
    /// generation order).
    pub candidates: Vec<Candidate>,
    /// True when generation stopped at [`Config::max_candidates`].
    pub truncated: bool,
    /// The subtype bound the candidates were verified with.
    pub bound: usize,
    /// Where the ranking's cost numbers came from (`None` without a
    /// cost model).
    pub cost_source: Option<cost::CostSource>,
}

impl Optimised {
    /// The best verified candidate that strictly improves on the
    /// projection, if any: positive estimated saving under a cost
    /// model, positive crossing score otherwise.
    pub fn best(&self) -> Option<&Candidate> {
        self.candidates
            .first()
            .filter(|c| match c.estimated_saving_ns {
                Some(saving) => saving > 0.0,
                None => c.score > 0,
            })
    }

    /// The local type to emit: the best improving candidate, or the
    /// projection unchanged.
    pub fn best_local(&self) -> &LocalType {
        self.best().map_or(&self.projection, |c| &c.local)
    }

    /// The FSM matching [`best_local`](Self::best_local).
    pub fn best_fsm(&self) -> &Fsm {
        self.best().map_or(&self.projection_fsm, |c| &c.fsm)
    }

    /// Condenses the run into the machine-readable [`Report`].
    pub fn report(&self) -> Report {
        Report {
            role: self.role.clone(),
            projection: self.projection.to_string(),
            generated: self.generated,
            pruned: self.pruned,
            verified: self.candidates.len(),
            truncated: self.truncated,
            bound: self.bound,
            cost_source: self.cost_source.map(|s| s.to_string()),
            best: self.best().map(|c| BestCandidate {
                local: c.local.to_string(),
                score: c.score,
                states: c.fsm.len(),
                derivation: c.derivation.iter().map(Step::to_string).collect(),
                visited_pairs: c.stats.visited_pairs,
                estimated_saving_ns: c.estimated_saving_ns,
            }),
            candidates: self
                .candidates
                .iter()
                .map(|c| CandidateSummary {
                    local: c.local.to_string(),
                    score: c.score,
                    states: c.fsm.len(),
                    visited_pairs: c.stats.visited_pairs,
                    estimated_saving_ns: c.estimated_saving_ns,
                })
                .collect(),
        }
    }
}

/// Machine-readable summary of one role's optimisation run.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// The optimised role.
    pub role: Name,
    /// Textual form of the input projection.
    pub projection: String,
    /// Candidates generated.
    pub generated: usize,
    /// Rewrite applications dropped by data-dependence pruning.
    pub pruned: usize,
    /// Candidates that passed the subtype check.
    pub verified: usize,
    /// Whether generation hit the candidate cap.
    pub truncated: bool,
    /// Subtype bound used for verification.
    pub bound: usize,
    /// `"measured"` or `"default-table"` when a cost model ranked the
    /// candidates; `None` under the receives-crossed proxy.
    pub cost_source: Option<String>,
    /// The winning candidate; `None` when no verified candidate improves
    /// on the projection, in which case the projection is kept.
    pub best: Option<BestCandidate>,
    /// Every verified candidate, in rank order.
    pub candidates: Vec<CandidateSummary>,
}

/// The winning candidate inside a [`Report`].
#[derive(Clone, Debug, PartialEq)]
pub struct BestCandidate {
    /// Textual form of the reordered local type.
    pub local: String,
    /// Receives that sends were moved ahead of.
    pub score: usize,
    /// FSM state count.
    pub states: usize,
    /// Human-readable rewrite steps, in application order.
    pub derivation: Vec<String>,
    /// State-pair visits of the verifying subtype check.
    pub visited_pairs: usize,
    /// Estimated nanoseconds saved under the configured cost model.
    pub estimated_saving_ns: Option<f64>,
}

/// One verified candidate inside a [`Report`], in rank order.
#[derive(Clone, Debug, PartialEq)]
pub struct CandidateSummary {
    /// Textual form of the reordered local type.
    pub local: String,
    /// Receives that sends were moved ahead of.
    pub score: usize,
    /// FSM state count.
    pub states: usize,
    /// State-pair visits of the verifying subtype check.
    pub visited_pairs: usize,
    /// Estimated nanoseconds saved under the configured cost model.
    pub estimated_saving_ns: Option<f64>,
}

impl Report {
    /// Whether the role's type changed.
    pub fn improved(&self) -> bool {
        self.best.is_some()
    }

    /// Renders the report as one JSON object (the same shape for every
    /// role, so reports concatenate into a JSON array naturally).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"role\": {}, \"projection\": {}, \"generated\": {}, \"pruned\": {}, \
             \"verified\": {}, \"truncated\": {}, \"bound\": {}, \"cost_source\": {}, \
             \"improved\": {}, \"best\": ",
            json_string(self.role.as_str()),
            json_string(&self.projection),
            self.generated,
            self.pruned,
            self.verified,
            self.truncated,
            self.bound,
            match &self.cost_source {
                Some(source) => json_string(source),
                None => "null".to_owned(),
            },
            self.improved(),
        );
        match &self.best {
            None => out.push_str("null"),
            Some(best) => {
                let derivation: Vec<String> =
                    best.derivation.iter().map(|s| json_string(s)).collect();
                let _ = write!(
                    out,
                    "{{\"local\": {}, \"score\": {}, \"states\": {}, \"visited_pairs\": {}, \
                     \"estimated_saving_ns\": {}, \"derivation\": [{}]}}",
                    json_string(&best.local),
                    best.score,
                    best.states,
                    best.visited_pairs,
                    json_f64(best.estimated_saving_ns),
                    derivation.join(", "),
                );
            }
        }
        out.push_str(", \"candidates\": [");
        for (index, candidate) in self.candidates.iter().enumerate() {
            if index > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"local\": {}, \"score\": {}, \"states\": {}, \"visited_pairs\": {}, \
                 \"estimated_saving_ns\": {}}}",
                json_string(&candidate.local),
                candidate.score,
                candidate.states,
                candidate.visited_pairs,
                json_f64(candidate.estimated_saving_ns),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Renders an optional estimated saving: one decimal, `null` when the
/// search ran without a cost model.
fn json_f64(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.1}"),
        None => "null".to_owned(),
    }
}

fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Derives verified AMR reorderings of `projection` for `role`.
///
/// Errors only when the projection itself is not FSM-convertible
/// (unguarded or unbound recursion); candidates that fail conversion are
/// silently dropped, and candidates that fail verification are counted
/// but not returned.
pub fn optimise(
    role: &Name,
    projection: &LocalType,
    config: &Config,
) -> Result<Optimised, FsmError> {
    let projection_fsm = fsm::from_local(role, projection)?;

    // ---- generate: breadth-first closure under the rewrites ----------
    let mut seen: HashSet<String> = HashSet::new();
    seen.insert(projection.to_string());
    let mut generated: Vec<(LocalType, Vec<Step>)> = Vec::new();
    let mut frontier: Vec<(LocalType, Vec<Step>)> = vec![(projection.clone(), Vec::new())];
    let mut truncated = false;
    let mut pruned = 0usize;
    'search: while !frontier.is_empty() {
        let mut next = Vec::new();
        for (term, derivation) in &frontier {
            if derivation.len() >= config.max_steps {
                continue;
            }
            let anticipations = derivation
                .iter()
                .filter(|s| matches!(s, Step::Anticipate { .. }))
                .count();
            let rewrites = rewrite::rewrites(term, anticipations < config.unfold_depth);
            pruned += rewrites.pruned;
            for (candidate, step) in rewrites.candidates {
                if !seen.insert(candidate.to_string()) {
                    continue;
                }
                let mut derivation = derivation.clone();
                derivation.push(step);
                generated.push((candidate.clone(), derivation.clone()));
                if generated.len() >= config.max_candidates {
                    truncated = true;
                    break 'search;
                }
                next.push((candidate, derivation));
            }
        }
        frontier = next;
    }

    // ---- verify: every candidate against the projection --------------
    let mut convertible = Vec::with_capacity(generated.len());
    for (local, derivation) in generated.iter() {
        // A rewrite cannot unguard recursion (no action is ever
        // removed), but stay defensive: drop inconvertible candidates.
        if let Ok(machine) = fsm::from_local(role, local) {
            convertible.push((local, derivation, machine));
        }
    }
    let stats = subtyping::check_candidates(
        convertible.iter().map(|(_, _, machine)| machine),
        &projection_fsm,
        config.bound,
    );
    let mut candidates: Vec<Candidate> = convertible
        .into_iter()
        .zip(stats)
        .filter(|(_, stats)| stats.verdict)
        .map(|((local, derivation, machine), stats)| Candidate {
            local: local.clone(),
            fsm: machine,
            score: derivation.iter().map(Step::score).sum(),
            estimated_saving_ns: config
                .cost
                .as_ref()
                .map(|model| model.saving_ns(derivation)),
            derivation: derivation.clone(),
            stats,
        })
        .collect();

    // ---- score: best first, stably --------------------------------
    // (both sorts are stable, so equal keys keep generation order:
    // earlier-generated candidates win ties.)
    match &config.cost {
        // Receives-crossed proxy: the legacy ranking, bit-for-bit.
        None => candidates.sort_by_key(|c| (std::cmp::Reverse(c.score), c.fsm.len())),
        // Estimated ns saved, tie-broken by the proxy then by machine
        // size — a cheap reordering outranks a bulky one even when they
        // cross the same number of receives.
        Some(_) => candidates.sort_by(|a, b| {
            let (a_ns, b_ns) = (
                a.estimated_saving_ns.unwrap_or(0.0),
                b.estimated_saving_ns.unwrap_or(0.0),
            );
            b_ns.total_cmp(&a_ns)
                .then(b.score.cmp(&a.score))
                .then(a.fsm.len().cmp(&b.fsm.len()))
        }),
    }

    Ok(Optimised {
        role: role.clone(),
        projection: projection.clone(),
        projection_fsm,
        generated: generated.len(),
        pruned,
        candidates,
        truncated,
        bound: config.bound,
        cost_source: config.cost.as_ref().map(CostModel::source),
    })
}

/// [`optimise`] for a projection already in FSM form (e.g. a type
/// serialised back out of the runtime, the bottom-up workflow of
/// Fig 1b).
pub fn optimise_fsm(projection: &Fsm, config: &Config) -> Result<Optimised, FsmError> {
    let local = fsm::to_local(projection)?;
    optimise(&projection.role, &local, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use theory::local::parse;

    fn run(projection: &str, depth: usize) -> Optimised {
        optimise(
            &"self".into(),
            &parse(projection).unwrap(),
            &Config::with_depth(depth),
        )
        .unwrap()
    }

    #[test]
    fn every_candidate_is_a_verified_subtype() {
        let outcome = run("rec x . s!ready . s?value . t?ready . t!value . x", 2);
        assert!(outcome.generated > outcome.candidates.len());
        for candidate in &outcome.candidates {
            assert!(candidate.stats.verdict);
            assert!(subtyping::is_subtype(
                &candidate.fsm,
                &outcome.projection_fsm,
                outcome.bound
            ));
        }
    }

    #[test]
    fn double_buffering_kernel_fig4b_is_derived() {
        let outcome = run("rec x . s!ready . s?value . t?ready . t!value . x", 1);
        let fig4b = parse("s!ready . rec x . s!ready . s?value . t?ready . t!value . x").unwrap();
        assert!(outcome.candidates.iter().any(|c| c.local == fig4b));
        // The winner strictly improves and is itself verified.
        let best = outcome.best().expect("kernel admits an optimisation");
        assert!(best.score >= 1);
    }

    #[test]
    fn ring_participant_best_is_the_swapped_loop() {
        // Fig 7 ring at unfold depth 0 (pure reordering, the paper's
        // variant): receive-then-send becomes send-then-receive.
        let outcome = run("rec x . p?v . q!v . x", 0);
        assert_eq!(
            outcome.best().expect("ring optimises").local,
            parse("rec x . q!v . p?v . x").unwrap()
        );
    }

    #[test]
    fn deeper_unfolds_pipeline_the_ring_further() {
        // With an unfold budget the search composes the swap with loop
        // anticipation: two values in flight instead of one. The paper's
        // depth-0 form is still among the verified candidates.
        let outcome = run("rec x . p?v . q!v . x", 1);
        let swapped = parse("rec x . q!v . p?v . x").unwrap();
        assert!(outcome.candidates.iter().any(|c| c.local == swapped));
        assert!(outcome.best().expect("ring optimises").score >= 2);
    }

    #[test]
    fn already_optimal_types_are_kept() {
        let outcome = run("rec x . q!v . p?v . x", 0);
        assert!(outcome.best().is_none());
        assert_eq!(
            outcome.best_local(),
            &parse("rec x . q!v . p?v . x").unwrap()
        );
        assert!(!outcome.report().improved());
    }

    #[test]
    fn terminating_loops_reject_unbalanced_anticipation() {
        // With an exit branch, prepending a `ready` owes the peer one
        // send too many; every anticipated candidate must be rejected.
        let outcome = run("rec x . q!ready . &{ q?value . x, q?stop . end }", 3);
        assert!(outcome.best().is_none());
        for candidate in &outcome.candidates {
            assert!(
                !candidate
                    .derivation
                    .iter()
                    .any(|s| matches!(s, Step::Anticipate { .. })),
                "unsound anticipation slipped through: {}",
                candidate.local
            );
        }
    }

    #[test]
    fn choice_hoist_crosses_the_guarding_receive() {
        // The k-buffering source: the value/stop decision moves above the
        // ready receive, so the source streams without blocking.
        let outcome = run("rec l . q?ready . +{ q!value . l, q!stop . end }", 1);
        assert_eq!(
            outcome.best().expect("source optimises").local,
            parse("rec l . +{ q!value . q?ready . l, q!stop . q?ready . end }").unwrap()
        );
    }

    #[test]
    fn unfold_depth_caps_anticipation() {
        let projection = "rec x . t?ready . t!value . x";
        for depth in 1..=3 {
            let outcome = run(projection, depth);
            let deepest = outcome
                .candidates
                .iter()
                .map(|c| {
                    c.derivation
                        .iter()
                        .filter(|s| matches!(s, Step::Anticipate { .. }))
                        .count()
                })
                .max()
                .unwrap_or(0);
            assert_eq!(deepest, depth, "depth {depth}");
        }
    }

    #[test]
    fn optimise_fsm_round_trips() {
        let projection = parse("rec x . p?v . q!v . x").unwrap();
        let machine = fsm::from_local(&"r".into(), &projection).unwrap();
        let outcome = optimise_fsm(&machine, &Config::with_depth(0)).unwrap();
        // `to_local` renames recursion variables, so compare machines.
        assert_eq!(
            fsm::from_local(&"r".into(), &outcome.best().expect("optimises").local).unwrap(),
            fsm::from_local(&"r".into(), &parse("rec x . q!v . p?v . x").unwrap()).unwrap()
        );
    }

    /// Rank of the candidate whose textual form is `local`.
    fn position(outcome: &Optimised, local: &str) -> usize {
        outcome
            .candidates
            .iter()
            .position(|c| c.local.to_string() == local)
            .unwrap_or_else(|| panic!("candidate `{local}` not among the verified"))
    }

    #[test]
    fn cost_model_ranks_cheap_payload_hoists_above_bulky_ones() {
        // Two hoists, each crossing exactly one receive: the proxy ranks
        // them equal (generation order decides — the bulky one is at the
        // root, so it is generated first), the cost model penalises the
        // 1 KiB payload's occupancy and flips them.
        let projection = parse("p?a.q!big(str).p?b.q!tiny(i32).end").unwrap();
        let bulky = "q!big(str).p?a.p?b.q!tiny(i32).end";
        let cheap = "p?a.q!big(str).q!tiny(i32).p?b.end";

        let proxy = optimise(&"self".into(), &projection, &Config::with_depth(0)).unwrap();
        assert!(position(&proxy, bulky) < position(&proxy, cheap));

        let config = Config::with_depth(0).with_cost(CostModel::default_table());
        let priced = optimise(&"self".into(), &projection, &config).unwrap();
        assert!(position(&priced, cheap) < position(&priced, bulky));
        let best = priced.best().expect("the cheap hoist is a net win");
        assert!(best.estimated_saving_ns.unwrap() > 0.0);
    }

    #[test]
    fn negative_saving_keeps_the_projection() {
        // Crossing one bare token cannot pay for hoisting a 1 KiB
        // payload: every candidate's saving is negative, so the
        // projection is kept even though the proxy finds a "win".
        let projection = parse("p?a.q!big(str).end").unwrap();
        let config = Config::with_depth(0).with_cost(CostModel::default_table());
        let outcome = optimise(&"self".into(), &projection, &config).unwrap();
        assert!(outcome.candidates[0].estimated_saving_ns.unwrap() < 0.0);
        assert!(outcome.best().is_none());
        assert_eq!(outcome.best_local(), &projection);
        let proxy = optimise(&"self".into(), &projection, &Config::with_depth(0)).unwrap();
        assert!(proxy.best().is_some(), "the proxy would have taken it");
    }

    #[test]
    fn forwarding_candidates_are_pruned_and_counted() {
        let outcome = run("rec x . p?v(i32) . q!v(i32) . x", 1);
        assert!(outcome.pruned > 0);
        assert!(outcome
            .candidates
            .iter()
            .all(|c| c.derivation.iter().all(|s| s.score() == 0)));
        assert!(outcome.report().to_json().contains("\"pruned\": "));
    }

    #[test]
    fn report_json_carries_cost_fields() {
        let projection = parse("rec x . p?v . q!v . x").unwrap();
        let config = Config::with_depth(0).with_cost(CostModel::default_table());
        let outcome = optimise(&"self".into(), &projection, &config).unwrap();
        let json = outcome.report().to_json();
        assert!(json.contains("\"cost_source\": \"default-table\""));
        assert!(json.contains("\"estimated_saving_ns\": "));
        assert!(json.contains("\"candidates\": ["));
        // Without a model the fields degrade to null, not vanish.
        let legacy = run("rec x . p?v . q!v . x", 0).report().to_json();
        assert!(legacy.contains("\"cost_source\": null"));
        assert!(legacy.contains("\"estimated_saving_ns\": null"));
    }

    #[test]
    fn report_json_is_well_formed() {
        let outcome = run("rec x . p?v . q!v . x", 0);
        let json = outcome.report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"role\": \"self\""));
        assert!(json.contains("\"improved\": true"));
        assert!(json.contains("\"derivation\": [\"hoist q! past p?\"]"));
        let unimproved = run("end", 1).report().to_json();
        assert!(unimproved.contains("\"best\": null"));
    }
}
