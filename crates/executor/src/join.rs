//! Join handles: awaiting the output of a spawned task.

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

/// Error returned when awaiting a task that panicked or was dropped by the
/// runtime before completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinError;

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("task panicked or was cancelled before completion")
    }
}

impl std::error::Error for JoinError {}

struct Slot<T> {
    value: Option<T>,
    waker: Option<Waker>,
    /// True once the producing side is gone (completed or dropped).
    closed: bool,
}

/// Producer half: completes the join slot exactly once.
pub(crate) struct Completer<T> {
    slot: Arc<Mutex<Slot<T>>>,
}

impl<T> Completer<T> {
    pub(crate) fn complete(self, value: T) {
        // Move the Arc out without running Drop (which would re-lock for
        // the close-without-value path); forgetting `self` directly would
        // leak one strong reference — and therefore the slot — per task.
        // Safety: `self` is forgotten immediately after the read.
        let slot = unsafe { std::ptr::read(&self.slot) };
        std::mem::forget(self);
        let waker = {
            let mut slot = slot.lock();
            slot.value = Some(value);
            slot.closed = true;
            slot.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

impl<T> Drop for Completer<T> {
    fn drop(&mut self) {
        let waker = {
            let mut slot = self.slot.lock();
            slot.closed = true;
            slot.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// An owned permission to await the output of a spawned task.
///
/// Unlike Tokio, dropping the handle does **not** cancel the task; it simply
/// detaches, matching the fire-and-forget style used by the session runtime.
pub struct JoinHandle<T> {
    slot: Arc<Mutex<Slot<T>>>,
}

impl<T> JoinHandle<T> {
    /// Returns true once the task has finished (successfully or not).
    pub fn is_finished(&self) -> bool {
        self.slot.lock().closed
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut slot = self.slot.lock();
        if let Some(value) = slot.value.take() {
            return Poll::Ready(Ok(value));
        }
        if slot.closed {
            return Poll::Ready(Err(JoinError));
        }
        slot.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Creates a connected completer/handle pair.
pub(crate) fn pair<T>() -> (Completer<T>, JoinHandle<T>) {
    let slot = Arc::new(Mutex::new(Slot {
        value: None,
        waker: None,
        closed: false,
    }));
    (Completer { slot: slot.clone() }, JoinHandle { slot })
}
