//! Cooperative rescheduling.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Yields execution back to the scheduler once.
///
/// The future returns `Pending` on its first poll after waking itself, so
/// the task is re-queued behind any other runnable tasks. Useful for long
/// computations that should not starve session peers sharing a worker.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[must_use = "futures do nothing unless awaited"]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn yield_then_resume() {
        crate::block_on(async {
            super::yield_now().await;
            super::yield_now().await;
        });
    }
}
