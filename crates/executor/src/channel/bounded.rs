//! Bounded MPSC channel: sends apply back-pressure once full.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

use super::SendError;

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    rx_waker: Option<Waker>,
    tx_wakers: VecDeque<Waker>,
    senders: usize,
    rx_alive: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
}

/// Creates a channel holding at most `capacity` in-flight messages.
///
/// A zero capacity is rounded up to one: a true rendezvous requires the
/// blocking channels of the `baselines` crate, not an async queue.
pub fn bounded<T>(capacity: usize) -> (BoundedSender<T>, BoundedReceiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            rx_waker: None,
            tx_wakers: VecDeque::new(),
            senders: 1,
            rx_alive: true,
        }),
    });
    (
        BoundedSender {
            inner: inner.clone(),
        },
        BoundedReceiver { inner },
    )
}

/// Producer half of a bounded channel. Cloneable.
pub struct BoundedSender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> BoundedSender<T> {
    /// Awaits queue space, then enqueues the message.
    pub fn send(&self, value: T) -> SendFuture<'_, T> {
        SendFuture {
            sender: self,
            value: Some(value),
        }
    }

    /// Attempts to enqueue without waiting; returns the value on a full or
    /// closed channel.
    pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
        let waker = {
            let mut state = self.inner.state.lock();
            if !state.rx_alive || state.queue.len() >= state.capacity {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            state.rx_waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
        Ok(())
    }
}

impl<T> Clone for BoundedSender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().senders += 1;
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for BoundedSender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut state = self.inner.state.lock();
            state.senders -= 1;
            if state.senders == 0 {
                state.rx_waker.take()
            } else {
                None
            }
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// Future returned by [`BoundedSender::send`].
#[must_use = "futures do nothing unless awaited"]
pub struct SendFuture<'a, T> {
    sender: &'a BoundedSender<T>,
    value: Option<T>,
}

impl<T> Future for SendFuture<'_, T> {
    type Output = Result<(), SendError<T>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Safety not needed: no structural pinning, all fields Unpin.
        let this = unsafe { self.get_unchecked_mut() };
        let value = this.value.take().expect("polled after completion");
        let rx_waker = {
            let mut state = this.sender.inner.state.lock();
            if !state.rx_alive {
                return Poll::Ready(Err(SendError(value)));
            }
            if state.queue.len() >= state.capacity {
                this.value = Some(value);
                state.tx_wakers.push_back(cx.waker().clone());
                return Poll::Pending;
            }
            state.queue.push_back(value);
            state.rx_waker.take()
        };
        if let Some(waker) = rx_waker {
            waker.wake();
        }
        Poll::Ready(Ok(()))
    }
}

/// Consumer half of a bounded channel.
pub struct BoundedReceiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> BoundedReceiver<T> {
    /// Awaits the next message; `None` once all senders are gone.
    pub fn recv(&mut self) -> RecvFuture<'_, T> {
        RecvFuture { receiver: self }
    }
}

impl<T> Drop for BoundedReceiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock();
        state.rx_alive = false;
        state.queue.clear();
        // Wake all blocked senders so they observe the closure.
        for waker in state.tx_wakers.drain(..) {
            waker.wake();
        }
    }
}

/// Future returned by [`BoundedReceiver::recv`].
#[must_use = "futures do nothing unless awaited"]
pub struct RecvFuture<'a, T> {
    receiver: &'a mut BoundedReceiver<T>,
}

impl<T> Future for RecvFuture<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let (result, tx_waker) = {
            let mut state = this.receiver.inner.state.lock();
            if let Some(value) = state.queue.pop_front() {
                (Poll::Ready(Some(value)), state.tx_wakers.pop_front())
            } else if state.senders == 0 {
                (Poll::Ready(None), None)
            } else {
                state.rx_waker = Some(cx.waker().clone());
                (Poll::Pending, None)
            }
        };
        if let Some(waker) = tx_waker {
            waker.wake();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backpressure_blocks_until_drained() {
        let rt = crate::Runtime::new(2);
        let (tx, mut rx) = bounded::<u32>(2);
        let producer = rt.spawn(async move {
            for i in 0..10 {
                tx.send(i).await.unwrap();
            }
        });
        let consumer = rt.spawn(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        rt.block_on(producer).unwrap();
        assert_eq!(rt.block_on(consumer).unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn try_send_full() {
        let (tx, _rx) = bounded::<u8>(1);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_err());
    }

    #[test]
    fn send_fails_on_dropped_receiver() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(crate::block_on(tx.send(1)).is_err());
    }
}
