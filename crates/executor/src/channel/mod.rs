//! Asynchronous channels used as the session transport.
//!
//! Three families, mirroring what Rumpsteak needs from Tokio/futures:
//!
//! * [`unbounded`] — multi-producer single-consumer FIFO with non-blocking
//!   sends. This is the default transport behind session channels: sends
//!   enqueue into the peer's queue (the "asynchronous queue" of the paper)
//!   and never block, which is what makes asynchronous message reordering
//!   profitable.
//! * [`bounded`] — like `unbounded` but with a capacity; `send` is a future
//!   that waits for space. Used to model back-pressured links.
//! * [`oneshot`] — single-value rendezvous used by join handles and
//!   request/response patterns.
//!
//! [`Bidirectional`] bundles a sender and a receiver between two fixed
//! peers; one call to [`Bidirectional::pair`] yields both endpoints. Role
//! structs in the session runtime store one `Bidirectional` per peer.

mod bidirectional;
mod bounded;
mod oneshot;
mod unbounded;

pub use bidirectional::Bidirectional;
pub use bounded::{bounded, BoundedReceiver, BoundedSender};
pub use oneshot::{oneshot, OneshotReceiver, OneshotSender};
pub use unbounded::{unbounded, Receiver, SendError, Sender};
