//! Asynchronous channels used as the session transport.
//!
//! Four families, mirroring what Rumpsteak needs from Tokio/futures:
//!
//! * [`spsc`] — lock-free single-producer/single-consumer queue: a
//!   growable power-of-two ring with an atomic waker handoff. This is the
//!   data plane of session links: every [`Bidirectional`] direction has
//!   exactly one producer and one consumer by construction, so no send or
//!   receive on a session channel ever takes a lock.
//! * [`unbounded`] — **multi**-producer single-consumer FIFO with
//!   non-blocking sends, for the places senders are genuinely cloned
//!   (fan-in workloads, baseline comparisons). Sends enqueue into the
//!   peer's queue (the "asynchronous queue" of the paper) and never
//!   block, which is what makes asynchronous message reordering
//!   profitable.
//! * [`bounded`] — like `unbounded` but with a capacity; `send` is a future
//!   that waits for space. Used to model back-pressured links.
//! * [`oneshot`] — single-value rendezvous used by join handles and
//!   request/response patterns, implemented as a small atomic state
//!   machine.
//!
//! [`Bidirectional`] bundles an SPSC sender and receiver between two
//! fixed peers; one call to [`Bidirectional::pair`] yields both
//! endpoints. Role structs in the session runtime store one
//! `Bidirectional` per peer.

use std::fmt;

mod bidirectional;
mod bounded;
mod oneshot;
mod spsc;
mod unbounded;

pub use bidirectional::Bidirectional;
pub use bounded::{bounded, BoundedReceiver, BoundedSender};
pub use oneshot::{oneshot, OneshotReceiver, OneshotSender};
pub use spsc::{spsc, spsc_labelled, SpscReceiver, SpscRecv, SpscSender};
pub use unbounded::{unbounded, Receiver, Sender};

/// Error returned by the non-blocking `send` operations when the receiver
/// has been dropped. Carries the rejected message so the caller can
/// recover it.
pub struct SendError<T>(pub T);

impl<T> SendError<T> {
    /// Recovers the rejected message.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SendError").field(&self.0).finish()
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a closed channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}
