//! Asynchronous channels used as the session transport.
//!
//! Four families, mirroring what Rumpsteak needs from Tokio/futures:
//!
//! * [`spsc`] — lock-free single-producer/single-consumer queue: a
//!   growable power-of-two ring with an atomic waker handoff, a
//!   reserve/commit send path ([`SpscSender::try_reserve`]) that
//!   constructs messages in place, a batched receive
//!   ([`SpscReceiver::try_recv_batch`]) that pays one index publication
//!   per window, and a capacity-capped mode ([`spsc_bounded`]) that
//!   exerts back-pressure instead of growing. This is the data plane of
//!   session links: every [`Bidirectional`] direction has exactly one
//!   producer and one consumer by construction, so no send or receive on
//!   a session channel ever takes a lock.
//! * [`unbounded`] — **multi**-producer single-consumer FIFO with
//!   non-blocking sends, for the places senders are genuinely cloned
//!   (fan-in workloads, baseline comparisons). Sends enqueue into the
//!   peer's queue (the "asynchronous queue" of the paper) and never
//!   block, which is what makes asynchronous message reordering
//!   profitable.
//! * [`bounded`] — like `unbounded` but with a capacity; `send` is a future
//!   that waits for space. Used to model back-pressured links.
//! * [`oneshot`] — single-value rendezvous used by join handles and
//!   request/response patterns, implemented as a small atomic state
//!   machine.
//!
//! [`Bidirectional`] bundles an SPSC sender and receiver between two
//! fixed peers; one call to [`Bidirectional::pair`] yields both
//! endpoints. Role structs in the session runtime store one
//! `Bidirectional` per peer. [`pool`] provides the reusable payload
//! buffers that make large-message sessions allocation-free in steady
//! state.

use std::fmt;

mod bidirectional;
mod bounded;
mod oneshot;
pub mod pool;
mod spsc;
mod unbounded;

pub use bidirectional::{Bidirectional, LinkConfig};
pub use bounded::{bounded, BoundedReceiver, BoundedSender};
pub use oneshot::{oneshot, OneshotReceiver, OneshotSender};
pub use pool::{BufferPool, PooledBuf};
pub use spsc::{
    spsc, spsc_bounded, spsc_labelled, spsc_with, SendSlot, SpscConfig, SpscReceiver, SpscRecv,
    SpscRecvBatch, SpscSendWait, SpscSender,
};
pub use unbounded::{unbounded, Receiver, Sender};

/// Error returned by the non-blocking `send` operations when the receiver
/// has been dropped. Carries the rejected message so the caller can
/// recover it.
pub struct SendError<T>(pub T);

impl<T> SendError<T> {
    /// Recovers the rejected message.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SendError").field(&self.0).finish()
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a closed channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by `try_send`-style operations, distinguishing a
/// *recoverable* full queue (capacity-bounded rings exerting
/// back-pressure) from a peer that is gone for good. Both variants carry
/// the rejected message.
pub enum TrySendError<T> {
    /// The queue is at capacity; retrying after the consumer drains —
    /// or awaiting the parking send path — will succeed.
    Full(T),
    /// The receiving half has been dropped; no send can ever succeed.
    Closed(T),
}

impl<T> TrySendError<T> {
    /// Recovers the rejected message.
    pub fn into_inner(self) -> T {
        match self {
            Self::Full(value) | Self::Closed(value) => value,
        }
    }

    /// True for the recoverable back-pressure case.
    pub fn is_full(&self) -> bool {
        matches!(self, Self::Full(_))
    }

    /// True when the peer is gone.
    pub fn is_closed(&self) -> bool {
        matches!(self, Self::Closed(_))
    }
}

impl<T: fmt::Debug> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Full(value) => f.debug_tuple("Full").field(value).finish(),
            Self::Closed(value) => f.debug_tuple("Closed").field(value).finish(),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Full(_) => f.write_str("sending on a full channel"),
            Self::Closed(_) => f.write_str("sending on a closed channel"),
        }
    }
}

impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}

impl<T> From<TrySendError<T>> for SendError<T> {
    fn from(error: TrySendError<T>) -> Self {
        SendError(error.into_inner())
    }
}
