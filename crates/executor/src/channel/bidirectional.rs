//! Bidirectional role-to-role links.
//!
//! A [`Bidirectional`] endpoint owns an outgoing queue towards one fixed
//! peer and an incoming queue from that peer. Role structs in the session
//! runtime store one endpoint per peer; creating the full mesh once per
//! program and reusing it across sessions is the channel-reuse optimisation
//! described in §2.1 of the paper.
//!
//! Because each direction has exactly one producer (this endpoint) and one
//! consumer (the peer), both queues are the lock-free [`spsc`] rings: a
//! send is a slot write plus a release store, a receive never takes a
//! lock, and the waker handoff feeds straight into the scheduler's
//! LIFO-slot direct-handoff path.
//!
//! A link built from a [`LinkConfig`] additionally cashes in the
//! protocol's statically verified k-MC bounds as performance parameters:
//! each direction's bound becomes the endpoint's **batch-receive
//! window** (the receiver drains up to k queued messages per waker
//! round-trip into a local stash — k is precisely the number of
//! in-flight messages the verification proves safe), sizes the
//! endpoint's **payload-buffer pool** ([`Bidirectional::payload_pool`]),
//! and — in bounded mode — caps the ring so an unverified producer
//! parks instead of growing the queue past the verified depth.

use std::collections::VecDeque;
use std::task::{Context, Poll};

use dep_telemetry as telemetry;

use super::pool::BufferPool;
use super::spsc::{spsc_with, SpscConfig, SpscReceiver, SpscSender};
use super::{SendError, TrySendError};

/// Construction parameters for one role-to-role link, from the
/// perspective of endpoint `a` in `pair_configured(a, b, config)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkConfig {
    /// Statically verified k-MC bound for the `a → b` direction.
    pub bound_ab: Option<usize>,
    /// Statically verified k-MC bound for the `b → a` direction.
    pub bound_ba: Option<usize>,
    /// Cap each direction's ring at its bound (back-pressure) instead of
    /// letting it grow. Directions without a bound stay growable.
    pub bounded: bool,
}

/// One endpoint of a bidirectional link between two fixed peers.
pub struct Bidirectional<T> {
    tx: SpscSender<T>,
    rx: SpscReceiver<T>,
    /// Messages drained by a batch receive but not yet handed to the
    /// session; served before the ring is touched again.
    stash: VecDeque<T>,
    /// Batch-receive window for the incoming direction (1 = unbatched),
    /// from the verified k-MC bound of that direction.
    window: usize,
    /// k-MC bound of the outgoing direction; sizes the payload pool.
    send_bound: usize,
    /// Telemetry label of the outgoing direction.
    label: Option<(&'static str, &'static str)>,
    /// Lazily created payload-buffer arena for outgoing messages.
    pool: Option<BufferPool>,
}

/// Default byte capacity for payload-pool buffers when the caller does
/// not specify one.
const DEFAULT_PAYLOAD_CAPACITY: usize = 4096;

impl<T> Bidirectional<T> {
    /// Creates both endpoints of a fresh link.
    pub fn pair() -> (Self, Self) {
        Self::build(None, LinkConfig::default())
    }

    /// Creates both endpoints of a link between the named roles `a` and
    /// `b`, registering each direction with the telemetry layer (so the
    /// per-channel occupancy watermark can be checked against the
    /// statically verified k-MC bound). Identical to [`Self::pair`] when
    /// telemetry is disabled.
    pub fn pair_labelled(a: &'static str, b: &'static str) -> (Self, Self) {
        Self::build(Some((a, b)), LinkConfig::default())
    }

    /// Creates both endpoints of a link between the named roles `a` and
    /// `b`, shaped by the directions' verified k-MC bounds (see the
    /// module docs): bounds become batch-receive windows and payload-pool
    /// sizes, and `config.bounded` additionally caps each bounded
    /// direction's ring for back-pressure.
    pub fn pair_configured(a: &'static str, b: &'static str, config: LinkConfig) -> (Self, Self) {
        Self::build(Some((a, b)), config)
    }

    fn build(label: Option<(&'static str, &'static str)>, config: LinkConfig) -> (Self, Self) {
        let direction = |bound: Option<usize>, from_to| SpscConfig {
            label: from_to,
            capacity: if config.bounded { bound } else { None },
            bound_hint: bound,
            ..SpscConfig::default()
        };
        let label_ab = label;
        let label_ba = label.map(|(a, b)| (b, a));
        let (ab_tx, ab_rx) = spsc_with(direction(config.bound_ab, label_ab));
        let (ba_tx, ba_rx) = spsc_with(direction(config.bound_ba, label_ba));
        let window = |bound: Option<usize>| bound.unwrap_or(1).max(1);
        if telemetry::ENABLED {
            // Record each direction's batch window next to its k-MC
            // bound, so tooling can assert `batch_window <= kmc_bound`.
            if let Some((a, b)) = label {
                telemetry::channel::set_batch_window(a, b, window(config.bound_ab) as u64);
                telemetry::channel::set_batch_window(b, a, window(config.bound_ba) as u64);
            }
        }
        (
            Self {
                tx: ab_tx,
                rx: ba_rx,
                stash: VecDeque::new(),
                window: window(config.bound_ba),
                send_bound: window(config.bound_ab),
                label: label_ab,
                pool: None,
            },
            Self {
                tx: ba_tx,
                rx: ab_rx,
                stash: VecDeque::new(),
                window: window(config.bound_ab),
                send_bound: window(config.bound_ba),
                label: label_ba,
                pool: None,
            },
        )
    }

    /// Enqueues a message for the peer. Non-blocking and lock-free. On a
    /// back-pressured (bounded) link a full ring is reported as an error
    /// like a closed one; use [`try_send`](Self::try_send) to tell the
    /// cases apart or [`poll_send`](Self::poll_send) to park instead.
    pub fn send(&mut self, value: T) -> Result<(), SendError<T>> {
        self.tx.send(value)
    }

    /// Non-blocking send distinguishing a full bounded ring
    /// ([`TrySendError::Full`], recoverable) from a dropped peer.
    pub fn try_send(&mut self, value: T) -> Result<(), TrySendError<T>> {
        self.tx.try_send(value)
    }

    /// Constructs a message directly in the ring slot it will occupy
    /// (see [`SpscSender::send_with`]).
    pub fn send_with<F>(&mut self, make: F) -> Result<(), TrySendError<()>>
    where
        F: FnOnce() -> T,
    {
        self.tx.send_with(make)
    }

    /// Poll-based send: reserves a slot (parking on a full bounded ring)
    /// and commits `*value` into it. `value` is left `None` on success
    /// and on the terminal closed-channel error, untouched while pending.
    ///
    /// # Panics
    /// Panics if called with `value` already taken (`None`).
    pub fn poll_send(
        &mut self,
        cx: &mut Context<'_>,
        value: &mut Option<T>,
    ) -> Poll<Result<(), SendError<T>>> {
        match self.tx.poll_reserve(cx) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Err(SendError(()))) => {
                let value = value.take().expect("poll_send polled after completion");
                Poll::Ready(Err(SendError(value)))
            }
            Poll::Ready(Ok(slot)) => {
                slot.write(value.take().expect("poll_send polled after completion"));
                Poll::Ready(Ok(()))
            }
        }
    }

    /// Awaits the next message from the peer.
    pub async fn recv(&mut self) -> Option<T> {
        std::future::poll_fn(|cx| self.poll_recv(cx)).await
    }

    /// Non-blocking receive. On a link with a batch window this drains
    /// up to the window in one ring operation and serves the rest from
    /// the stash.
    pub fn try_recv(&mut self) -> Option<T> {
        if let Some(value) = self.stash.pop_front() {
            return Some(value);
        }
        if self.window > 1 {
            if self.rx.try_recv_batch(self.window, &mut self.stash) > 0 {
                return self.stash.pop_front();
            }
            None
        } else {
            self.rx.try_recv()
        }
    }

    /// Poll-based receive for hand-written futures. Batch-windowed links
    /// pay one waker round-trip and one index publication per window of
    /// messages, not per message.
    pub fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<Option<T>> {
        if let Some(value) = self.stash.pop_front() {
            return Poll::Ready(Some(value));
        }
        if self.window > 1 {
            match self.rx.poll_recv_batch(cx, self.window, &mut self.stash) {
                Poll::Ready(n) if n > 0 => Poll::Ready(self.stash.pop_front()),
                Poll::Ready(_) => Poll::Ready(None),
                Poll::Pending => Poll::Pending,
            }
        } else {
            self.rx.poll_recv(cx)
        }
    }

    /// Number of pending inbound messages (stashed plus queued).
    pub fn pending(&self) -> usize {
        self.stash.len() + self.rx.len()
    }

    /// The batch-receive window of the incoming direction (1 when
    /// unbatched).
    pub fn batch_window(&self) -> usize {
        self.window
    }

    /// The payload-buffer arena for messages sent over this endpoint,
    /// created on first use with O(k) slots (k = the outgoing
    /// direction's verified bound) and recording its hit/miss counters
    /// onto this link's telemetry cell. Clones share the arena: hand one
    /// clone to the peer so consumed payloads recycle back.
    pub fn payload_pool(&mut self) -> BufferPool {
        self.payload_pool_with_capacity(DEFAULT_PAYLOAD_CAPACITY)
    }

    /// Like [`payload_pool`](Self::payload_pool) with an explicit byte
    /// capacity for freshly allocated buffers. The capacity only applies
    /// when the pool is first created.
    pub fn payload_pool_with_capacity(&mut self, default_capacity: usize) -> BufferPool {
        if let Some(pool) = &self.pool {
            return pool.clone();
        }
        let stats = match self.label {
            Some((from, to)) => telemetry::channel::attach(from, to),
            None => telemetry::channel::LinkStats::default(),
        };
        // k in flight plus one in the producer's hand.
        let pool = BufferPool::with_stats(self.send_bound + 1, default_capacity, stats);
        self.pool = Some(pool.clone());
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let (mut a, mut b) = Bidirectional::pair();
        crate::block_on(async {
            a.send(1u32).unwrap();
            assert_eq!(b.recv().await, Some(1));
            b.send(2).unwrap();
            assert_eq!(a.recv().await, Some(2));
        });
    }

    #[test]
    fn queues_are_independent_directions() {
        let (mut a, mut b) = Bidirectional::pair();
        a.send(10u8).unwrap();
        a.send(11).unwrap();
        b.send(20).unwrap();
        assert_eq!(a.pending(), 1);
        assert_eq!(b.pending(), 2);
        crate::block_on(async {
            assert_eq!(b.recv().await, Some(10));
            assert_eq!(b.recv().await, Some(11));
            assert_eq!(a.recv().await, Some(20));
        });
    }

    #[test]
    fn dropping_one_endpoint_closes_both_directions() {
        let (mut a, b) = Bidirectional::pair();
        drop(b);
        assert!(a.send(1u8).is_err());
        assert_eq!(crate::block_on(a.recv()), None);
    }

    #[test]
    fn configured_link_batches_receives() {
        let (mut a, mut b) = Bidirectional::pair_configured(
            "BidiBatchA",
            "BidiBatchB",
            LinkConfig {
                bound_ab: Some(8),
                bound_ba: Some(2),
                bounded: false,
            },
        );
        assert_eq!(b.batch_window(), 8);
        assert_eq!(a.batch_window(), 2);
        for i in 0..20u32 {
            a.send(i).unwrap();
        }
        // The first receive drains a window into the stash; the ring is
        // only touched again once the stash runs dry.
        assert_eq!(b.try_recv(), Some(0));
        assert_eq!(b.stash.len(), 7);
        for i in 1..20 {
            assert_eq!(b.try_recv(), Some(i));
        }
        assert_eq!(b.try_recv(), None);
    }

    #[test]
    fn bounded_link_exerts_backpressure() {
        let (mut a, mut b) = Bidirectional::pair_configured(
            "BidiBoundA",
            "BidiBoundB",
            LinkConfig {
                bound_ab: Some(2),
                bound_ba: Some(1),
                bounded: true,
            },
        );
        a.try_send(1u32).unwrap();
        a.try_send(2).unwrap();
        assert!(matches!(a.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(b.try_recv(), Some(1));
        a.try_send(3).unwrap();
        crate::block_on(async {
            assert_eq!(b.recv().await, Some(2));
            assert_eq!(b.recv().await, Some(3));
        });
    }

    #[test]
    fn poll_send_commits_and_takes_value() {
        let (mut a, mut b) = Bidirectional::pair();
        crate::block_on(async {
            let mut value = Some(9u32);
            std::future::poll_fn(|cx| a.poll_send(cx, &mut value))
                .await
                .unwrap();
            assert!(value.is_none());
            assert_eq!(b.recv().await, Some(9));
        });
    }

    #[test]
    fn payload_pool_is_shared_per_endpoint() {
        let (mut a, _b) = Bidirectional::<u8>::pair();
        let pool = a.payload_pool();
        let again = a.payload_pool();
        let mut buf = pool.take();
        buf.push(1);
        drop(buf);
        // Same arena: the recycled buffer is visible through both handles.
        assert_eq!(again.idle(), 1);
    }
}
