//! Bidirectional role-to-role links.
//!
//! A [`Bidirectional`] endpoint owns an outgoing queue towards one fixed
//! peer and an incoming queue from that peer. Role structs in the session
//! runtime store one endpoint per peer; creating the full mesh once per
//! program and reusing it across sessions is the channel-reuse optimisation
//! described in §2.1 of the paper.
//!
//! Because each direction has exactly one producer (this endpoint) and one
//! consumer (the peer), both queues are the lock-free [`spsc`] rings: a
//! send is a slot write plus a release store, a receive never takes a
//! lock, and the waker handoff feeds straight into the scheduler's
//! LIFO-slot direct-handoff path.

use super::spsc::{spsc, spsc_labelled, SpscReceiver, SpscSender};
use super::SendError;

/// One endpoint of a bidirectional link between two fixed peers.
pub struct Bidirectional<T> {
    tx: SpscSender<T>,
    rx: SpscReceiver<T>,
}

impl<T> Bidirectional<T> {
    /// Creates both endpoints of a fresh link.
    pub fn pair() -> (Self, Self) {
        let (a_to_b_tx, a_to_b_rx) = spsc();
        let (b_to_a_tx, b_to_a_rx) = spsc();
        (
            Self {
                tx: a_to_b_tx,
                rx: b_to_a_rx,
            },
            Self {
                tx: b_to_a_tx,
                rx: a_to_b_rx,
            },
        )
    }

    /// Creates both endpoints of a link between the named roles `a` and
    /// `b`, registering each direction with the telemetry layer (so the
    /// per-channel occupancy watermark can be checked against the
    /// statically verified k-MC bound). Identical to [`Self::pair`] when
    /// telemetry is disabled.
    pub fn pair_labelled(a: &'static str, b: &'static str) -> (Self, Self) {
        let (a_to_b_tx, a_to_b_rx) = spsc_labelled(a, b);
        let (b_to_a_tx, b_to_a_rx) = spsc_labelled(b, a);
        (
            Self {
                tx: a_to_b_tx,
                rx: b_to_a_rx,
            },
            Self {
                tx: b_to_a_tx,
                rx: a_to_b_rx,
            },
        )
    }

    /// Enqueues a message for the peer. Non-blocking and lock-free.
    pub fn send(&mut self, value: T) -> Result<(), SendError<T>> {
        self.tx.send(value)
    }

    /// Awaits the next message from the peer.
    pub async fn recv(&mut self) -> Option<T> {
        self.rx.recv().await
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        self.rx.try_recv()
    }

    /// Poll-based receive for hand-written futures.
    pub fn poll_recv(&mut self, cx: &mut std::task::Context<'_>) -> std::task::Poll<Option<T>> {
        self.rx.poll_recv(cx)
    }

    /// Number of pending inbound messages.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let (mut a, mut b) = Bidirectional::pair();
        crate::block_on(async {
            a.send(1u32).unwrap();
            assert_eq!(b.recv().await, Some(1));
            b.send(2).unwrap();
            assert_eq!(a.recv().await, Some(2));
        });
    }

    #[test]
    fn queues_are_independent_directions() {
        let (mut a, mut b) = Bidirectional::pair();
        a.send(10u8).unwrap();
        a.send(11).unwrap();
        b.send(20).unwrap();
        assert_eq!(a.pending(), 1);
        assert_eq!(b.pending(), 2);
        crate::block_on(async {
            assert_eq!(b.recv().await, Some(10));
            assert_eq!(b.recv().await, Some(11));
            assert_eq!(a.recv().await, Some(20));
        });
    }

    #[test]
    fn dropping_one_endpoint_closes_both_directions() {
        let (mut a, b) = Bidirectional::pair();
        drop(b);
        assert!(a.send(1u8).is_err());
        assert_eq!(crate::block_on(a.recv()), None);
    }
}
