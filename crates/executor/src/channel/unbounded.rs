//! Unbounded MPSC channel with waker-based notification.
//!
//! This is the *multi-producer* channel: senders are cloneable, so the
//! queue is guarded by a mutex. Fixed role-pair session links never need
//! that and use the lock-free [`spsc`](super::spsc) queue instead.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

use super::SendError;

struct State<T> {
    queue: VecDeque<T>,
    rx_waker: Option<Waker>,
    senders: usize,
    rx_alive: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
}

/// Creates an unbounded channel; sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            rx_waker: None,
            senders: 1,
            rx_alive: true,
        }),
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

/// Producer half of an unbounded channel. Cloneable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Enqueues a message, waking the receiver if it is waiting.
    ///
    /// Never blocks; fails only when the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let waker = {
            let mut state = self.inner.state.lock();
            if !state.rx_alive {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            state.rx_waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
        Ok(())
    }

    /// True if the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.inner.state.lock().rx_alive
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().senders += 1;
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut state = self.inner.state.lock();
            state.senders -= 1;
            if state.senders == 0 {
                state.rx_waker.take()
            } else {
                None
            }
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// Consumer half of an unbounded channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Receiver<T> {
    /// Awaits the next message; resolves to `None` once all senders are gone
    /// and the queue is drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { receiver: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        self.inner.state.lock().queue.pop_front()
    }

    /// Poll-based receive for hand-written futures: returns `Ready(None)`
    /// once all senders are gone and the queue is drained.
    pub fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut state = self.inner.state.lock();
        if let Some(value) = state.queue.pop_front() {
            return Poll::Ready(Some(value));
        }
        if state.senders == 0 {
            return Poll::Ready(None);
        }
        state.rx_waker = Some(cx.waker().clone());
        Poll::Pending
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock();
        state.rx_alive = false;
        state.queue.clear();
    }
}

/// Future returned by [`Receiver::recv`].
#[must_use = "futures do nothing unless awaited"]
pub struct Recv<'a, T> {
    receiver: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut state = this.receiver.inner.state.lock();
        if let Some(value) = state.queue.pop_front() {
            return Poll::Ready(Some(value));
        }
        if state.senders == 0 {
            return Poll::Ready(None);
        }
        state.rx_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let (tx, mut rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        crate::block_on(async {
            for i in 0..100 {
                assert_eq!(rx.recv().await, Some(i));
            }
        });
    }

    #[test]
    fn recv_none_after_all_senders_drop() {
        let (tx, mut rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        tx2.send(2).unwrap();
        drop(tx2);
        crate::block_on(async {
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, Some(2));
            assert_eq!(rx.recv().await, None);
        });
    }

    #[test]
    fn send_fails_when_receiver_dropped() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(tx.is_closed());
    }

    #[test]
    fn cross_task_wakeup() {
        let rt = crate::Runtime::new(2);
        let (tx, mut rx) = unbounded::<u32>();
        let consumer = rt.spawn(async move {
            let mut sum = 0;
            while let Some(v) = rx.recv().await {
                sum += v;
            }
            sum
        });
        let producer = rt.spawn(async move {
            for i in 1..=10 {
                tx.send(i).unwrap();
                crate::yield_now().await;
            }
        });
        rt.block_on(producer).unwrap();
        assert_eq!(rt.block_on(consumer).unwrap(), 55);
    }
}
