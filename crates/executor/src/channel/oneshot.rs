//! Single-value channel, implemented as a small atomic state machine —
//! no mutex anywhere, consistent with the lock-free [`spsc`](super::spsc)
//! data plane.
//!
//! The whole channel is one `AtomicU8` plus two cells (value, waker)
//! whose ownership the state machine arbitrates:
//!
//! ```text
//!            rx registering                rx registered
//! EMPTY ---------------------> LOCKED ---------------------> WAITING
//!   |                             |                             |
//!   | tx send / drop  (swap)      | tx send / drop (swap;      | tx send / drop
//!   v                             v  rx detects on its CAS)    v  (swap, takes waker,
//! VALUE / CLOSED                VALUE / CLOSED               VALUE / CLOSED + wake)
//! ```
//!
//! The sender performs exactly one unconditional `swap` to `VALUE` (after
//! writing the value cell) or `CLOSED`; whatever state it displaces tells
//! it whether a waker must be woken. The receiver only ever moves between
//! `EMPTY`/`LOCKED`/`WAITING` with CASes, so a failed CAS is precisely the
//! signal that the sender has resolved the channel.

use std::cell::UnsafeCell;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::AtomicU8;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Release};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

/// No value, no registered waker.
const EMPTY: u8 = 0;
/// The receiver is writing the waker cell.
const LOCKED: u8 = 1;
/// The waker cell holds a registered waker.
const WAITING: u8 = 2;
/// The value cell holds the sent value.
const VALUE: u8 = 3;
/// The sender was dropped without sending.
const CLOSED: u8 = 4;
/// The receiver has taken the value.
const TAKEN: u8 = 5;

struct Inner<T> {
    state: AtomicU8,
    /// Written by the sender before the `VALUE` swap; read by the receiver
    /// after observing `VALUE`.
    value: UnsafeCell<Option<T>>,
    /// Written by the receiver under `LOCKED`; claimed by the sender's
    /// swap out of `WAITING`.
    waker: UnsafeCell<Option<Waker>>,
}

// Both cells are handed between the two threads via the acquire/release
// transitions of `state`, never accessed concurrently.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

/// Creates a channel carrying exactly one value.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let inner = Arc::new(Inner {
        state: AtomicU8::new(EMPTY),
        value: UnsafeCell::new(None),
        waker: UnsafeCell::new(None),
    });
    (
        OneshotSender {
            inner: inner.clone(),
        },
        OneshotReceiver { inner },
    )
}

/// Producer half; consumed by [`OneshotSender::send`].
pub struct OneshotSender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> OneshotSender<T> {
    /// Delivers the value, waking a waiting receiver.
    pub fn send(self, value: T) {
        // Move the Arc out without running Drop (which would overwrite
        // VALUE with CLOSED); the reference itself still drops normally.
        // Safety: `self` is forgotten immediately after the read.
        let inner = unsafe { std::ptr::read(&self.inner) };
        std::mem::forget(self);

        // Safety: until the swap below, EMPTY/LOCKED/WAITING are the only
        // reachable states and none of them lets the receiver touch the
        // value cell.
        unsafe { *inner.value.get() = Some(value) };
        // Displacing WAITING claims the waker cell. The other states need
        // no wake: EMPTY has no waiter, and a LOCKED receiver is
        // mid-registration — its completing CAS fails against VALUE, at
        // which point it reads the value itself.
        if inner.state.swap(VALUE, AcqRel) == WAITING {
            if let Some(waker) = unsafe { (*inner.waker.get()).take() } {
                waker.wake();
            }
        }
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        if self.inner.state.swap(CLOSED, AcqRel) == WAITING {
            if let Some(waker) = unsafe { (*self.inner.waker.get()).take() } {
                waker.wake();
            }
        }
    }
}

/// Consumer half; a future resolving to the sent value, or `None` if the
/// sender was dropped without sending.
#[must_use = "futures do nothing unless awaited"]
pub struct OneshotReceiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> OneshotReceiver<T> {
    /// Takes the delivered value after observing `VALUE`.
    fn take_value(&self) -> Option<T> {
        // Safety: VALUE (observed with acquire) hands the value cell to
        // the receiver; TAKEN keeps the cell from being revisited.
        let value = unsafe { (*self.inner.value.get()).take() };
        self.inner.state.store(TAKEN, Release);
        value
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let inner = &*self.inner;
        loop {
            match inner.state.load(Acquire) {
                VALUE => return Poll::Ready(self.take_value()),
                CLOSED | TAKEN => return Poll::Ready(None),
                WAITING => {
                    // Stale waker from an earlier poll: reclaim the cell,
                    // then re-register through the EMPTY path. Either CAS
                    // can lose to the sender's unconditional swap — a
                    // plain store here would clobber VALUE/CLOSED and
                    // strand the channel — so on failure loop back to
                    // read the terminal state.
                    if inner
                        .state
                        .compare_exchange(WAITING, LOCKED, AcqRel, Acquire)
                        .is_ok()
                    {
                        // Safety: LOCKED grants cell ownership.
                        unsafe { (*inner.waker.get()).take() };
                        let _ = inner.state.compare_exchange(LOCKED, EMPTY, AcqRel, Acquire);
                    }
                }
                EMPTY => {
                    if inner
                        .state
                        .compare_exchange(EMPTY, LOCKED, AcqRel, Acquire)
                        .is_err()
                    {
                        // Sender resolved it under us; re-read.
                        continue;
                    }
                    // Safety: LOCKED grants cell ownership.
                    unsafe { *inner.waker.get() = Some(cx.waker().clone()) };
                    match inner
                        .state
                        .compare_exchange(LOCKED, WAITING, AcqRel, Acquire)
                    {
                        Ok(_) => return Poll::Pending,
                        // The sender's swap displaced LOCKED: it did not
                        // touch the waker cell (we still own it), so clean
                        // up and read the terminal state.
                        Err(_) => {
                            let state = inner.state.load(Acquire);
                            // Safety: the sender never takes the cell out
                            // of a displaced LOCKED.
                            unsafe { (*inner.waker.get()).take() };
                            return match state {
                                VALUE => Poll::Ready(self.take_value()),
                                _ => Poll::Ready(None),
                            };
                        }
                    }
                }
                state => unreachable!("invalid oneshot state {state}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_value() {
        let (tx, rx) = oneshot::<&str>();
        tx.send("hi");
        assert_eq!(crate::block_on(rx), Some("hi"));
    }

    #[test]
    fn dropped_sender_yields_none() {
        let (tx, rx) = oneshot::<u8>();
        drop(tx);
        assert_eq!(crate::block_on(rx), None);
    }

    #[test]
    fn cross_task() {
        let rt = crate::Runtime::new(2);
        let (tx, rx) = oneshot::<u64>();
        rt.spawn(async move { tx.send(123) });
        assert_eq!(rt.block_on(rx), Some(123));
    }

    #[test]
    fn unsent_value_dropped_with_channel() {
        let value = Arc::new(());
        let (tx, rx) = oneshot();
        tx.send(value.clone());
        assert_eq!(Arc::strong_count(&value), 2);
        drop(rx);
        assert_eq!(Arc::strong_count(&value), 1);
    }

    #[test]
    fn repolled_receiver_races_sender_swap() {
        // Busy re-polling makes every poll walk the WAITING-reclaim path
        // (CAS to LOCKED, take stale waker, release back to EMPTY) while
        // the sender's unconditional swap lands at an arbitrary point in
        // that window. A lost VALUE/CLOSED here shows up as a permanent
        // Pending, i.e. a hang.
        use std::task::{Context, Poll, Wake, Waker};
        struct Noop;
        impl Wake for Noop {
            fn wake(self: Arc<Self>) {}
        }
        let waker = Waker::from(Arc::new(Noop));
        for i in 0..500u64 {
            let (tx, rx) = oneshot::<u64>();
            let sender = std::thread::spawn(move || {
                for _ in 0..(i % 5) {
                    std::thread::yield_now();
                }
                tx.send(i);
            });
            let mut cx = Context::from_waker(&waker);
            let mut rx = std::pin::pin!(rx);
            let got = loop {
                match rx.as_mut().poll(&mut cx) {
                    Poll::Ready(value) => break value,
                    Poll::Pending => std::hint::spin_loop(),
                }
            };
            assert_eq!(got, Some(i), "iteration {i}");
            sender.join().unwrap();
        }
    }

    #[test]
    fn registered_then_resolved_across_threads() {
        // Hammer the register/send race: the receiver parks via block_on
        // while the sender fires from another thread at a random-ish
        // moment.
        for i in 0..200u64 {
            let (tx, rx) = oneshot::<u64>();
            let sender = std::thread::spawn(move || {
                for _ in 0..(i % 7) {
                    std::thread::yield_now();
                }
                tx.send(i);
            });
            assert_eq!(crate::block_on(rx), Some(i));
            sender.join().unwrap();
        }
    }
}
