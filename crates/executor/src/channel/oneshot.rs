//! Single-value channel.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

struct State<T> {
    value: Option<T>,
    waker: Option<Waker>,
    tx_alive: bool,
}

/// Creates a channel carrying exactly one value.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let state = Arc::new(Mutex::new(State {
        value: None,
        waker: None,
        tx_alive: true,
    }));
    (
        OneshotSender {
            state: state.clone(),
        },
        OneshotReceiver { state },
    )
}

/// Producer half; consumed by [`OneshotSender::send`].
pub struct OneshotSender<T> {
    state: Arc<Mutex<State<T>>>,
}

impl<T> OneshotSender<T> {
    /// Delivers the value, waking a waiting receiver.
    pub fn send(self, value: T) {
        let waker = {
            let mut state = self.state.lock();
            state.value = Some(value);
            state.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut state = self.state.lock();
            state.tx_alive = false;
            state.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// Consumer half; a future resolving to the sent value, or `None` if the
/// sender was dropped without sending.
#[must_use = "futures do nothing unless awaited"]
pub struct OneshotReceiver<T> {
    state: Arc<Mutex<State<T>>>,
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.state.lock();
        if let Some(value) = state.value.take() {
            return Poll::Ready(Some(value));
        }
        if !state.tx_alive {
            return Poll::Ready(None);
        }
        state.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_value() {
        let (tx, rx) = oneshot::<&str>();
        tx.send("hi");
        assert_eq!(crate::block_on(rx), Some("hi"));
    }

    #[test]
    fn dropped_sender_yields_none() {
        let (tx, rx) = oneshot::<u8>();
        drop(tx);
        assert_eq!(crate::block_on(rx), None);
    }

    #[test]
    fn cross_task() {
        let rt = crate::Runtime::new(2);
        let (tx, rx) = oneshot::<u64>();
        rt.spawn(async move { tx.send(123) });
        assert_eq!(rt.block_on(rx), Some(123));
    }
}
