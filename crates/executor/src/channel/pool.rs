//! Pooled payload buffers for zero-allocation steady-state sessions.
//!
//! A long-lived streaming session that ships byte payloads allocates a
//! fresh buffer per message on the naive path — O(messages) allocator
//! traffic for a protocol whose verified k-MC bound proves only k
//! buffers can ever be in flight. [`BufferPool`] is the arena that cashes
//! that bound in: a fixed ring of k + 1 recycling slots owned by the
//! session link. The producer takes a [`PooledBuf`], writes the payload
//! and sends it through the ring like any other value (the buffer's heap
//! storage never moves — the message carries a pointer-sized handle);
//! when the consumer drops the handle the storage slides back into the
//! pool for the next message. In steady state the session allocates
//! O(k) buffers *total*, and the `pool_hits`/`pool_misses` telemetry
//! counters prove it: after warm-up every take is a hit, because the
//! k-MC bound says at most k buffers are ever simultaneously checked
//! out.
//!
//! The pool is lock-free: each slot is a three-state atomic
//! (`EMPTY`/`FULL`/`BUSY`) guarding its buffer cell, claimed by CAS from
//! either side. Takes and returns may race arbitrarily (producer and
//! consumer run on different workers); a return that finds every slot
//! occupied simply frees the buffer, so the pool retains at most its
//! configured capacity of idle buffers.

use std::cell::UnsafeCell;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicU8, AtomicUsize};
use std::sync::Arc;

use dep_telemetry as telemetry;

/// No buffer parked in the slot.
const SLOT_EMPTY: u8 = 0;
/// A recycled buffer is parked in the slot.
const SLOT_FULL: u8 = 1;
/// A thread is moving a buffer in or out; everyone else skips the slot.
const SLOT_BUSY: u8 = 2;

struct Shared {
    /// Per-slot state machines guarding `buffers`.
    states: Box<[AtomicU8]>,
    /// Parked buffers; slot `i` is initialised exactly when `states[i]`
    /// is `FULL` (or mid-transition under `BUSY` by the transitioning
    /// thread).
    buffers: Box<[UnsafeCell<MaybeUninit<Vec<u8>>>]>,
    /// Byte capacity a pool-miss allocation starts with.
    default_capacity: usize,
    /// Slot index just past the last successful take. Takes and puts
    /// each advance their own hint, so in steady state the slot array
    /// behaves as a ring and both operations are O(1): without the
    /// hints, bursty drop patterns (a batch-received window dropped
    /// back-to-back) degrade every scan to O(slots) *locked* RMWs as
    /// each put re-probes the slots its predecessors just filled.
    take_hint: AtomicUsize,
    /// Slot index just past the last successful put (see `take_hint`).
    put_hint: AtomicUsize,
    /// Hit/miss counters, shared with the owning link's telemetry cell.
    stats: telemetry::channel::LinkStats,
}

// Safety: the buffer cells are only touched under an exclusive BUSY
// claim on the corresponding state machine.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

impl Drop for Shared {
    fn drop(&mut self) {
        for (state, buffer) in self.states.iter().zip(self.buffers.iter()) {
            // Sole reference: no transition can be in flight.
            if state.load(Relaxed) == SLOT_FULL {
                unsafe { (*buffer.get()).assume_init_drop() };
            }
        }
    }
}

/// A lock-free arena of reusable byte buffers (see the module docs).
///
/// Cloning shares the arena: the usual shape is one clone on each side
/// of a session link, producer taking and consumer (implicitly, by
/// dropping [`PooledBuf`]s) returning.
#[derive(Clone)]
pub struct BufferPool {
    shared: Arc<Shared>,
}

impl BufferPool {
    /// Creates a pool retaining up to `slots` idle buffers, each starting
    /// at `default_capacity` bytes when freshly allocated. Size `slots`
    /// from the link's k-MC bound (k in-flight plus one in hand).
    pub fn new(slots: usize, default_capacity: usize) -> Self {
        Self::with_stats(slots, default_capacity, Default::default())
    }

    /// Like [`new`](Self::new), with hits and misses recorded on the
    /// given link's telemetry cell.
    pub fn with_stats(
        slots: usize,
        default_capacity: usize,
        stats: telemetry::channel::LinkStats,
    ) -> Self {
        let slots = slots.max(1);
        Self {
            shared: Arc::new(Shared {
                states: (0..slots).map(|_| AtomicU8::new(SLOT_EMPTY)).collect(),
                buffers: (0..slots)
                    .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                    .collect(),
                default_capacity,
                take_hint: AtomicUsize::new(0),
                put_hint: AtomicUsize::new(0),
                stats,
            }),
        }
    }

    /// Takes a cleared buffer — recycled if one is parked (a *pool hit*,
    /// no allocator traffic), freshly allocated otherwise (a *pool
    /// miss*). The buffer returns to the pool when the [`PooledBuf`] is
    /// dropped, from whichever thread drops it.
    pub fn take(&self) -> PooledBuf {
        let shared = &*self.shared;
        let slots = shared.states.len();
        let start = shared.take_hint.load(Relaxed);
        for probe in 0..slots {
            let index = (start + probe) % slots;
            let state = &shared.states[index];
            // Screen with a plain load: a locked RMW on every probed
            // slot would make scans past empty slots painfully hot.
            if state.load(Relaxed) != SLOT_FULL {
                continue;
            }
            if state
                .compare_exchange(SLOT_FULL, SLOT_BUSY, Acquire, Relaxed)
                .is_ok()
            {
                // Safety: BUSY grants exclusive cell access, and FULL
                // guaranteed the cell was initialised.
                let mut buffer = unsafe { (*shared.buffers[index].get()).assume_init_read() };
                state.store(SLOT_EMPTY, Release);
                shared.take_hint.store((index + 1) % slots, Relaxed);
                buffer.clear();
                shared.stats.record_pool_hit();
                return PooledBuf {
                    buffer: ManuallyDrop::new(buffer),
                    pool: Arc::clone(&self.shared),
                };
            }
        }
        shared.stats.record_pool_miss();
        PooledBuf {
            buffer: ManuallyDrop::new(Vec::with_capacity(shared.default_capacity)),
            pool: Arc::clone(&self.shared),
        }
    }

    /// Number of idle buffers currently parked (a racy snapshot).
    pub fn idle(&self) -> usize {
        self.shared
            .states
            .iter()
            .filter(|state| state.load(Relaxed) == SLOT_FULL)
            .count()
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("slots", &self.shared.states.len())
            .field("idle", &self.idle())
            .finish()
    }
}

impl Shared {
    /// Parks `buffer` in the first free slot, or frees it when every
    /// slot is occupied (the pool never retains more than its capacity).
    fn put(&self, buffer: Vec<u8>) {
        let slots = self.states.len();
        let start = self.put_hint.load(Relaxed);
        for probe in 0..slots {
            let index = (start + probe) % slots;
            let state = &self.states[index];
            // Plain-load screen, as in `take`.
            if state.load(Relaxed) != SLOT_EMPTY {
                continue;
            }
            if state
                .compare_exchange(SLOT_EMPTY, SLOT_BUSY, Acquire, Relaxed)
                .is_ok()
            {
                // Safety: BUSY grants exclusive cell access; EMPTY
                // guaranteed the cell holds no live buffer to overwrite.
                unsafe { (*self.buffers[index].get()).write(buffer) };
                state.store(SLOT_FULL, Release);
                self.put_hint.store((index + 1) % slots, Relaxed);
                return;
            }
        }
        drop(buffer);
    }
}

/// A byte buffer checked out of a [`BufferPool`]; behaves as a
/// `Vec<u8>` and slides back into the pool on drop.
pub struct PooledBuf {
    buffer: ManuallyDrop<Vec<u8>>,
    pool: Arc<Shared>,
}

impl PooledBuf {
    /// Detaches the buffer from the pool: the `Vec` is returned as an
    /// ordinary owned value and will *not* be recycled.
    pub fn detach(self) -> Vec<u8> {
        let mut this = ManuallyDrop::new(self);
        // Safety: `Drop::drop` never runs on a `ManuallyDrop`ed handle,
        // so both fields are moved/dropped exactly once, here.
        let buffer = unsafe { ManuallyDrop::take(&mut this.buffer) };
        unsafe { std::ptr::drop_in_place(&mut this.pool) };
        buffer
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        // Safety: drop runs once; `buffer` is never used afterwards.
        let buffer = unsafe { ManuallyDrop::take(&mut self.buffer) };
        self.pool.put(buffer);
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.buffer
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buffer
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.buffer
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.buffer.len())
            .field("capacity", &self.buffer.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_through_the_pool() {
        let pool = BufferPool::new(2, 64);
        let mut a = pool.take();
        a.extend_from_slice(b"hello");
        let a_ptr = a.as_ptr();
        drop(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.take();
        // Same storage, cleared.
        assert_eq!(b.as_ptr(), a_ptr);
        assert!(b.is_empty());
        assert!(b.capacity() >= 64);
    }

    #[test]
    fn excess_returns_are_freed_not_hoarded() {
        let pool = BufferPool::new(2, 16);
        let bufs: Vec<_> = (0..5).map(|_| pool.take()).collect();
        drop(bufs);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn detach_removes_buffer_from_circulation() {
        let pool = BufferPool::new(2, 16);
        let mut buf = pool.take();
        buf.push(42);
        let vec = buf.detach();
        assert_eq!(vec, vec![42]);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn steady_state_is_all_hits() {
        telemetry::channel::reset();
        let stats = telemetry::channel::register("PoolFrom", "PoolTo");
        let pool = BufferPool::with_stats(2, 1024, stats);
        // Warm-up: the first takes miss.
        for _ in 0..10 {
            let mut buf = pool.take();
            buf.extend_from_slice(&[0u8; 512]);
        }
        if telemetry::ENABLED {
            let links = telemetry::channel::snapshot();
            let link = links.iter().find(|l| l.from == "PoolFrom").unwrap();
            // One cold miss, then reuse: the k-MC working set is 1.
            assert_eq!(link.pool_misses, 1);
            assert_eq!(link.pool_hits, 9);
        }
        telemetry::channel::reset();
    }

    #[test]
    fn cross_thread_recycling() {
        let pool = BufferPool::new(4, 64);
        let (mut tx, mut rx) = crate::channel::spsc::<PooledBuf>();
        let producer_pool = pool.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..1000u32 {
                let mut buf = producer_pool.take();
                buf.extend_from_slice(&i.to_le_bytes());
                tx.send(buf).unwrap();
            }
        });
        let mut received = 0u32;
        while received < 1000 {
            if let Some(buf) = rx.try_recv() {
                assert_eq!(buf.as_ref(), received.to_le_bytes());
                received += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert!(pool.idle() <= 4);
    }
}
