//! Lock-free single-producer/single-consumer channel.
//!
//! This is the data plane behind [`Bidirectional`](super::Bidirectional)
//! session links: a link connects exactly two fixed peers, so each
//! direction has one producer and one consumer by construction and never
//! needs the mutex-protected MPSC machinery of [`unbounded`](super::unbounded).
//!
//! # Design
//!
//! * **Growable power-of-two ring.** `head` and `tail` are monotonically
//!   increasing `usize` counters; a value with logical index `i` lives in
//!   slot `i & (cap - 1)`. The producer caches `head` and the consumer
//!   caches `tail`, so the uncontended fast paths touch the shared
//!   counters only to publish their own side (one release store each) and
//!   re-read the opposite counter only when the cached copy says
//!   full/empty (the classic cached-index SPSC optimisation).
//! * **Reserve/commit sends.** [`SpscSender::try_reserve`] hands out a
//!   [`SendSlot`] naming the ring slot the next message will occupy;
//!   [`SendSlot::write`] moves the value straight into that slot and
//!   publishes it. `send` and [`SpscSender::send_with`] are thin wrappers,
//!   so a producer constructs each message once, at its final address,
//!   instead of building it on the stack and moving it into the queue.
//! * **Epoch-free growth, bounded shrink.** When an *unbounded* ring
//!   fills, the producer allocates a doubled buffer, copies the live range
//!   (logical indices keep their values, only the mask changes), publishes
//!   it with a release store and *retires* the old buffer onto an
//!   intrusive chain instead of freeing it. A consumer that raced the
//!   growth keeps reading the old buffer — frozen by the producer from
//!   that point on — and picks up the new one the next time it refreshes
//!   its cached `tail`. Conversely, a ring that grew during a burst does
//!   not hold the peak-size buffer forever: the producer periodically
//!   probes for a quiescent point (`head == tail`, i.e. the queue is
//!   empty, so no slot is live and the consumer provably re-reads the
//!   buffer pointer before its next access) and swaps back to the
//!   configured shrink target, freeing the oversized buffer *and* its
//!   whole retired chain immediately.
//! * **Bounded mode (verified back-pressure).** A ring created with a
//!   capacity never grows: once `tail - head` reaches the capacity,
//!   `try_reserve`/`try_send` report [`TrySendError::Full`] and
//!   [`SpscSender::poll_reserve`] *parks* the producer task until the
//!   consumer frees a slot. Sized from a protocol's statically verified
//!   k-MC bound, the capacity is one a verified execution can never
//!   exceed — the park path is back-pressure insurance for unverified
//!   callers, and telemetry counts every park so a verified protocol can
//!   prove it paid nothing.
//! * **Batched receive.** [`SpscReceiver::try_recv_batch`] pops up to a
//!   window of messages while publishing the consumer index *once*, so a
//!   streaming consumer pays one release store (one cache-line handoff to
//!   the producer) per window instead of per message; sized from the k-MC
//!   bound the window is exactly the verified number of messages that can
//!   be in flight.
//! * **Atomic waker handoff.** Blocking `recv` coordinates through a
//!   four-state machine (`EMPTY` / `LOCKED` / `WAITING` / `WAKING`) plus
//!   a waker cell. The waker is *persistent*: the waking side wakes it by
//!   reference under the `WAKING` state rather than taking it, and the
//!   parked side keeps a private mirror so that on the next empty poll a
//!   `will_wake` hit re-arms with a single CAS (`EMPTY` → `WAITING`) —
//!   no waker clone, no cell write. Only a genuinely different waker
//!   (task migration) pays for the `LOCKED` cell replacement. The waking
//!   side, after publishing its index, executes a `SeqCst` fence and
//!   peeks at the state with a relaxed load — only when it observes a
//!   (possible) waiter does it pay for the CAS that claims the cell. The
//!   parked side mirrors the fence between publishing `WAITING` and
//!   re-checking the queue, the same Dekker-style store/load handshake as
//!   the scheduler's sleep protocol, so a wake can never be lost. Bounded
//!   rings run a second, symmetric cell in the other direction for the
//!   parked producer; unbounded rings never touch it.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::future::Future;
use std::mem::MaybeUninit;
use std::pin::Pin;
use std::ptr;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU8, AtomicUsize};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use dep_telemetry as telemetry;

use super::{SendError, TrySendError};

/// Initial ring capacity (power of two). Small on purpose: session links
/// are created per role pair, and most carry only a few in-flight labels.
const MIN_CAP: usize = 16;

/// How often (in sends) an oversized unbounded ring probes for the
/// quiescent point that lets it shrink back to its target capacity. The
/// probe costs one acquire load of `head`, so it is rationed rather than
/// paid on every send.
const SHRINK_PROBE: usize = 64;

/// Not armed. The cell may still hold a disarmed waker from an earlier
/// round, which the parked side re-arms cheaply when `will_wake` matches.
const WAKER_EMPTY: u8 = 0;
/// The parked side is replacing the cell's waker; the waking side keeps out.
const WAKER_LOCKED: u8 = 1;
/// Armed: the cell holds a live waker the waking side may claim.
const WAKER_WAITING: u8 = 2;
/// The waking side is waking the cell's waker *by reference*; the parked
/// side must not mutate the cell until the waking side stores `EMPTY`.
const WAKER_WAKING: u8 = 3;

/// One direction of the Dekker-style waker handoff: the four-state
/// machine plus the waker cell it guards. The receiver parks on the
/// `rx_waiter` cell (empty queue); a bounded ring's producer parks on the
/// symmetric `tx_waiter` cell (full queue).
struct WakerCell {
    state: AtomicU8,
    /// Guarded by `state`: mutated by the parked side under `LOCKED`,
    /// read (and woken by reference, never taken) by the waking side
    /// under `WAKING`. Persists across rounds so re-arming is cell-free.
    cell: UnsafeCell<Option<Waker>>,
}

impl WakerCell {
    fn new() -> Self {
        Self {
            state: AtomicU8::new(WAKER_EMPTY),
            cell: UnsafeCell::new(None),
        }
    }

    /// True when a waiter may be armed; pair with a preceding `SeqCst`
    /// fence so the check cannot be reordered before the index
    /// publication it guards.
    #[inline]
    fn is_armed(&self) -> bool {
        self.state.load(Relaxed) != WAKER_EMPTY
    }

    /// Wakes the armed waker (if any) by reference; returns whether a
    /// waiter was actually woken.
    #[cold]
    fn wake(&self) -> bool {
        // WAITING -> WAKING claims read access to the cell; a failure
        // means either no armed waiter (EMPTY) or the parked side is
        // mid-registration (LOCKED) — and a registering waiter always
        // re-checks the queue after publishing WAITING, so skipping the
        // wake is safe.
        if self
            .state
            .compare_exchange(WAKER_WAITING, WAKER_WAKING, SeqCst, SeqCst)
            .is_err()
        {
            return false;
        }
        // Safety: WAKING keeps the parked side out of the cell; the
        // waker stays in place so the next round can re-arm it without a
        // clone.
        if let Some(waker) = unsafe { (*self.cell.get()).as_ref() } {
            // On a worker thread this lands the parked task in the waking
            // worker's LIFO slot — the scheduler's direct-handoff path —
            // rather than a shared queue.
            waker.wake_by_ref();
        }
        self.state.store(WAKER_EMPTY, SeqCst);
        true
    }

    /// Arms the handoff with `waker` and publishes `WAITING` followed by
    /// a `SeqCst` fence. `mirror` is the parked side's private copy of
    /// the cell's contents (the waking side never replaces them), letting
    /// a `will_wake` hit re-arm with a single `EMPTY -> WAITING` CAS —
    /// no clone, no cell access. Only a different waker (task migration)
    /// pays for the `LOCKED` replacement.
    fn register(
        &self,
        waker: &Waker,
        mirror: &mut Option<Waker>,
        stats: &telemetry::channel::LinkStats,
    ) {
        if mirror.as_ref().is_some_and(|armed| armed.will_wake(waker)) {
            loop {
                match self
                    .state
                    .compare_exchange(WAKER_EMPTY, WAKER_WAITING, SeqCst, SeqCst)
                {
                    Ok(_) => break,
                    // Still armed from a previous Pending poll.
                    Err(WAKER_WAITING) => break,
                    // Waking side mid-wake (of this very waker): wait out
                    // its short read-and-store section, then re-arm.
                    Err(_) => {
                        stats.record_waker_retry();
                        std::hint::spin_loop();
                    }
                }
            }
            fence(SeqCst);
            return;
        }
        loop {
            match self
                .state
                .compare_exchange(WAKER_EMPTY, WAKER_LOCKED, SeqCst, SeqCst)
            {
                Ok(_) => break,
                Err(WAKER_WAITING) => {
                    // A stale waker is still armed; disarm it so the cell
                    // can be replaced. A failure means the waking side
                    // just entered WAKING; keep looping.
                    if self
                        .state
                        .compare_exchange(WAKER_WAITING, WAKER_LOCKED, SeqCst, SeqCst)
                        .is_ok()
                    {
                        break;
                    }
                    stats.record_waker_retry();
                }
                // Waking side mid-wake: its critical section is a read
                // plus a store, so spin it out rather than losing this
                // waker.
                Err(_) => {
                    stats.record_waker_retry();
                    std::hint::spin_loop();
                }
            }
        }
        // Safety: LOCKED grants cell ownership.
        unsafe { *self.cell.get() = Some(waker.clone()) };
        *mirror = Some(waker.clone());
        self.state.store(WAKER_WAITING, SeqCst);
        fence(SeqCst);
    }

    /// Best-effort disarm after the awaited condition resolved anyway;
    /// the waker stays in the cell for cheap re-arming. Losing the race
    /// is fine: the waking side then delivers one spurious (self-)wake,
    /// which poll semantics permit.
    fn unregister(&self) {
        let _ = self
            .state
            .compare_exchange(WAKER_WAITING, WAKER_EMPTY, SeqCst, SeqCst);
    }
}

/// A fixed-capacity circular buffer plus the chain of buffers it replaced.
///
/// Slots are bare `MaybeUninit` cells: which logical indices hold live
/// values is tracked externally by `head`/`tail`.
struct Buffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Power-of-two capacity; `cap - 1` is the index mask.
    cap: usize,
    /// The buffer this one replaced, kept allocated (never read through)
    /// until the channel drops — or until a quiescent-point shrink proves
    /// no reader can exist — so a consumer racing a growth still reads
    /// valid memory.
    retired: *mut Buffer<T>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize, retired: *mut Buffer<T>) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::new(Self {
            slots,
            cap,
            retired,
        })
    }

    fn slot(&self, index: usize) -> *mut MaybeUninit<T> {
        self.slots[index & (self.cap - 1)].get()
    }

    /// Frees `buffer` and every older buffer on its retired chain.
    ///
    /// Safety: no other thread may dereference any buffer in the chain.
    unsafe fn free_chain(mut buffer: *mut Buffer<T>) {
        while !buffer.is_null() {
            let boxed = unsafe { Box::from_raw(buffer) };
            buffer = boxed.retired;
        }
    }
}

/// State shared by the two endpoints.
struct Inner<T> {
    /// Consumer index: the next logical index to pop. Written only by the
    /// consumer (release), read by the producer (acquire) on the slow path.
    head: AtomicUsize,
    /// Producer index: one past the last published value. Written only by
    /// the producer (release), read by the consumer (acquire) on refresh.
    tail: AtomicUsize,
    /// The live ring buffer; retired predecessors hang off its chain.
    buffer: AtomicPtr<Buffer<T>>,
    /// Waker handoff for a consumer parked on an empty queue.
    rx_waiter: WakerCell,
    /// Waker handoff for a producer parked on a full bounded queue;
    /// untouched on unbounded rings.
    tx_waiter: WakerCell,
    /// Cleared by `Sender::drop`; pushes happen-before via release/acquire.
    tx_alive: AtomicBool,
    /// Cleared by `Receiver::drop`; later sends fail fast.
    rx_alive: AtomicBool,
    /// Telemetry handle (a no-op ZST unless the link was created with
    /// [`spsc_labelled`] in a telemetry build).
    stats: telemetry::channel::LinkStats,
}

unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole remaining reference: indices are quiescent. Live values
        // exist exactly once in the *current* buffer (growth copies them
        // forward; stale bit-copies in retired buffers are never dropped).
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let buffer = *self.buffer.get_mut();
        let current = unsafe { Box::from_raw(buffer) };
        for index in head..tail {
            unsafe { (*current.slot(index)).assume_init_drop() };
        }
        unsafe { Buffer::free_chain(current.retired) };
    }
}

/// Construction parameters for an SPSC ring; the named constructors
/// ([`spsc`], [`spsc_labelled`], [`spsc_bounded`]) cover the common
/// shapes, [`spsc_with`] takes the full set.
#[derive(Clone, Copy, Debug)]
pub struct SpscConfig {
    /// Role names registering the link with the telemetry layer (ignored
    /// in uninstrumented builds).
    pub label: Option<(&'static str, &'static str)>,
    /// `Some(k)`: a capacity-capped ring that never grows and exerts
    /// back-pressure (park or [`TrySendError::Full`]) at `k` in-flight
    /// messages. `None`: the classic growable unbounded ring.
    pub capacity: Option<usize>,
    /// For unbounded rings, the verified k-MC bound (messages in flight a
    /// correct execution can reach): the quiescent-point shrink retires
    /// oversized buffers back toward it. Ignored in bounded mode.
    pub bound_hint: Option<usize>,
    /// Publish a latency stamp at each slot commit (telemetry builds).
    /// On by default; a transport link turns one side off where the ring
    /// terminates in an I/O thread instead of a session future.
    pub stamp_send: bool,
    /// Consume a latency stamp at each pop (telemetry builds). On by
    /// default, mirroring `stamp_send`.
    pub stamp_recv: bool,
}

impl Default for SpscConfig {
    fn default() -> Self {
        SpscConfig {
            label: None,
            capacity: None,
            bound_hint: None,
            stamp_send: true,
            stamp_recv: true,
        }
    }
}

/// Creates a lock-free SPSC channel. Neither endpoint is cloneable; use
/// [`unbounded`](super::unbounded) where multiple producers are needed.
pub fn spsc<T>() -> (SpscSender<T>, SpscReceiver<T>) {
    spsc_with(SpscConfig::default())
}

/// Creates an SPSC channel registered with the telemetry layer as the
/// directed link `from → to`, so its occupancy high-watermark, growth and
/// waker-retry counts appear in channel snapshots (and are checked
/// against the link's registered k-MC bound). Identical to [`spsc`] when
/// telemetry is disabled.
pub fn spsc_labelled<T>(from: &'static str, to: &'static str) -> (SpscSender<T>, SpscReceiver<T>) {
    spsc_with(SpscConfig {
        label: Some((from, to)),
        ..SpscConfig::default()
    })
}

/// Creates a capacity-capped SPSC channel: the ring never grows, and a
/// full queue exerts back-pressure instead. Size it from the protocol's
/// verified k-MC bound and a correct execution never parks.
pub fn spsc_bounded<T>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    spsc_with(SpscConfig {
        capacity: Some(capacity),
        ..SpscConfig::default()
    })
}

/// Creates an SPSC channel from the full [`SpscConfig`].
pub fn spsc_with<T>(config: SpscConfig) -> (SpscSender<T>, SpscReceiver<T>) {
    let stats = match config.label {
        Some((from, to)) => {
            telemetry::channel::register(from, to).with_stamps(config.stamp_send, config.stamp_recv)
        }
        None => telemetry::channel::LinkStats::default(),
    };
    let capacity = config.capacity.map(|c| c.max(1));
    let (cap, shrink_target) = match capacity {
        // A bounded ring is allocated at its final size once and never
        // grows or shrinks.
        Some(limit) => {
            let cap = limit.next_power_of_two();
            (cap, cap)
        }
        None => {
            let target = config
                .bound_hint
                .map_or(MIN_CAP, |k| k.next_power_of_two().max(MIN_CAP));
            (target, target)
        }
    };
    let buffer = Box::into_raw(Buffer::alloc(cap, ptr::null_mut()));
    let inner = Arc::new(Inner {
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        buffer: AtomicPtr::new(buffer),
        rx_waiter: WakerCell::new(),
        tx_waiter: WakerCell::new(),
        tx_alive: AtomicBool::new(true),
        rx_alive: AtomicBool::new(true),
        stats,
    });
    let limit = capacity.unwrap_or(cap);
    (
        SpscSender {
            inner: inner.clone(),
            buffer,
            cap,
            limit,
            bounded: capacity.is_some(),
            shrink_target,
            tail: 0,
            cached_head: 0,
            armed_waker: None,
        },
        SpscReceiver {
            inner,
            buffer,
            bounded: capacity.is_some(),
            head: 0,
            cached_tail: 0,
            armed_waker: None,
        },
    )
}

/// Producer half of an SPSC channel. Not cloneable.
pub struct SpscSender<T> {
    inner: Arc<Inner<T>>,
    /// Producer's view of the live buffer; only the producer replaces it.
    buffer: *mut Buffer<T>,
    cap: usize,
    /// Maximum in-flight messages before the ring is considered full: the
    /// configured capacity in bounded mode, the current `cap` (grow on
    /// full) otherwise.
    limit: usize,
    /// Bounded mode: full means back-pressure, never growth.
    bounded: bool,
    /// Capacity the quiescent-point shrink retires oversized buffers
    /// back to; equals `cap` in bounded mode (shrink disabled).
    shrink_target: usize,
    /// Mirror of `inner.tail` (only the producer advances it).
    tail: usize,
    /// Last observed `inner.head`; always <= the true head, so staleness
    /// only ever makes the full check conservative.
    cached_head: usize,
    /// Private mirror of `tx_waiter`'s cell (see [`WakerCell::register`]).
    armed_waker: Option<Waker>,
}

unsafe impl<T: Send> Send for SpscSender<T> {}

impl<T> SpscSender<T> {
    /// Publishes a message and hands the peer's waker to the scheduler if
    /// the peer is waiting. Never blocks. Fails when the receiver is
    /// gone — and, on a capacity-bounded ring, when the queue is full
    /// (use [`try_send`](Self::try_send) to tell the two apart, or
    /// [`poll_reserve`](Self::poll_reserve) to park until space frees).
    pub fn send(&mut self, value: T) -> Result<(), SendError<T>> {
        self.try_send(value).map_err(|error| match error {
            TrySendError::Full(value) | TrySendError::Closed(value) => SendError(value),
        })
    }

    /// Like [`send`](Self::send), but a full bounded ring is reported as
    /// the recoverable [`TrySendError::Full`] instead of being folded
    /// into the closed case.
    pub fn try_send(&mut self, value: T) -> Result<(), TrySendError<T>> {
        match self.try_reserve() {
            Ok(slot) => {
                slot.write(value);
                Ok(())
            }
            Err(TrySendError::Full(())) => Err(TrySendError::Full(value)),
            Err(TrySendError::Closed(())) => Err(TrySendError::Closed(value)),
        }
    }

    /// Constructs a message directly in the ring slot it will occupy: the
    /// closure runs after the slot is reserved, and its return value is
    /// written straight to the slot address (a single move the optimiser
    /// routinely elides into in-place construction), never to an
    /// intermediate queue-transfer copy.
    pub fn send_with<F>(&mut self, make: F) -> Result<(), TrySendError<()>>
    where
        F: FnOnce() -> T,
    {
        let slot = self.try_reserve()?;
        slot.write(make());
        Ok(())
    }

    /// Reserves the next ring slot without blocking. The returned
    /// [`SendSlot`] publishes the message on [`write`](SendSlot::write);
    /// dropping it instead abandons the reservation (nothing is
    /// published). Fails with [`TrySendError::Full`] only on a
    /// capacity-bounded ring.
    pub fn try_reserve(&mut self) -> Result<SendSlot<'_, T>, TrySendError<()>> {
        if !self.inner.rx_alive.load(Acquire) {
            return Err(TrySendError::Closed(()));
        }
        self.maybe_shrink();
        if self.tail - self.cached_head >= self.limit {
            self.cached_head = self.inner.head.load(Acquire);
            if self.tail - self.cached_head >= self.limit {
                if self.bounded {
                    return Err(TrySendError::Full(()));
                }
                self.grow();
            }
        }
        Ok(SendSlot { sender: self })
    }

    /// Reserves the next ring slot, parking the task while a bounded ring
    /// is full; the consumer's next pop wakes it. On unbounded rings this
    /// never returns `Pending`. Fails only when the receiver is gone.
    pub fn poll_reserve(
        &mut self,
        cx: &mut Context<'_>,
    ) -> Poll<Result<SendSlot<'_, T>, SendError<()>>> {
        if !self.inner.rx_alive.load(Acquire) {
            return Poll::Ready(Err(SendError(())));
        }
        self.maybe_shrink();
        if self.tail - self.cached_head >= self.limit {
            self.cached_head = self.inner.head.load(Acquire);
            if self.tail - self.cached_head >= self.limit {
                if !self.bounded {
                    self.grow();
                } else {
                    // Same Dekker handshake as the receive side, in the
                    // other direction: publish WAITING, fence (inside
                    // `register`), then re-check `head` so a pop cannot
                    // slip between the full check and the registration.
                    let inner = &*self.inner;
                    inner
                        .tx_waiter
                        .register(cx.waker(), &mut self.armed_waker, &inner.stats);
                    self.cached_head = inner.head.load(Acquire);
                    if self.tail - self.cached_head >= self.limit {
                        if !inner.rx_alive.load(Acquire) {
                            inner.tx_waiter.unregister();
                            return Poll::Ready(Err(SendError(())));
                        }
                        inner.stats.record_backpressure_park();
                        return Poll::Pending;
                    }
                    inner.tx_waiter.unregister();
                }
            }
        }
        Poll::Ready(Ok(SendSlot { sender: self }))
    }

    /// Sends `value`, awaiting queue space on a full bounded ring (the
    /// back-pressure counterpart of the non-blocking [`send`](Self::send)).
    pub fn send_wait(&mut self, value: T) -> SpscSendWait<'_, T> {
        SpscSendWait {
            sender: self,
            value: Some(value),
        }
    }

    /// True if the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.inner.rx_alive.load(Acquire)
    }

    /// The back-pressure capacity, if this ring was created bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.bounded.then_some(self.limit)
    }

    /// Publishes the value just written to slot `tail` (the commit half
    /// of reserve/commit): advances the producer index, records
    /// telemetry, and runs the Dekker handshake that wakes a parked
    /// consumer.
    fn commit(&mut self) {
        if telemetry::ENABLED {
            // Stamp before the tail publication: the matching receive
            // cannot observe this message earlier, so it always finds
            // the stamp already tagged.
            self.inner.stats.stamp_send();
        }
        self.tail += 1;
        self.inner.tail.store(self.tail, Release);

        if telemetry::ENABLED {
            // Occupancy immediately after publishing. The head read may
            // lag the consumer (making the depth an over-estimate of the
            // *instantaneous* queue), but a lagging head describes a
            // configuration that was legitimately reachable — the k-MC
            // bound covers every interleaving of pops, so `depth <= k`
            // must still hold and the watermark has no false positives.
            let depth = self.tail - self.inner.head.load(Relaxed);
            self.inner.stats.record_depth(depth as u64);
            self.inner.stats.record_send();
        }
        if self.bounded {
            debug_assert!(
                self.tail - self.cached_head <= self.limit,
                "bounded SPSC ring exceeded its capacity: \
                 {} in flight > limit {}",
                self.tail - self.cached_head,
                self.limit,
            );
        }

        // Dekker handshake with `WakerCell::register`: order the tail
        // publication before the waker-state read, so either we observe
        // the waiter or the waiter's queue re-check observes our value.
        fence(SeqCst);
        if self.inner.rx_waiter.is_armed() && self.inner.rx_waiter.wake() {
            self.inner.stats.record_wake();
        }
    }

    /// Doubles the ring, copying the live range into the new buffer at
    /// unchanged logical indices, and retires the old buffer (the consumer
    /// may still be reading it). Producer only; unbounded rings only.
    #[cold]
    fn grow(&mut self) {
        self.inner.stats.record_grow();
        let old = self.buffer;
        let new = Buffer::alloc(self.cap * 2, old);
        for index in self.cached_head..self.tail {
            // A bit-copy, not a move: if the consumer pops index `i`
            // concurrently, it owns the value and the copy in the new
            // buffer is simply never read (nor dropped: `Inner::drop`
            // only drops `[head, tail)`).
            unsafe { ptr::copy_nonoverlapping((*old).slot(index), new.slot(index), 1) };
        }
        let new = Box::into_raw(new);
        self.inner.buffer.store(new, Release);
        self.buffer = new;
        self.cap *= 2;
        self.limit = self.cap;
    }

    /// Rations the quiescent-point probe: every [`SHRINK_PROBE`] sends
    /// while the ring is oversized, refresh `head` and shrink if the
    /// queue turns out to be empty.
    #[inline]
    fn maybe_shrink(&mut self) {
        if self.cap > self.shrink_target && self.tail.is_multiple_of(SHRINK_PROBE) {
            self.cached_head = self.inner.head.load(Acquire);
            if self.cached_head == self.tail {
                self.shrink();
            }
        }
    }

    /// Swaps the oversized ring for a fresh target-capacity buffer and
    /// frees the old one together with its whole retired chain. Producer
    /// only, and only at a quiescent point.
    #[cold]
    fn shrink(&mut self) {
        let old = self.buffer;
        let new = Box::into_raw(Buffer::alloc(self.shrink_target, ptr::null_mut()));
        self.inner.buffer.store(new, Release);
        self.buffer = new;
        self.cap = self.shrink_target;
        self.limit = self.cap;
        // Safety: `head == tail` (loaded acquire in `maybe_shrink`, so
        // the consumer's last slot read happens-before this free), no
        // logical index is live, and the consumer dereferences a buffer
        // pointer only under `head < cached_tail` — which forces it to
        // first observe a tail we publish *after* the new buffer, and
        // therefore to reload the pointer. Nothing can read the old
        // chain again.
        unsafe { Buffer::free_chain(old) };
        self.inner.stats.record_shrink();
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        self.inner.tx_alive.store(false, Release);
        // Same handshake as `commit`: the closure must not be missed by a
        // receiver that just went to sleep.
        fence(SeqCst);
        if self.inner.rx_waiter.is_armed() {
            self.inner.rx_waiter.wake();
        }
    }
}

/// A reserved ring slot: the reserve half of the producer's
/// reserve/commit protocol (see [`SpscSender::try_reserve`]).
///
/// [`write`](Self::write) moves a value directly into the slot and
/// publishes it; dropping the reservation without writing publishes
/// nothing and leaves the channel untouched.
#[must_use = "a reserved slot publishes nothing until written"]
pub struct SendSlot<'a, T> {
    sender: &'a mut SpscSender<T>,
}

impl<T> SendSlot<'_, T> {
    /// Writes `value` into the reserved slot and publishes it (the commit
    /// half of reserve/commit). The value is moved exactly once, to its
    /// final address in the ring.
    pub fn write(self, value: T) {
        let sender = self.sender;
        // Safety: slot `tail` is outside the live range `[head, tail)`,
        // so the consumer is not reading it; the release store in
        // `commit` publishes the write.
        unsafe { ptr::write((*sender.buffer).slot(sender.tail), MaybeUninit::new(value)) };
        sender.commit();
    }
}

/// Future returned by [`SpscSender::send_wait`].
#[must_use = "futures do nothing unless awaited"]
pub struct SpscSendWait<'a, T> {
    sender: &'a mut SpscSender<T>,
    value: Option<T>,
}

impl<T> Future for SpscSendWait<'_, T> {
    type Output = Result<(), SendError<T>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // No structural pinning: all fields are Unpin.
        let this = unsafe { self.get_unchecked_mut() };
        match this.sender.poll_reserve(cx) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Err(SendError(()))) => {
                let value = this.value.take().expect("polled after completion");
                Poll::Ready(Err(SendError(value)))
            }
            Poll::Ready(Ok(slot)) => {
                let value = this.value.take().expect("polled after completion");
                slot.write(value);
                Poll::Ready(Ok(()))
            }
        }
    }
}

/// Consumer half of an SPSC channel. Not cloneable.
pub struct SpscReceiver<T> {
    inner: Arc<Inner<T>>,
    /// Consumer's view of the buffer: valid for indices `< cached_tail`
    /// (refreshed together with `cached_tail`, *after* it, so the buffer
    /// is at least as fresh as any growth covering those indices).
    buffer: *mut Buffer<T>,
    /// Mirror of the ring's bounded-ness: only bounded rings ever have a
    /// parked producer to wake, so unbounded pops skip the check.
    bounded: bool,
    /// Mirror of `inner.head` (only the consumer advances it).
    head: usize,
    /// Last observed `inner.tail`.
    cached_tail: usize,
    /// Private mirror of `rx_waiter`'s cell (see [`WakerCell::register`]).
    armed_waker: Option<Waker>,
}

unsafe impl<T: Send> Send for SpscReceiver<T> {}

impl<T> SpscReceiver<T> {
    /// Non-blocking receive: pops the next message if one is published.
    pub fn try_recv(&mut self) -> Option<T> {
        if self.head == self.cached_tail && !self.refresh() {
            return None;
        }
        // Safety: `head < cached_tail`, so the slot holds a published
        // value the producer will not touch again, and `self.buffer` is
        // fresh enough to contain every index below `cached_tail`.
        let value = unsafe { ptr::read((*self.buffer).slot(self.head)).assume_init() };
        self.head += 1;
        // Release: the slot read above must complete before the producer
        // can observe the new head and reuse the slot.
        self.inner.head.store(self.head, Release);
        if telemetry::ENABLED {
            self.inner.stats.stamp_recv();
        }
        self.wake_producer();
        Some(value)
    }

    /// Pops up to `window` published messages into `out`, publishing the
    /// consumer index — the cache-line handoff that lets the producer
    /// reuse slots (and unparks it on a bounded ring) — exactly **once**
    /// for the whole batch. Returns the number popped (0 when the queue
    /// is empty). A `window` of 0 is treated as 1.
    pub fn try_recv_batch(&mut self, window: usize, out: &mut VecDeque<T>) -> usize {
        if self.head == self.cached_tail && !self.refresh() {
            return 0;
        }
        let n = window.max(1).min(self.cached_tail - self.head);
        // Grow `out` first: the pushes below must not allocate (the only
        // way they could panic), or values already popped off the ring —
        // but not yet re-owned by `out` — would leak or double-drop when
        // the channel drops.
        out.reserve(n);
        for _ in 0..n {
            // Safety: as in `try_recv`; every index below `cached_tail`
            // is published and lives in `self.buffer`.
            let value = unsafe { ptr::read((*self.buffer).slot(self.head)).assume_init() };
            out.push_back(value);
            self.head += 1;
        }
        // One release store for the whole window: all slot reads above
        // complete before the producer can observe the new head.
        self.inner.head.store(self.head, Release);
        self.inner.stats.record_batch(n as u64);
        if telemetry::ENABLED {
            self.inner.stats.stamp_recv_batch(n as u64);
        }
        self.wake_producer();
        n
    }

    /// Awaits the next message; resolves to `None` once the sender is gone
    /// and the queue is drained.
    pub fn recv(&mut self) -> SpscRecv<'_, T> {
        SpscRecv { receiver: self }
    }

    /// Awaits at least one message, then drains up to `window` of them
    /// into `out` with a single index publication; resolves to the number
    /// drained (0 once the sender is gone and the queue is empty).
    pub fn recv_batch<'a>(
        &'a mut self,
        window: usize,
        out: &'a mut VecDeque<T>,
    ) -> SpscRecvBatch<'a, T> {
        SpscRecvBatch {
            receiver: self,
            window,
            out,
        }
    }

    /// Poll-based receive for hand-written futures: `Ready(None)` once the
    /// sender is gone and the queue is drained. Lock-free in every state.
    pub fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<Option<T>> {
        if let Some(value) = self.try_recv() {
            return Poll::Ready(Some(value));
        }
        self.register(cx.waker());
        // Dekker handshake with the producer's `commit`/`drop` (see
        // `register`): re-check both the queue and the closed flag now
        // that WAITING is published, so a concurrent publication cannot
        // slip between our first check and the registration.
        if let Some(value) = self.try_recv() {
            self.unregister();
            return Poll::Ready(Some(value));
        }
        if !self.inner.tx_alive.load(Acquire) {
            // The closure store is release-ordered after the final tail
            // store, so one more pop attempt observes any last messages.
            let value = self.try_recv();
            self.unregister();
            return Poll::Ready(value);
        }
        Poll::Pending
    }

    /// Poll-based batch receive: `Ready(n)` once `n >= 1` messages were
    /// drained into `out`, `Ready(0)` once the sender is gone and the
    /// queue is empty.
    pub fn poll_recv_batch(
        &mut self,
        cx: &mut Context<'_>,
        window: usize,
        out: &mut VecDeque<T>,
    ) -> Poll<usize> {
        let n = self.try_recv_batch(window, out);
        if n > 0 {
            return Poll::Ready(n);
        }
        self.register(cx.waker());
        let n = self.try_recv_batch(window, out);
        if n > 0 {
            self.unregister();
            return Poll::Ready(n);
        }
        if !self.inner.tx_alive.load(Acquire) {
            let n = self.try_recv_batch(window, out);
            self.unregister();
            return Poll::Ready(n);
        }
        Poll::Pending
    }

    /// Number of messages currently queued (a racy snapshot).
    pub fn len(&self) -> usize {
        self.inner
            .tail
            .load(Acquire)
            .saturating_sub(self.inner.head.load(Relaxed))
    }

    /// True when no messages are queued (a racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Refreshes the cached tail (and, when it moved, the buffer
    /// pointer); returns whether any message is now visible.
    #[inline]
    fn refresh(&mut self) -> bool {
        self.cached_tail = self.inner.tail.load(Acquire);
        if self.head == self.cached_tail {
            return false;
        }
        // Reload *after* tail: seeing tail = t (acquire) makes every
        // producer write before that store visible, including any
        // buffer replacement covering indices < t.
        self.buffer = self.inner.buffer.load(Acquire);
        true
    }

    /// The bounded-ring half of the Dekker handshake, run after every
    /// head publication: wake a producer parked on the full queue.
    /// Unbounded rings never park producers, so the fence is skipped.
    #[inline]
    fn wake_producer(&self) {
        if self.bounded {
            fence(SeqCst);
            if self.inner.tx_waiter.is_armed() {
                self.inner.tx_waiter.wake();
            }
        }
    }

    /// Arms the receive-side handoff with `waker` (see
    /// [`WakerCell::register`]).
    fn register(&mut self, waker: &Waker) {
        let inner = &*self.inner;
        inner
            .rx_waiter
            .register(waker, &mut self.armed_waker, &inner.stats);
    }

    /// Best-effort disarm after a late value was found.
    fn unregister(&mut self) {
        self.inner.rx_waiter.unregister();
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        // Later sends fail fast; a send racing this store may still land
        // in the queue, where `Inner::drop` reclaims it.
        self.inner.rx_alive.store(false, Release);
        // A producer parked on a full bounded ring must observe the
        // closure: same handshake as the sender's drop, other direction.
        fence(SeqCst);
        if self.inner.tx_waiter.is_armed() {
            self.inner.tx_waiter.wake();
        }
    }
}

/// Future returned by [`SpscReceiver::recv`].
#[must_use = "futures do nothing unless awaited"]
pub struct SpscRecv<'a, T> {
    receiver: &'a mut SpscReceiver<T>,
}

impl<T> Future for SpscRecv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.get_mut().receiver.poll_recv(cx)
    }
}

/// Future returned by [`SpscReceiver::recv_batch`].
#[must_use = "futures do nothing unless awaited"]
pub struct SpscRecvBatch<'a, T> {
    receiver: &'a mut SpscReceiver<T>,
    window: usize,
    out: &'a mut VecDeque<T>,
}

impl<T> Future for SpscRecvBatch<'_, T> {
    type Output = usize;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // No structural pinning: all fields are Unpin.
        let this = unsafe { self.get_unchecked_mut() };
        this.receiver.poll_recv_batch(cx, this.window, this.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved_across_growth() {
        let (mut tx, mut rx) = spsc();
        for i in 0..(MIN_CAP * 8) {
            tx.send(i).unwrap();
        }
        for i in 0..(MIN_CAP * 8) {
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let (mut tx, mut rx) = spsc();
        for lap in 0..100u32 {
            for i in 0..(MIN_CAP as u32 - 1) {
                tx.send(lap * 1000 + i).unwrap();
            }
            for i in 0..(MIN_CAP as u32 - 1) {
                assert_eq!(rx.try_recv(), Some(lap * 1000 + i));
            }
        }
    }

    #[test]
    fn recv_none_after_sender_drop() {
        let (mut tx, mut rx) = spsc::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        crate::block_on(async {
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, None);
        });
    }

    #[test]
    fn send_fails_when_receiver_dropped() {
        let (mut tx, rx) = spsc::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(tx.is_closed());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Closed(2))));
    }

    #[test]
    fn cross_task_wakeup() {
        let rt = crate::Runtime::new(2);
        let (mut tx, mut rx) = spsc::<u32>();
        let consumer = rt.spawn(async move {
            let mut sum = 0;
            while let Some(v) = rx.recv().await {
                sum += v;
            }
            sum
        });
        let producer = rt.spawn(async move {
            for i in 1..=10 {
                tx.send(i).unwrap();
                crate::yield_now().await;
            }
        });
        rt.block_on(producer).unwrap();
        assert_eq!(rt.block_on(consumer).unwrap(), 55);
    }

    #[test]
    fn queued_values_dropped_exactly_once() {
        let value = Arc::new(());
        let (mut tx, mut rx) = spsc();
        for _ in 0..(MIN_CAP * 3) {
            tx.send(value.clone()).unwrap();
        }
        // Pop a few across the growth boundary, then drop the channel
        // with values still queued.
        for _ in 0..5 {
            assert!(rx.try_recv().is_some());
        }
        assert_eq!(Arc::strong_count(&value), 1 + MIN_CAP * 3 - 5);
        drop((tx, rx));
        assert_eq!(Arc::strong_count(&value), 1);
    }

    #[test]
    fn labelled_channel_reports_watermark_and_growth() {
        telemetry::channel::reset();
        let (mut tx, mut rx) = spsc_labelled::<u32>("SpscFrom", "SpscTo");
        for i in 0..(MIN_CAP as u32 * 2) {
            tx.send(i).unwrap();
        }
        for i in 0..(MIN_CAP as u32 * 2) {
            assert_eq!(rx.try_recv(), Some(i));
        }
        let links = telemetry::channel::snapshot();
        if telemetry::ENABLED {
            let link = links
                .iter()
                .find(|l| l.from == "SpscFrom" && l.to == "SpscTo")
                .expect("labelled link registered");
            assert_eq!(link.high_watermark, MIN_CAP as u64 * 2);
            assert!(link.grows >= 1);
            assert_eq!(link.sends, MIN_CAP as u64 * 2);
        } else {
            assert!(links.is_empty());
        }
        telemetry::channel::reset();
    }

    #[test]
    fn len_tracks_pending() {
        let (mut tx, mut rx) = spsc();
        assert!(rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        rx.try_recv();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn reserve_commit_publishes_only_on_write() {
        let (mut tx, mut rx) = spsc::<u32>();
        // An abandoned reservation publishes nothing.
        let slot = tx.try_reserve().unwrap();
        drop(slot);
        assert_eq!(rx.try_recv(), None);
        tx.try_reserve().unwrap().write(7);
        assert_eq!(rx.try_recv(), Some(7));
    }

    #[test]
    fn send_with_constructs_in_slot() {
        let (mut tx, mut rx) = spsc::<Vec<u8>>();
        tx.send_with(|| vec![1, 2, 3]).unwrap();
        assert_eq!(rx.try_recv(), Some(vec![1, 2, 3]));
    }

    #[test]
    fn bounded_reports_full_and_recovers() {
        let (mut tx, mut rx) = spsc_bounded::<u32>(2);
        assert_eq!(tx.capacity(), Some(2));
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv(), Some(1));
        tx.try_send(3).unwrap();
        assert!(matches!(tx.try_send(4), Err(TrySendError::Full(4))));
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), Some(3));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn bounded_send_wait_parks_until_space() {
        let rt = crate::Runtime::new(2);
        let (mut tx, mut rx) = spsc_bounded::<u32>(1);
        let producer = rt.spawn(async move {
            for i in 0..100 {
                tx.send_wait(i).await.unwrap();
            }
        });
        let consumer = rt.spawn(async move {
            let mut expected = 0;
            while let Some(v) = rx.recv().await {
                assert_eq!(v, expected);
                expected += 1;
            }
            expected
        });
        rt.block_on(producer).unwrap();
        assert_eq!(rt.block_on(consumer).unwrap(), 100);
    }

    #[test]
    fn send_wait_fails_when_receiver_dropped_mid_park() {
        let rt = crate::Runtime::new(2);
        let (mut tx, mut rx) = spsc_bounded::<u32>(1);
        tx.try_send(0).unwrap();
        let producer = rt.spawn(async move {
            // The ring is full; this parks until the receiver disappears.
            tx.send_wait(1).await
        });
        let dropper = rt.spawn(async move {
            crate::yield_now().await;
            assert_eq!(rx.try_recv(), Some(0));
            drop(rx);
        });
        rt.block_on(dropper).unwrap();
        // Either the pop freed space first (Ok) or the closure won (Err);
        // both mean the producer did not deadlock.
        let _ = rt.block_on(producer).unwrap();
    }

    #[test]
    fn batch_recv_drains_in_order() {
        let (mut tx, mut rx) = spsc::<u32>();
        for i in 0..50 {
            tx.send(i).unwrap();
        }
        let mut out = VecDeque::new();
        assert_eq!(rx.try_recv_batch(8, &mut out), 8);
        assert_eq!(rx.try_recv_batch(64, &mut out), 42);
        assert_eq!(rx.try_recv_batch(8, &mut out), 0);
        assert_eq!(out.len(), 50);
        for i in 0..50 {
            assert_eq!(out.pop_front(), Some(i));
        }
    }

    #[test]
    fn batch_recv_future_resolves_zero_after_close() {
        let (mut tx, mut rx) = spsc::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        crate::block_on(async {
            let mut out = VecDeque::new();
            assert_eq!(rx.recv_batch(16, &mut out).await, 2);
            assert_eq!(rx.recv_batch(16, &mut out).await, 0);
            assert_eq!(out, VecDeque::from([1, 2]));
        });
    }

    #[test]
    fn oversized_ring_shrinks_at_quiescent_point() {
        let (mut tx, mut rx) = spsc::<usize>();
        // Grow well past the shrink target…
        for i in 0..(MIN_CAP * 16) {
            tx.send(i).unwrap();
        }
        for i in 0..(MIN_CAP * 16) {
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert!(tx.cap > MIN_CAP);
        // …then keep sending and draining: once a probe lands on an empty
        // queue the ring must retire the oversized buffer.
        for i in 0..(SHRINK_PROBE * 2) {
            tx.send(i).unwrap();
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert_eq!(tx.cap, MIN_CAP);
        // The shrunk ring still works, including re-growth.
        for i in 0..(MIN_CAP * 4) {
            tx.send(i).unwrap();
        }
        for i in 0..(MIN_CAP * 4) {
            assert_eq!(rx.try_recv(), Some(i));
        }
    }

    #[test]
    fn bound_hint_sizes_the_initial_ring() {
        let (tx, _rx) = spsc_with::<u32>(SpscConfig {
            bound_hint: Some(100),
            ..SpscConfig::default()
        });
        assert_eq!(tx.cap, 128);
        assert_eq!(tx.shrink_target, 128);
    }
}
