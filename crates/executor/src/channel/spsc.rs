//! Lock-free single-producer/single-consumer channel.
//!
//! This is the data plane behind [`Bidirectional`](super::Bidirectional)
//! session links: a link connects exactly two fixed peers, so each
//! direction has one producer and one consumer by construction and never
//! needs the mutex-protected MPSC machinery of [`unbounded`](super::unbounded).
//!
//! # Design
//!
//! * **Growable power-of-two ring.** `head` and `tail` are monotonically
//!   increasing `usize` counters; a value with logical index `i` lives in
//!   slot `i & (cap - 1)`. The producer caches `head` and the consumer
//!   caches `tail`, so the uncontended fast paths touch the shared
//!   counters only to publish their own side (one release store each) and
//!   re-read the opposite counter only when the cached copy says
//!   full/empty (the classic cached-index SPSC optimisation).
//! * **Epoch-free growth.** When the ring fills, the producer allocates a
//!   doubled buffer, copies the live range (logical indices keep their
//!   values, only the mask changes), publishes it with a release store and
//!   *retires* the old buffer onto an intrusive chain instead of freeing
//!   it. A consumer that raced the growth keeps reading the old buffer —
//!   frozen by the producer from that point on — and picks up the new one
//!   the next time it refreshes its cached `tail`. Retired buffers are
//!   freed when the channel drops; the waste is a geometric series below
//!   one live buffer's size.
//! * **Atomic waker handoff.** Blocking `recv` coordinates through a
//!   four-state machine (`EMPTY` / `LOCKED` / `WAITING` / `WAKING`) plus
//!   a waker cell. The waker is *persistent*: the producer wakes it by
//!   reference under the `WAKING` state rather than taking it, and the
//!   consumer keeps a private mirror so that on the next empty poll a
//!   `will_wake` hit re-arms with a single CAS (`EMPTY` → `WAITING`) —
//!   no waker clone, no cell write. Only a genuinely different waker
//!   (task migration) pays for the `LOCKED` cell replacement. The
//!   producer, after publishing a value, executes a `SeqCst` fence and
//!   peeks at the state with a relaxed load — only when it observes a
//!   (possible) waiter does it pay for the CAS that claims the cell for
//!   waking. The consumer mirrors the fence between publishing `WAITING`
//!   and re-checking the queue, the same Dekker-style store/load
//!   handshake as the scheduler's sleep protocol, so a wake can never be
//!   lost. An uncontended send is therefore one slot write, one release
//!   store and one fence; `recv` never takes a lock in any state.

use std::cell::UnsafeCell;
use std::future::Future;
use std::mem::MaybeUninit;
use std::pin::Pin;
use std::ptr;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU8, AtomicUsize};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use dep_telemetry as telemetry;

use super::SendError;

/// Initial ring capacity (power of two). Small on purpose: session links
/// are created per role pair, and most carry only a few in-flight labels.
const MIN_CAP: usize = 16;

/// Not armed. The cell may still hold a disarmed waker from an earlier
/// round, which the consumer re-arms cheaply when `will_wake` matches.
const WAKER_EMPTY: u8 = 0;
/// The consumer is replacing the cell's waker; the producer keeps out.
const WAKER_LOCKED: u8 = 1;
/// Armed: the cell holds a live waker the producer may claim for waking.
const WAKER_WAITING: u8 = 2;
/// The producer is waking the cell's waker *by reference*; the consumer
/// must not mutate the cell until the producer stores `EMPTY`.
const WAKER_WAKING: u8 = 3;

/// A fixed-capacity circular buffer plus the chain of buffers it replaced.
///
/// Slots are bare `MaybeUninit` cells: which logical indices hold live
/// values is tracked externally by `head`/`tail`.
struct Buffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Power-of-two capacity; `cap - 1` is the index mask.
    cap: usize,
    /// The buffer this one replaced, kept allocated (never read through)
    /// until the channel drops so a consumer racing a growth still reads
    /// valid memory.
    retired: *mut Buffer<T>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize, retired: *mut Buffer<T>) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::new(Self {
            slots,
            cap,
            retired,
        })
    }

    fn slot(&self, index: usize) -> *mut MaybeUninit<T> {
        self.slots[index & (self.cap - 1)].get()
    }
}

/// State shared by the two endpoints.
struct Inner<T> {
    /// Consumer index: the next logical index to pop. Written only by the
    /// consumer (release), read by the producer (acquire) on the slow path.
    head: AtomicUsize,
    /// Producer index: one past the last published value. Written only by
    /// the producer (release), read by the consumer (acquire) on refresh.
    tail: AtomicUsize,
    /// The live ring buffer; retired predecessors hang off its chain.
    buffer: AtomicPtr<Buffer<T>>,
    /// Waker-handoff state machine (`WAKER_*`).
    waker_state: AtomicU8,
    /// Guarded by `waker_state`: mutated by the consumer under `LOCKED`,
    /// read (and woken by reference, never taken) by the producer under
    /// `WAKING`. Persists across rounds so re-arming is cell-free.
    waker: UnsafeCell<Option<Waker>>,
    /// Cleared by `Sender::drop`; pushes happen-before via release/acquire.
    tx_alive: AtomicBool,
    /// Cleared by `Receiver::drop`; later sends fail fast.
    rx_alive: AtomicBool,
    /// Telemetry handle (a no-op ZST unless the link was created with
    /// [`spsc_labelled`] in a telemetry build).
    stats: telemetry::channel::LinkStats,
}

unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole remaining reference: indices are quiescent. Live values
        // exist exactly once in the *current* buffer (growth copies them
        // forward; stale bit-copies in retired buffers are never dropped).
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut buffer = *self.buffer.get_mut();
        let current = unsafe { Box::from_raw(buffer) };
        for index in head..tail {
            unsafe { (*current.slot(index)).assume_init_drop() };
        }
        buffer = current.retired;
        while !buffer.is_null() {
            let retired = unsafe { Box::from_raw(buffer) };
            buffer = retired.retired;
        }
    }
}

/// Creates a lock-free SPSC channel. Neither endpoint is cloneable; use
/// [`unbounded`](super::unbounded) where multiple producers are needed.
pub fn spsc<T>() -> (SpscSender<T>, SpscReceiver<T>) {
    spsc_with_stats(telemetry::channel::LinkStats::default())
}

/// Creates an SPSC channel registered with the telemetry layer as the
/// directed link `from → to`, so its occupancy high-watermark, growth and
/// waker-retry counts appear in channel snapshots (and are checked
/// against the link's registered k-MC bound). Identical to [`spsc`] when
/// telemetry is disabled.
pub fn spsc_labelled<T>(from: &'static str, to: &'static str) -> (SpscSender<T>, SpscReceiver<T>) {
    spsc_with_stats(telemetry::channel::register(from, to))
}

fn spsc_with_stats<T>(stats: telemetry::channel::LinkStats) -> (SpscSender<T>, SpscReceiver<T>) {
    let buffer = Box::into_raw(Buffer::alloc(MIN_CAP, ptr::null_mut()));
    let inner = Arc::new(Inner {
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        buffer: AtomicPtr::new(buffer),
        waker_state: AtomicU8::new(WAKER_EMPTY),
        waker: UnsafeCell::new(None),
        tx_alive: AtomicBool::new(true),
        rx_alive: AtomicBool::new(true),
        stats,
    });
    (
        SpscSender {
            inner: inner.clone(),
            buffer,
            cap: MIN_CAP,
            tail: 0,
            cached_head: 0,
        },
        SpscReceiver {
            inner,
            buffer,
            head: 0,
            cached_tail: 0,
            armed_waker: None,
        },
    )
}

/// Producer half of an SPSC channel. Not cloneable.
pub struct SpscSender<T> {
    inner: Arc<Inner<T>>,
    /// Producer's view of the live buffer; only the producer replaces it.
    buffer: *mut Buffer<T>,
    cap: usize,
    /// Mirror of `inner.tail` (only the producer advances it).
    tail: usize,
    /// Last observed `inner.head`; always <= the true head, so staleness
    /// only ever makes the full check conservative.
    cached_head: usize,
}

unsafe impl<T: Send> Send for SpscSender<T> {}

impl<T> SpscSender<T> {
    /// Publishes a message and hands the peer's waker to the scheduler if
    /// the peer is waiting. Never blocks; fails only when the receiver is
    /// gone.
    pub fn send(&mut self, value: T) -> Result<(), SendError<T>> {
        if !self.inner.rx_alive.load(Acquire) {
            return Err(SendError(value));
        }
        if self.tail - self.cached_head == self.cap {
            self.cached_head = self.inner.head.load(Acquire);
            if self.tail - self.cached_head == self.cap {
                self.grow();
            }
        }
        // Safety: slot `tail` is outside the live range `[head, tail)`,
        // so the consumer is not reading it; the release store below
        // publishes the write.
        unsafe { ptr::write((*self.buffer).slot(self.tail), MaybeUninit::new(value)) };
        self.tail += 1;
        self.inner.tail.store(self.tail, Release);

        if telemetry::ENABLED {
            // Occupancy immediately after publishing. The head read may
            // lag the consumer (making the depth an over-estimate of the
            // *instantaneous* queue), but a lagging head describes a
            // configuration that was legitimately reachable — the k-MC
            // bound covers every interleaving of pops, so `depth <= k`
            // must still hold and the watermark has no false positives.
            let depth = self.tail - self.inner.head.load(Relaxed);
            self.inner.stats.record_depth(depth as u64);
        }

        // Dekker handshake with `SpscReceiver::register`: order the tail
        // publication before the waker-state read, so either we observe
        // the waiter or the waiter's queue re-check observes our value.
        fence(SeqCst);
        if self.inner.waker_state.load(Relaxed) != WAKER_EMPTY {
            self.inner.wake_receiver();
        }
        Ok(())
    }

    /// True if the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.inner.rx_alive.load(Acquire)
    }

    /// Doubles the ring, copying the live range into the new buffer at
    /// unchanged logical indices, and retires the old buffer (the consumer
    /// may still be reading it). Producer only.
    #[cold]
    fn grow(&mut self) {
        self.inner.stats.record_grow();
        let old = self.buffer;
        let new = Buffer::alloc(self.cap * 2, old);
        for index in self.cached_head..self.tail {
            // A bit-copy, not a move: if the consumer pops index `i`
            // concurrently, it owns the value and the copy in the new
            // buffer is simply never read (nor dropped: `Inner::drop`
            // only drops `[head, tail)`).
            unsafe { ptr::copy_nonoverlapping((*old).slot(index), new.slot(index), 1) };
        }
        let new = Box::into_raw(new);
        self.inner.buffer.store(new, Release);
        self.buffer = new;
        self.cap *= 2;
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        self.inner.tx_alive.store(false, Release);
        // Same handshake as `send`: the closure must not be missed by a
        // receiver that just went to sleep.
        fence(SeqCst);
        if self.inner.waker_state.load(Relaxed) != WAKER_EMPTY {
            self.inner.wake_receiver();
        }
    }
}

impl<T> Inner<T> {
    /// Wakes the armed waker (if any) by reference. Shared by `send` and
    /// the sender's drop.
    #[cold]
    fn wake_receiver(&self) {
        // WAITING -> WAKING claims read access to the cell; a failure
        // means either no armed waiter (EMPTY) or the consumer is
        // mid-registration (LOCKED) — and a registering consumer always
        // re-checks the queue after publishing WAITING, so skipping the
        // wake is safe.
        if self
            .waker_state
            .compare_exchange(WAKER_WAITING, WAKER_WAKING, SeqCst, SeqCst)
            .is_ok()
        {
            // Safety: WAKING keeps the consumer out of the cell; the
            // waker stays in place so the next round can re-arm it
            // without a clone.
            if let Some(waker) = unsafe { (*self.waker.get()).as_ref() } {
                // On a worker thread this lands the receiver task in the
                // sender's LIFO slot — the scheduler's direct-handoff
                // path — rather than a shared queue.
                waker.wake_by_ref();
            }
            self.waker_state.store(WAKER_EMPTY, SeqCst);
        }
    }
}

/// Consumer half of an SPSC channel. Not cloneable.
pub struct SpscReceiver<T> {
    inner: Arc<Inner<T>>,
    /// Consumer's view of the buffer: valid for indices `< cached_tail`
    /// (refreshed together with `cached_tail`, *after* it, so the buffer
    /// is at least as fresh as any growth covering those indices).
    buffer: *mut Buffer<T>,
    /// Mirror of `inner.head` (only the consumer advances it).
    head: usize,
    /// Last observed `inner.tail`.
    cached_tail: usize,
    /// Private mirror of the waker stored in the shared cell. The
    /// producer never replaces the cell's contents, so this is always
    /// accurate and lets `register` decide via `will_wake` — without
    /// touching the cell — whether a one-CAS re-arm suffices.
    armed_waker: Option<Waker>,
}

unsafe impl<T: Send> Send for SpscReceiver<T> {}

impl<T> SpscReceiver<T> {
    /// Non-blocking receive: pops the next message if one is published.
    pub fn try_recv(&mut self) -> Option<T> {
        if self.head == self.cached_tail {
            self.cached_tail = self.inner.tail.load(Acquire);
            if self.head == self.cached_tail {
                return None;
            }
            // Reload *after* tail: seeing tail = t (acquire) makes every
            // producer write before that store visible, including any
            // buffer replacement covering indices < t.
            self.buffer = self.inner.buffer.load(Acquire);
        }
        // Safety: `head < cached_tail`, so the slot holds a published
        // value the producer will not touch again, and `self.buffer` is
        // fresh enough to contain every index below `cached_tail`.
        let value = unsafe { ptr::read((*self.buffer).slot(self.head)).assume_init() };
        self.head += 1;
        // Release: the slot read above must complete before the producer
        // can observe the new head and reuse the slot.
        self.inner.head.store(self.head, Release);
        Some(value)
    }

    /// Awaits the next message; resolves to `None` once the sender is gone
    /// and the queue is drained.
    pub fn recv(&mut self) -> SpscRecv<'_, T> {
        SpscRecv { receiver: self }
    }

    /// Poll-based receive for hand-written futures: `Ready(None)` once the
    /// sender is gone and the queue is drained. Lock-free in every state.
    pub fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<Option<T>> {
        if let Some(value) = self.try_recv() {
            return Poll::Ready(Some(value));
        }
        self.register(cx.waker());
        // Dekker handshake with `SpscSender::send`/`drop` (see `register`):
        // re-check both the queue and the closed flag now that WAITING is
        // published, so a concurrent publication cannot slip between our
        // first check and the registration.
        if let Some(value) = self.try_recv() {
            self.unregister();
            return Poll::Ready(Some(value));
        }
        if !self.inner.tx_alive.load(Acquire) {
            // The closure store is release-ordered after the final tail
            // store, so one more pop attempt observes any last messages.
            let value = self.try_recv();
            self.unregister();
            return Poll::Ready(value);
        }
        Poll::Pending
    }

    /// Number of messages currently queued (a racy snapshot).
    pub fn len(&self) -> usize {
        self.inner
            .tail
            .load(Acquire)
            .saturating_sub(self.inner.head.load(Relaxed))
    }

    /// True when no messages are queued (a racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Arms the handoff with `waker` and publishes `WAITING` followed by
    /// a `SeqCst` fence.
    ///
    /// Fast path: the cell already holds an equivalent waker (the
    /// producer wakes by reference and never clears the cell), so arming
    /// is a single `EMPTY -> WAITING` CAS — no clone, no cell access.
    /// Only a different waker (the receiver moved to another task) pays
    /// for the `LOCKED` replacement.
    fn register(&mut self, waker: &Waker) {
        let inner = &*self.inner;
        if self
            .armed_waker
            .as_ref()
            .is_some_and(|armed| armed.will_wake(waker))
        {
            loop {
                match inner
                    .waker_state
                    .compare_exchange(WAKER_EMPTY, WAKER_WAITING, SeqCst, SeqCst)
                {
                    Ok(_) => break,
                    // Still armed from a previous Pending poll.
                    Err(WAKER_WAITING) => break,
                    // Producer mid-wake (of this very waker): wait out its
                    // short read-and-store section, then re-arm.
                    Err(_) => {
                        inner.stats.record_waker_retry();
                        std::hint::spin_loop();
                    }
                }
            }
            fence(SeqCst);
            return;
        }
        loop {
            match inner
                .waker_state
                .compare_exchange(WAKER_EMPTY, WAKER_LOCKED, SeqCst, SeqCst)
            {
                Ok(_) => break,
                Err(WAKER_WAITING) => {
                    // A stale waker is still armed; disarm it so the cell
                    // can be replaced. A failure means the producer just
                    // entered WAKING; keep looping.
                    if inner
                        .waker_state
                        .compare_exchange(WAKER_WAITING, WAKER_LOCKED, SeqCst, SeqCst)
                        .is_ok()
                    {
                        break;
                    }
                    inner.stats.record_waker_retry();
                }
                // Producer mid-wake: its critical section is a read plus
                // a store, so spin it out rather than losing this waker.
                Err(_) => {
                    inner.stats.record_waker_retry();
                    std::hint::spin_loop();
                }
            }
        }
        // Safety: LOCKED grants cell ownership.
        unsafe { *inner.waker.get() = Some(waker.clone()) };
        self.armed_waker = Some(waker.clone());
        inner.waker_state.store(WAKER_WAITING, SeqCst);
        fence(SeqCst);
    }

    /// Best-effort disarm after a late value was found; the waker stays
    /// in the cell for cheap re-arming. Losing the race is fine: the
    /// producer then delivers one spurious (self-)wake, which poll
    /// semantics permit.
    fn unregister(&mut self) {
        let _ = self
            .inner
            .waker_state
            .compare_exchange(WAKER_WAITING, WAKER_EMPTY, SeqCst, SeqCst);
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        // Later sends fail fast; a send racing this store may still land
        // in the queue, where `Inner::drop` reclaims it.
        self.inner.rx_alive.store(false, Release);
    }
}

/// Future returned by [`SpscReceiver::recv`].
#[must_use = "futures do nothing unless awaited"]
pub struct SpscRecv<'a, T> {
    receiver: &'a mut SpscReceiver<T>,
}

impl<T> Future for SpscRecv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.get_mut().receiver.poll_recv(cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved_across_growth() {
        let (mut tx, mut rx) = spsc();
        for i in 0..(MIN_CAP * 8) {
            tx.send(i).unwrap();
        }
        for i in 0..(MIN_CAP * 8) {
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let (mut tx, mut rx) = spsc();
        for lap in 0..100u32 {
            for i in 0..(MIN_CAP as u32 - 1) {
                tx.send(lap * 1000 + i).unwrap();
            }
            for i in 0..(MIN_CAP as u32 - 1) {
                assert_eq!(rx.try_recv(), Some(lap * 1000 + i));
            }
        }
    }

    #[test]
    fn recv_none_after_sender_drop() {
        let (mut tx, mut rx) = spsc::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        crate::block_on(async {
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, None);
        });
    }

    #[test]
    fn send_fails_when_receiver_dropped() {
        let (mut tx, rx) = spsc::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(tx.is_closed());
    }

    #[test]
    fn cross_task_wakeup() {
        let rt = crate::Runtime::new(2);
        let (mut tx, mut rx) = spsc::<u32>();
        let consumer = rt.spawn(async move {
            let mut sum = 0;
            while let Some(v) = rx.recv().await {
                sum += v;
            }
            sum
        });
        let producer = rt.spawn(async move {
            for i in 1..=10 {
                tx.send(i).unwrap();
                crate::yield_now().await;
            }
        });
        rt.block_on(producer).unwrap();
        assert_eq!(rt.block_on(consumer).unwrap(), 55);
    }

    #[test]
    fn queued_values_dropped_exactly_once() {
        let value = Arc::new(());
        let (mut tx, mut rx) = spsc();
        for _ in 0..(MIN_CAP * 3) {
            tx.send(value.clone()).unwrap();
        }
        // Pop a few across the growth boundary, then drop the channel
        // with values still queued.
        for _ in 0..5 {
            assert!(rx.try_recv().is_some());
        }
        assert_eq!(Arc::strong_count(&value), 1 + MIN_CAP * 3 - 5);
        drop((tx, rx));
        assert_eq!(Arc::strong_count(&value), 1);
    }

    #[test]
    fn labelled_channel_reports_watermark_and_growth() {
        telemetry::channel::reset();
        let (mut tx, mut rx) = spsc_labelled::<u32>("SpscFrom", "SpscTo");
        for i in 0..(MIN_CAP as u32 * 2) {
            tx.send(i).unwrap();
        }
        for i in 0..(MIN_CAP as u32 * 2) {
            assert_eq!(rx.try_recv(), Some(i));
        }
        let links = telemetry::channel::snapshot();
        if telemetry::ENABLED {
            let link = links
                .iter()
                .find(|l| l.from == "SpscFrom" && l.to == "SpscTo")
                .expect("labelled link registered");
            assert_eq!(link.high_watermark, MIN_CAP as u64 * 2);
            assert!(link.grows >= 1);
        } else {
            assert!(links.is_empty());
        }
        telemetry::channel::reset();
    }

    #[test]
    fn len_tracks_pending() {
        let (mut tx, mut rx) = spsc();
        assert!(rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        rx.try_recv();
        assert_eq!(rx.len(), 1);
    }
}
