//! A small, self-contained asynchronous runtime.
//!
//! This crate is the substrate that stands in for Tokio in the Rumpsteak
//! reproduction. It provides exactly the features the session-typed runtime
//! in the paper relies on:
//!
//! * lightweight **tasks** multiplexed over a pool of worker threads
//!   ([`Runtime::spawn`], [`spawn`]),
//! * a **work-stealing scheduler** (one local deque per worker plus a global
//!   injector, in the style of Tokio/Rayon),
//! * waker-based **asynchronous channels** ([`channel`]) used as the session
//!   transport: lock-free SPSC rings behind the bidirectional role-to-role
//!   links, unbounded and bounded MPSC queues for genuinely multi-producer
//!   uses, and an atomic oneshot rendezvous,
//! * [`block_on`] to drive a root future from a synchronous context, and
//!   [`yield_now`] for cooperative rescheduling.
//!
//! # Example
//!
//! ```
//! use executor::{Runtime, channel::unbounded};
//!
//! let rt = Runtime::new(2);
//! let (tx, mut rx) = unbounded::<u32>();
//! let handle = rt.spawn(async move {
//!     let mut sum = 0;
//!     while let Some(v) = rx.recv().await {
//!         sum += v;
//!     }
//!     sum
//! });
//! for i in 0..10 {
//!     tx.send(i).unwrap();
//! }
//! drop(tx);
//! assert_eq!(rt.block_on(handle).unwrap(), 45);
//! ```

pub mod channel;
mod join;
mod park;
mod runtime;
mod task;
mod yield_now;

pub use join::{JoinError, JoinHandle};
pub use runtime::{block_on, spawn, Runtime};
pub use yield_now::yield_now;
