//! The multi-threaded, work-stealing runtime.
//!
//! Architecture (a deliberately small cousin of Tokio's scheduler):
//!
//! * every worker thread owns a `crossbeam_deque::Worker` (local LIFO-ish
//!   deque),
//! * a global `Injector` receives tasks spawned from outside the pool and
//!   overflow wakes,
//! * idle workers first drain their local deque, then steal a batch from the
//!   injector, then steal from siblings, and finally park on a condition
//!   variable.
//!
//! Parking uses the standard "check queues under the sleep lock" protocol so
//! that a push racing with a worker going to sleep can never be lost: the
//! pusher bumps a generation counter and notifies *while holding the lock*
//! whenever at least one worker is parked.

use std::future::Future;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle as ThreadHandle;
use std::time::Duration;

use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};

use crate::join::{self, JoinHandle};
use crate::park;
use crate::task::Task;

/// State shared between all workers and every external handle.
pub(crate) struct Shared {
    injector: Injector<Arc<Task>>,
    stealers: Vec<Stealer<Arc<Task>>>,
    /// Number of workers currently parked; lets pushers skip the sleep lock
    /// on the hot path when everyone is busy.
    sleepers: AtomicUsize,
    sleep_lock: Mutex<u64>,
    sleep_cvar: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Enqueues a task and wakes a parked worker if there is one.
    pub(crate) fn push(&self, task: Arc<Task>) {
        self.injector.push(task);
        self.notify_one();
    }

    fn notify_one(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking the lock orders this notification after any concurrent
            // queue-emptiness check performed by a worker about to park.
            let mut generation = self.sleep_lock.lock();
            *generation = generation.wrapping_add(1);
            drop(generation);
            self.sleep_cvar.notify_one();
        }
    }

    fn notify_all(&self) {
        let mut generation = self.sleep_lock.lock();
        *generation = generation.wrapping_add(1);
        drop(generation);
        self.sleep_cvar.notify_all();
    }
}

/// A handle to a pool of worker threads executing spawned futures.
///
/// Dropping the runtime signals shutdown and joins all workers; tasks that
/// have not yet completed are dropped with their resources.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<ThreadHandle<()>>,
}

impl Runtime {
    /// Creates a runtime with `threads` worker threads (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let deques: Vec<_> = (0..threads).map(|_| Deque::new_fifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();

        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(0),
            sleep_cvar: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });

        let workers = deques
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("executor-worker-{index}"))
                    .spawn(move || worker_loop(index, deque, shared))
                    .expect("failed to spawn worker thread")
            })
            .collect();

        Self { shared, workers }
    }

    /// Creates a runtime sized to the machine's available parallelism.
    pub fn with_default_threads() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(threads)
    }

    /// Spawns a future onto the pool, returning a handle to await its output.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let (result_tx, handle) = join::pair();
        let task = Task::new(
            async move {
                result_tx.complete(future.await);
            },
            self.shared.clone(),
        );
        self.shared.push(task);
        handle
    }

    /// Runs `future` to completion on the calling thread while the pool
    /// processes any tasks it spawns.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        park::block_on(future)
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(index: usize, local: Deque<Arc<Task>>, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(task) = find_task(index, &local, &shared) {
            task.run();
            continue;
        }

        // Park: re-check the queues under the sleep lock so a concurrent
        // push (which bumps the generation under the same lock) is observed.
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut generation = shared.sleep_lock.lock();
        if shared.shutdown.load(Ordering::SeqCst) {
            shared.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        if shared.injector.is_empty() {
            // A bounded wait keeps the pool resilient to any missed wake-up
            // without busy-spinning at idle.
            shared
                .sleep_cvar
                .wait_for(&mut generation, Duration::from_millis(20));
        }
        drop(generation);
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Work-finding order: local deque, then injector (batch), then siblings.
fn find_task(index: usize, local: &Deque<Arc<Task>>, shared: &Shared) -> Option<Arc<Task>> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    loop {
        match shared.injector.steal_batch_and_pop(local) {
            Steal::Success(task) => return Some(task),
            Steal::Empty => break,
            Steal::Retry => {}
        }
    }
    for (i, stealer) in shared.stealers.iter().enumerate() {
        if i == index {
            continue;
        }
        loop {
            match stealer.steal() {
                Steal::Success(task) => return Some(task),
                Steal::Empty => break,
                Steal::Retry => {}
            }
        }
    }
    None
}

/// The process-wide default runtime backing [`spawn`] and [`block_on`].
fn global() -> &'static Runtime {
    static GLOBAL: OnceLock<Runtime> = OnceLock::new();
    GLOBAL.get_or_init(Runtime::with_default_threads)
}

/// Spawns a future onto the process-wide default runtime.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    global().spawn(future)
}

/// Runs a future to completion on the current thread, using the
/// process-wide default runtime for any tasks it spawns.
pub fn block_on<F: Future>(future: F) -> F::Output {
    global();
    park::block_on(future)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn spawn_and_join_many() {
        let rt = Runtime::new(2);
        let counter = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..64)
            .map(|i| {
                let counter = counter.clone();
                rt.spawn(async move {
                    counter.fetch_add(1, Ordering::SeqCst);
                    i * 2
                })
            })
            .collect();
        let mut total = 0;
        for (i, handle) in handles.into_iter().enumerate() {
            assert_eq!(rt.block_on(handle).unwrap(), (i as u32) * 2);
            total += 1;
        }
        assert_eq!(total, 64);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn nested_spawn() {
        let rt = Runtime::new(2);
        let out = rt.block_on(async {
            let inner = crate::spawn(async { 21u32 });
            inner.await.unwrap() * 2
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn panicking_task_reports_join_error() {
        let rt = Runtime::new(1);
        let handle = rt.spawn(async {
            panic!("boom");
        });
        assert!(rt.block_on(handle).is_err());
    }

    #[test]
    fn drop_runtime_joins_workers() {
        let rt = Runtime::new(4);
        let handle = rt.spawn(async { 1u8 });
        assert_eq!(rt.block_on(handle).unwrap(), 1);
        drop(rt);
    }
}
