//! The multi-threaded, work-stealing runtime.
//!
//! Architecture (a deliberately small cousin of Tokio's scheduler):
//!
//! * every worker thread owns a `crossbeam_deque::Worker` (local FIFO run
//!   queue) plus a **LIFO slot** holding the most recently woken task, so a
//!   wake performed *by* a worker (the ping-pong message-passing pattern)
//!   is polled next on the same core without touching any shared queue,
//! * the LIFO slot is reserved for *wakes* — the channel layer's waker
//!   handoff lands the woken receiver exactly there, which is the
//!   direct-handoff path for session ping-pong. Fresh spawns from a
//!   worker go to the back of its FIFO deque instead, and a deque grown
//!   past a threshold spills its oldest half into the injector so spawn
//!   storms cannot grow a local queue without bound,
//! * a global lock-free `Injector` receives tasks scheduled from outside
//!   the pool (spawns, cross-thread wakes) plus spilled local backlogs,
//! * idle workers first drain the LIFO slot and local deque, then
//!   batch-steal from the injector, then batch-steal from a sibling
//!   (random start index to spread contention), and finally park.
//!
//! Wake-ups are O(1) and lock-free: pushers consult a **searching-worker
//! count** — if any worker is already hunting for work, no wake is needed
//! at all — and otherwise claim one parked worker from an atomic bitmask
//! and unpark exactly that thread (each worker has a private parker, so
//! wake-ups of distinct workers never serialise on one mutex). The
//! Dekker-style handshake is the classic one: a pusher publishes its task
//! *before* reading the searching count/bitmask, a parking worker
//! publishes its bitmask bit *before* re-checking the queues, with `SeqCst`
//! fences supplying the store-load ordering on both sides, so at least one
//! side always observes the other and no wake is lost.

use std::cell::Cell;
use std::future::Future;
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle as ThreadHandle;
use std::time::Duration;

use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use dep_telemetry as telemetry;
use telemetry::scheduler::Counters;
use telemetry::CachePadded;

use crate::join::{self, JoinHandle};
use crate::park;
use crate::task::Task;

/// Upper bound on pool size: parked workers live in one `AtomicU64` bitmask.
const MAX_WORKERS: usize = 64;

/// Consecutive polls a worker may take from its LIFO slot before deferring
/// to the FIFO deque, so a hot ping-pong pair cannot starve queued tasks.
const LIFO_STREAK_LIMIT: u32 = 32;

/// Local-deque length past which the owner spills the oldest half into the
/// global injector. Bounds local queue growth under spawn storms (a task
/// spawning thousands of children would otherwise grow its worker's deque
/// without limit, since sibling steals move at most a small batch each)
/// and shares the backlog with the whole pool in one go.
const LOCAL_SPILL_LIMIT: usize = 256;

/// Belt-and-braces park timeout: with a correct handshake no wake is ever
/// lost, but a bounded sleep keeps the pool live under any missed-wake bug
/// without measurable idle cost.
const PARK_TIMEOUT: Duration = Duration::from_millis(25);

/// A per-worker parker: a three-state atomic plus the worker's thread
/// handle. `unpark` is wait-free; `park` blocks on `std::thread::park`.
struct Parker {
    /// 0 = empty, 1 = parked, 2 = notified.
    state: AtomicUsize,
    /// Set once by the worker thread before it first registers as parked.
    thread: OnceLock<std::thread::Thread>,
}

const PARKER_EMPTY: usize = 0;
const PARKER_PARKED: usize = 1;
const PARKER_NOTIFIED: usize = 2;

impl Parker {
    fn new() -> Self {
        Self {
            state: AtomicUsize::new(PARKER_EMPTY),
            thread: OnceLock::new(),
        }
    }

    /// Blocks until notified or `timeout` elapses. Consumes at most one
    /// notification; spurious returns are allowed (the caller re-checks).
    fn park(&self, timeout: Duration) {
        match self.state.compare_exchange(
            PARKER_EMPTY,
            PARKER_PARKED,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => {}
            Err(_) => {
                // A notification already arrived.
                self.state.store(PARKER_EMPTY, Ordering::SeqCst);
                return;
            }
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let now = std::time::Instant::now();
            if now >= deadline || self.state.load(Ordering::SeqCst) == PARKER_NOTIFIED {
                break;
            }
            std::thread::park_timeout(deadline - now);
        }
        self.state.store(PARKER_EMPTY, Ordering::SeqCst);
    }

    /// Wakes the owning worker if it is (or is about to start) parking.
    fn unpark(&self) {
        if self.state.swap(PARKER_NOTIFIED, Ordering::SeqCst) == PARKER_PARKED {
            if let Some(thread) = self.thread.get() {
                thread.unpark();
            }
        }
    }
}

/// State shared between all workers and every external handle.
pub(crate) struct Shared {
    injector: Injector<Arc<Task>>,
    stealers: Vec<Stealer<Arc<Task>>>,
    parkers: Vec<Parker>,
    /// Number of workers currently stealing (out of local work but not yet
    /// parked). Pushers skip the wake entirely while this is non-zero: a
    /// searcher is guaranteed to find the new task before it sleeps.
    searching: AtomicUsize,
    /// Bit `i` set ⇔ worker `i` is parked and may be claimed by a waker.
    parked: AtomicU64,
    shutdown: AtomicBool,
    /// One cache-padded counter block per worker plus a final "external"
    /// block for operations performed off the pool. Zero-sized (and
    /// untouched) unless the `telemetry` feature is on.
    counters: Box<[CachePadded<Counters>]>,
}

impl Shared {
    /// Enqueues a task from outside any worker and wakes a worker for it.
    pub(crate) fn push(&self, task: Arc<Task>) {
        self.injector.push(task);
        self.notify();
    }

    /// Schedules a *woken* task — the receiver of a message, a completed
    /// join, any waker fire. On a worker thread of this runtime the task
    /// goes into the LIFO slot (displacing any occupant into the deque):
    /// this is the direct-handoff path — a channel send performed by a
    /// worker places the woken receiver where that same worker polls next,
    /// so ping-pong message passing never touches a shared queue.
    /// Everywhere else the task goes through the injector.
    pub(crate) fn schedule(self: &Arc<Self>, task: Arc<Task>) {
        let task = CONTEXT.with(|context| {
            let context = context.get();
            if context.is_null() {
                return Some(task);
            }
            // Safety: the pointer is registered by `worker_loop` on this
            // thread and cleared (via `ContextGuard`) before the context is
            // dropped, so a non-null value is always live.
            let context = unsafe { &*context };
            if !ptr::eq(Arc::as_ptr(self), context.shared) {
                // A worker of some *other* runtime: fall through.
                return Some(task);
            }
            if let Some(displaced) = context.lifo.replace(Some(task)) {
                context.deque.push(displaced);
                if context.deque.len() >= LOCAL_SPILL_LIMIT {
                    self.counters[context.index].spills.incr();
                    self.spill_local(&context.deque);
                }
                // Surplus local work that siblings could pick up.
                self.notify();
            }
            None
        });
        if let Some(task) = task {
            self.push(task);
        }
    }

    /// Schedules a freshly *spawned* task. Unlike a wake, a spawn never
    /// claims the LIFO slot (that would let a spawn storm displace the hot
    /// message-passing task): on a worker thread of this runtime it goes
    /// to the back of the local FIFO deque, elsewhere through the
    /// injector.
    pub(crate) fn schedule_new(self: &Arc<Self>, task: Arc<Task>) {
        let task = CONTEXT.with(|context| {
            let context = context.get();
            if context.is_null() {
                return Some(task);
            }
            // Safety: as in `schedule`.
            let context = unsafe { &*context };
            if !ptr::eq(Arc::as_ptr(self), context.shared) {
                return Some(task);
            }
            self.counters[context.index].spawns.incr();
            context.deque.push(task);
            if context.deque.len() >= LOCAL_SPILL_LIMIT {
                self.counters[context.index].spills.incr();
                self.spill_local(&context.deque);
            }
            self.notify();
            None
        });
        if let Some(task) = task {
            self.counters[self.counters.len() - 1].spawns.incr();
            self.push(task);
        }
    }

    /// Moves the oldest half of an overlong local deque into the global
    /// injector, where any worker can batch-claim it. Called by the owner
    /// from its own push paths only — never after injector takeover, which
    /// would bounce the same tasks back and forth.
    #[cold]
    fn spill_local(&self, deque: &Deque<Arc<Task>>) {
        while deque.len() > LOCAL_SPILL_LIMIT / 2 {
            match deque.pop() {
                Some(task) => self.injector.push(task),
                None => break,
            }
        }
    }

    /// Wakes one parked worker, unless a searcher already has it covered.
    fn notify(&self) {
        // Order the preceding queue push before the searching/parked reads
        // (store-load: the Release queue publication alone is not enough).
        fence(Ordering::SeqCst);
        if self.searching.load(Ordering::Relaxed) > 0 {
            return;
        }
        self.unpark_one();
    }

    /// Claims and wakes one parked worker; O(1), lock-free.
    fn unpark_one(&self) {
        let mut mask = self.parked.load(Ordering::SeqCst);
        while mask != 0 {
            let index = mask.trailing_zeros() as usize;
            match self.parked.compare_exchange(
                mask,
                mask & !(1 << index),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    // The claimed worker wakes up *already searching*, so
                    // concurrent pushes see `searching > 0` and skip their
                    // own wakes instead of stampeding the remaining
                    // sleepers.
                    self.searching.fetch_add(1, Ordering::SeqCst);
                    self.counters[index].unparks.incr();
                    self.parkers[index].unpark();
                    return;
                }
                Err(actual) => mask = actual,
            }
        }
    }

    /// True if any shared queue (injector or a sibling deque) has work.
    fn work_available(&self) -> bool {
        !self.injector.is_empty() || self.stealers.iter().any(|stealer| !stealer.is_empty())
    }

    /// The counter block of the calling thread: the worker's own block on
    /// a worker of *this* runtime, the external block anywhere else.
    /// Callers guard with `telemetry::ENABLED` so disabled builds skip
    /// the thread-local lookup entirely.
    fn counters_here(&self) -> &Counters {
        let index = CONTEXT.with(|context| {
            let context = context.get();
            if context.is_null() {
                return None;
            }
            // Safety: as in `schedule`.
            let context = unsafe { &*context };
            ptr::eq(self, context.shared).then_some(context.index)
        });
        &self.counters[index.unwrap_or(self.counters.len() - 1)]
    }

    /// Records one poll of a scheduled task on the calling thread.
    pub(crate) fn record_poll(&self) {
        if telemetry::ENABLED {
            self.counters_here().polls.incr();
        }
    }

    /// Records a task future driven to completion on the calling thread.
    pub(crate) fn record_completion(&self) {
        if telemetry::ENABLED {
            self.counters_here().completions.incr();
        }
    }

    /// Removes this worker's parked bit. Returns false if a waker claimed
    /// the bit first (and therefore incremented `searching` on our behalf).
    fn unregister_parked(&self, index: usize) -> bool {
        let bit = 1u64 << index;
        let mut mask = self.parked.load(Ordering::SeqCst);
        loop {
            if mask & bit == 0 {
                return false;
            }
            match self.parked.compare_exchange(
                mask,
                mask & !bit,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(actual) => mask = actual,
            }
        }
    }
}

/// Thread-local state of a worker, reachable from wakers running on that
/// worker's thread via [`CONTEXT`].
struct WorkerContext {
    /// Identifies the runtime this worker belongs to.
    shared: *const Shared,
    /// This worker's index into `Shared::stealers`/`parkers`/`counters`.
    index: usize,
    deque: Deque<Arc<Task>>,
    /// The most recently woken task; polled next, ahead of the deque.
    lifo: Cell<Option<Arc<Task>>>,
}

thread_local! {
    static CONTEXT: Cell<*const WorkerContext> = const { Cell::new(ptr::null()) };
}

/// Clears the thread-local context pointer even on unwind.
struct ContextGuard;

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|context| context.set(ptr::null()));
    }
}

/// A handle to a pool of worker threads executing spawned futures.
///
/// Dropping the runtime signals shutdown and joins all workers; tasks that
/// have not yet completed are dropped with their resources.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<ThreadHandle<()>>,
}

impl Runtime {
    /// Creates a runtime with `threads` worker threads (clamped to 1..=64).
    pub fn new(threads: usize) -> Self {
        let threads = threads.clamp(1, MAX_WORKERS);
        let deques: Vec<_> = (0..threads).map(|_| Deque::new_fifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();

        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            parkers: (0..threads).map(|_| Parker::new()).collect(),
            searching: AtomicUsize::new(0),
            parked: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            // One block per worker plus the trailing external block.
            counters: (0..threads + 1).map(|_| CachePadded::default()).collect(),
        });

        let workers = deques
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("executor-worker-{index}"))
                    .spawn(move || worker_loop(index, deque, shared))
                    .expect("failed to spawn worker thread")
            })
            .collect();

        if telemetry::ENABLED {
            // Register as a global scheduler-telemetry source for
            // pull-based consumers (the metrics endpoint). The weak
            // handle keeps a dropped runtime from being pinned alive by
            // the registry; its source then reports zeros.
            let weak = Arc::downgrade(&shared);
            telemetry::scheduler::register_source(move || match weak.upgrade() {
                Some(shared) => snapshot_shared(&shared),
                None => telemetry::scheduler::RuntimeSnapshot::default(),
            });
        }

        Self { shared, workers }
    }

    /// Creates a runtime sized to the machine's available parallelism.
    pub fn with_default_threads() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(threads)
    }

    /// Spawns a future onto the pool, returning a handle to await its output.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let (result_tx, handle) = join::pair();
        let task = Task::new(
            async move {
                result_tx.complete(future.await);
            },
            self.shared.clone(),
        );
        self.shared.schedule_new(task);
        handle
    }

    /// Runs `future` to completion on the calling thread while the pool
    /// processes any tasks it spawns.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        park::block_on(future)
    }

    /// Snapshots the scheduler counters: one block per worker plus the
    /// external block (operations from threads outside the pool). All
    /// zeros unless built with the `telemetry` feature. Counts are exact
    /// once the pool is quiescent (no task running or queued).
    pub fn telemetry(&self) -> telemetry::scheduler::RuntimeSnapshot {
        snapshot_shared(&self.shared)
    }
}

/// Reads every counter block of one pool into a snapshot.
fn snapshot_shared(shared: &Shared) -> telemetry::scheduler::RuntimeSnapshot {
    let workers = shared.parkers.len();
    telemetry::scheduler::RuntimeSnapshot {
        workers: shared.counters[..workers]
            .iter()
            .map(|block| block.snapshot())
            .collect(),
        external: shared.counters[workers].snapshot(),
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for parker in &self.shared.parkers {
            parker.unpark();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Cheap per-worker xorshift RNG choosing steal victims.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn worker_loop(index: usize, deque: Deque<Arc<Task>>, shared: Arc<Shared>) {
    shared.parkers[index]
        .thread
        .set(std::thread::current())
        .expect("worker thread registered twice");

    let context = WorkerContext {
        shared: Arc::as_ptr(&shared),
        index,
        deque,
        lifo: Cell::new(None),
    };
    CONTEXT.with(|slot| slot.set(&context as *const WorkerContext));
    let _guard = ContextGuard;

    let counters = &shared.counters[index];
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15 ^ (index as u64 + 1));
    let mut lifo_streak = 0u32;
    let mut tick = 0u32;

    'run: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        tick = tick.wrapping_add(1);

        // Periodically service the injector first so local floods cannot
        // starve externally spawned tasks.
        if tick.is_multiple_of(61) {
            if let Steal::Success(task) = shared.injector.steal_batch_and_pop(&context.deque) {
                counters.injector_pops.incr();
                task.run();
                continue;
            }
        }

        // 1. LIFO slot: the task most recently woken from this thread.
        if lifo_streak < LIFO_STREAK_LIMIT {
            if let Some(task) = context.lifo.take() {
                lifo_streak += 1;
                counters.lifo_hits.incr();
                task.run();
                continue;
            }
        } else if let Some(task) = context.lifo.take() {
            // Streak exhausted: demote the slot occupant to the deque and
            // take fairness path below.
            context.deque.push(task);
        }
        lifo_streak = 0;

        // 2. Local FIFO deque.
        if let Some(task) = context.deque.pop() {
            counters.local_pops.incr();
            task.run();
            continue;
        }

        // 3. Out of local work: become a searcher and steal.
        shared.searching.fetch_add(1, Ordering::SeqCst);
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                shared.searching.fetch_sub(1, Ordering::SeqCst);
                return;
            }
            if let Some(task) = steal_work(index, &context.deque, &shared, &mut rng) {
                // Last searcher found work: if more remains, wake a sibling
                // to keep draining it in parallel.
                if shared.searching.fetch_sub(1, Ordering::SeqCst) == 1
                    && (!context.deque.is_empty() || !shared.injector.is_empty())
                {
                    shared.unpark_one();
                }
                task.run();
                continue 'run;
            }

            // 4. Nothing anywhere: stop searching and park. The *last*
            // searcher re-checks the queues first — pushers skip wakes
            // while `searching > 0`, so someone must cover a task pushed
            // in that window.
            if shared.searching.fetch_sub(1, Ordering::SeqCst) == 1 && shared.work_available() {
                shared.searching.fetch_add(1, Ordering::SeqCst);
                continue;
            }

            shared.parked.fetch_or(1 << index, Ordering::SeqCst);
            // Store-load: the bit must be visible before the emptiness
            // re-check, mirroring the fence in `notify`.
            fence(Ordering::SeqCst);
            if shared.shutdown.load(Ordering::SeqCst) || shared.work_available() {
                if shared.unregister_parked(index) {
                    // We got our bit back: nobody woke us, resume searching
                    // on our own account.
                    shared.searching.fetch_add(1, Ordering::SeqCst);
                } // else: a waker claimed us and already marked us searching.
                continue;
            }

            counters.parks.incr();
            shared.parkers[index].park(PARK_TIMEOUT);
            if shared.unregister_parked(index) {
                // Timed out (or spurious wake): nobody claimed the bit.
                shared.searching.fetch_add(1, Ordering::SeqCst);
            } // else: claimed by a waker, which incremented `searching`.
        }
    }
}

/// Steal order: batch from the injector, then batch from a sibling chosen
/// at a random starting index.
fn steal_work(
    index: usize,
    local: &Deque<Arc<Task>>,
    shared: &Shared,
    rng: &mut Rng,
) -> Option<Arc<Task>> {
    let counters = &shared.counters[index];
    loop {
        match shared.injector.steal_batch_and_pop(local) {
            Steal::Success(task) => {
                counters.injector_pops.incr();
                return Some(task);
            }
            Steal::Empty => break,
            Steal::Retry => {}
        }
    }
    let siblings = shared.stealers.len();
    let start = (rng.next() % siblings.max(1) as u64) as usize;
    for offset in 0..siblings {
        let victim = (start + offset) % siblings;
        if victim == index {
            continue;
        }
        loop {
            match shared.stealers[victim].steal_batch_and_pop(local) {
                Steal::Success(task) => {
                    counters.sibling_steals.incr();
                    return Some(task);
                }
                Steal::Empty => break,
                Steal::Retry => {}
            }
        }
    }
    None
}

/// The process-wide default runtime backing [`spawn`] and [`block_on`].
fn global() -> &'static Runtime {
    static GLOBAL: OnceLock<Runtime> = OnceLock::new();
    GLOBAL.get_or_init(Runtime::with_default_threads)
}

/// Spawns a future onto the process-wide default runtime.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    global().spawn(future)
}

/// Runs a future to completion on the current thread, using the
/// process-wide default runtime for any tasks it spawns.
pub fn block_on<F: Future>(future: F) -> F::Output {
    global();
    park::block_on(future)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn spawn_and_join_many() {
        let rt = Runtime::new(2);
        let counter = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..64)
            .map(|i| {
                let counter = counter.clone();
                rt.spawn(async move {
                    counter.fetch_add(1, Ordering::SeqCst);
                    i * 2
                })
            })
            .collect();
        let mut total = 0;
        for (i, handle) in handles.into_iter().enumerate() {
            assert_eq!(rt.block_on(handle).unwrap(), (i as u32) * 2);
            total += 1;
        }
        assert_eq!(total, 64);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn nested_spawn() {
        let rt = Runtime::new(2);
        let out = rt.block_on(async {
            let inner = crate::spawn(async { 21u32 });
            inner.await.unwrap() * 2
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn panicking_task_reports_join_error() {
        let rt = Runtime::new(1);
        let handle = rt.spawn(async {
            panic!("boom");
        });
        assert!(rt.block_on(handle).is_err());
    }

    #[test]
    fn drop_runtime_joins_workers() {
        let rt = Runtime::new(4);
        let handle = rt.spawn(async { 1u8 });
        assert_eq!(rt.block_on(handle).unwrap(), 1);
        drop(rt);
    }

    #[test]
    fn two_runtimes_do_not_cross_schedule() {
        // A task on runtime A waking a task on runtime B must route the
        // wake through B's injector, not A's worker-local queues.
        let rt_a = Runtime::new(1);
        let rt_b = Runtime::new(1);
        let (tx, mut rx) = crate::channel::unbounded::<u32>();
        let consumer = rt_b.spawn(async move { rx.recv().await });
        let producer = rt_a.spawn(async move {
            tx.send(5).unwrap();
        });
        rt_a.block_on(producer).unwrap();
        assert_eq!(rt_b.block_on(consumer).unwrap(), Some(5));
    }
}
