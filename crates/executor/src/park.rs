//! Blocking a synchronous thread on a single future.

use std::future::Future;
use std::pin::pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// Waker that unparks a specific OS thread, with an `notified` flag to
/// absorb wakes that arrive before the thread parks (avoiding lost wakeups).
struct ThreadWaker {
    thread: Thread,
    notified: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.notified.swap(true, Ordering::SeqCst) {
            self.thread.unpark();
        }
    }
}

/// Polls `future` to completion, parking the current thread between polls.
pub(crate) fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = pin!(future);
    let parker = Arc::new(ThreadWaker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(parker.clone());
    let mut cx = Context::from_waker(&waker);

    loop {
        if let Poll::Ready(output) = future.as_mut().poll(&mut cx) {
            return output;
        }
        // Park until a wake arrives; consume a pre-delivered notification
        // first so a wake between poll and park is never lost.
        while !parker.notified.swap(false, Ordering::SeqCst) {
            std::thread::park();
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn block_on_ready_future() {
        assert_eq!(super::block_on(async { 7 }), 7);
    }

    #[test]
    fn block_on_crossthread_wake() {
        let (tx, mut rx) = crate::channel::unbounded::<u32>();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(99).unwrap();
        });
        assert_eq!(super::block_on(rx.recv()), Some(99));
        sender.join().unwrap();
    }
}
