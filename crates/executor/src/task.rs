//! The task abstraction: a future paired with its scheduling state.
//!
//! A [`Task`] owns a boxed future and a small atomic state machine that
//! guarantees each task is scheduled at most once at a time, however many
//! wakers fire concurrently. The state machine is the classic five-state
//! design used by production executors:
//!
//! ```text
//!        wake()                 run()                 poll Ready
//! Idle ----------> Scheduled ----------> Running ----------------> Done
//!   ^                                    |    ^ wake() while running
//!   |             poll Pending           v    |
//!   +------------------------------- Notified (re-queued after poll)
//! ```

use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::Mutex;

use crate::runtime::Shared;

/// Task is not currently queued or running; a wake will schedule it.
const IDLE: u8 = 0;
/// Task sits in a run queue waiting for a worker.
const SCHEDULED: u8 = 1;
/// A worker is currently polling the task's future.
const RUNNING: u8 = 2;
/// The task was woken while running and must be re-queued after the poll.
const NOTIFIED: u8 = 3;
/// The future completed (or panicked); further wakes are no-ops.
const DONE: u8 = 4;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// A spawned unit of work: a future plus its scheduling state.
pub(crate) struct Task {
    state: AtomicU8,
    /// The future being driven. `None` once complete. The mutex is
    /// uncontended in practice: the state machine ensures a single poller.
    future: Mutex<Option<BoxFuture>>,
    /// Handle back to the runtime used to re-queue on wake.
    shared: Arc<Shared>,
}

impl Task {
    /// Wraps `future` in a new task bound to the runtime `shared`.
    ///
    /// The task starts in the [`SCHEDULED`] state: the caller is expected to
    /// push it onto a run queue immediately.
    pub(crate) fn new(
        future: impl Future<Output = ()> + Send + 'static,
        shared: Arc<Shared>,
    ) -> Arc<Self> {
        Arc::new(Self {
            state: AtomicU8::new(SCHEDULED),
            future: Mutex::new(Some(Box::pin(future))),
            shared,
        })
    }

    /// Transitions the task towards being queued, pushing it onto the
    /// runtime's injector when the transition wins.
    fn schedule(self: &Arc<Self>) {
        let mut state = self.state.load(Ordering::Acquire);
        loop {
            let next = match state {
                IDLE => SCHEDULED,
                RUNNING => NOTIFIED,
                // Already queued, about to be re-queued, or finished.
                SCHEDULED | NOTIFIED | DONE => return,
                _ => unreachable!("invalid task state {state}"),
            };
            match self
                .state
                .compare_exchange_weak(state, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    if next == SCHEDULED {
                        self.shared.schedule(self.clone());
                    }
                    return;
                }
                Err(actual) => state = actual,
            }
        }
    }

    /// Polls the future once. Called by a worker that dequeued the task.
    pub(crate) fn run(self: Arc<Self>) {
        // SCHEDULED -> RUNNING. The task can only be dequeued once per
        // schedule, so this cannot race with another `run`.
        self.state.store(RUNNING, Ordering::Release);
        self.shared.record_poll();

        let waker = Waker::from(self.clone());
        let mut cx = Context::from_waker(&waker);

        let poll = {
            let mut slot = self.future.lock();
            let Some(future) = slot.as_mut() else {
                // Completed by a previous poll; stale queue entry.
                self.state.store(DONE, Ordering::Release);
                return;
            };
            // A panicking task must not poison the worker: treat a panic as
            // completion. The JoinHandle observes it as a dropped result.
            match catch_unwind(AssertUnwindSafe(|| future.as_mut().poll(&mut cx))) {
                Ok(poll) => {
                    if poll.is_ready() {
                        *slot = None;
                    }
                    poll
                }
                Err(_) => {
                    *slot = None;
                    Poll::Ready(())
                }
            }
        };

        if poll.is_ready() {
            self.state.store(DONE, Ordering::Release);
            self.shared.record_completion();
            return;
        }

        // RUNNING -> IDLE, unless a wake arrived mid-poll (NOTIFIED), in
        // which case the task goes straight back onto the queue.
        match self
            .state
            .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {}
            Err(NOTIFIED) => {
                self.state.store(SCHEDULED, Ordering::Release);
                self.shared.schedule(self.clone());
            }
            Err(other) => unreachable!("invalid post-poll task state {other}"),
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.schedule();
    }
}
