//! Scheduler-counter invariants under a multi-worker stress load.
//!
//! Runs with and without the `telemetry` feature (CI exercises both): in
//! the disabled build every snapshot is all-zeros and the accounting
//! assertions are skipped; in the enabled build the totals must be
//! *exact* once the pool is quiescent — counters are relaxed atomics, but
//! each one is only ever incremented by the thread that performed the
//! counted operation, so at rest the sums have nothing left in flight.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dep_telemetry as telemetry;
use executor::Runtime;

/// Awaiting a `JoinHandle` races the worker's post-poll bookkeeping: the
/// handle resolves from inside the future, a moment before the worker
/// records the completion. Wait for the ledger to settle before reading
/// it (bounded; panics only via the caller's asserts on the last state).
fn settled(rt: &Runtime, completions: u64) -> telemetry::scheduler::RuntimeSnapshot {
    let mut snapshot = rt.telemetry();
    if !telemetry::ENABLED {
        return snapshot;
    }
    for _ in 0..5_000 {
        let total = snapshot.total();
        if total.completions == completions && total.polls == total.pops() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
        snapshot = rt.telemetry();
    }
    snapshot
}

/// Spawn a fan-out/fan-in workload with cross-task wakes, then check the
/// ledger: every spawn completed, every poll came from exactly one queue
/// source, and steal/injector traffic is consistent.
#[test]
fn counters_balance_after_stress() {
    const TASKS: u64 = 2_000;
    const CHILDREN: u64 = 4;

    let rt = Arc::new(Runtime::new(4));
    let completed = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..TASKS)
        .map(|i| {
            let completed = completed.clone();
            let rt_inner = rt.clone();
            rt.spawn(async move {
                // Children force worker-side spawns; the channel round
                // trip forces waker-driven reschedules (extra polls).
                let (tx, mut rx) = executor::channel::unbounded::<u64>();
                let children: Vec<_> = (0..CHILDREN)
                    .map(|j| {
                        let tx = tx.clone();
                        rt_inner.spawn(async move {
                            tx.send(i + j).unwrap();
                            j
                        })
                    })
                    .collect();
                drop(tx);
                let mut sum = 0;
                while let Some(v) = rx.recv().await {
                    sum += v;
                }
                for child in children {
                    child.await.unwrap();
                }
                completed.fetch_add(1, Ordering::SeqCst);
                sum
            })
        })
        .collect();

    for handle in handles {
        rt.block_on(handle).unwrap();
    }
    assert_eq!(completed.load(Ordering::SeqCst), TASKS);

    let snapshot = settled(&rt, TASKS * (1 + CHILDREN));
    let total = snapshot.total();

    if !telemetry::ENABLED {
        assert_eq!(total, Default::default());
        assert!(snapshot.workers.iter().all(|w| *w == Default::default()));
        return;
    }

    assert_eq!(snapshot.workers.len(), 4);

    // Exact spawn accounting: the root tasks (spawned from this test
    // thread, i.e. the external block) plus every worker-side child.
    let spawned = TASKS * (1 + CHILDREN);
    assert_eq!(total.spawns, spawned, "spawns: {total:?}");
    assert_eq!(snapshot.external.spawns, TASKS, "external spawns");

    // Every spawned task ran to completion, on some worker.
    assert_eq!(total.completions, spawned, "completions: {total:?}");
    assert_eq!(snapshot.external.completions, 0);

    // Each poll was served by exactly one queue source, and nothing is
    // left queued: the two ledgers must agree exactly at quiescence.
    assert_eq!(
        total.polls,
        total.pops(),
        "polls vs queue sources: {total:?}"
    );
    // At minimum every task was polled once.
    assert!(total.polls >= spawned, "polls: {total:?}");

    // The external block never pops work (only workers run tasks).
    assert_eq!(snapshot.external.pops(), 0);
    assert_eq!(snapshot.external.polls, 0);

    // Root tasks arrive via the injector, so injector takeovers must
    // have happened; with 4 workers under this load the pool parked and
    // woke at least once.
    assert!(total.injector_pops > 0, "injector_pops: {total:?}");
}

/// A single-worker runtime cannot steal from siblings, and the LIFO
/// direct-handoff path must dominate a ping-pong workload.
#[test]
fn single_worker_has_no_sibling_steals() {
    let rt = Runtime::new(1);
    let (mut a, mut b) = executor::channel::Bidirectional::pair();
    let echo = rt.spawn(async move {
        while let Some(v) = b.recv().await {
            if v == 0 {
                break;
            }
            b.send(v).unwrap();
        }
    });
    let driver = rt.spawn(async move {
        for i in 1..=100u32 {
            a.send(i).unwrap();
            assert_eq!(a.recv().await, Some(i));
        }
        a.send(0).unwrap();
    });
    rt.block_on(driver).unwrap();
    rt.block_on(echo).unwrap();

    let total = settled(&rt, 2).total();
    if telemetry::ENABLED {
        assert_eq!(total.sibling_steals, 0);
        assert_eq!(total.spawns, 2);
        assert_eq!(total.completions, 2);
        assert_eq!(total.polls, total.pops());
        // The ping-pong wake pattern runs through the LIFO slot.
        assert!(total.lifo_hits > 0, "lifo_hits: {total:?}");
    } else {
        assert_eq!(total, Default::default());
    }
}
