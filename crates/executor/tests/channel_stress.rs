//! SPSC channel stress suite: two-thread exactly-once/in-order delivery,
//! growth racing concurrent receives, endpoint drop races, zero-sized
//! payloads and waker-handoff interleavings.
//!
//! CI runs this file under `--release` (see `.github/workflows/ci.yml`);
//! the iteration counts scale down in debug builds so plain `cargo test`
//! stays fast.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use executor::channel::{spsc, spsc_bounded, Bidirectional, TrySendError};
use executor::Runtime;

#[cfg(debug_assertions)]
const MESSAGES: u64 = 20_000;
#[cfg(not(debug_assertions))]
const MESSAGES: u64 = 500_000;

#[cfg(debug_assertions)]
const RACE_ITERATIONS: u64 = 50;
#[cfg(not(debug_assertions))]
const RACE_ITERATIONS: u64 = 500;

/// Splitmix-style deterministic RNG so failures reproduce.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A producer OS thread floods the ring while a consumer thread drains it
/// through the waker path (`block_on(recv())`): every message arrives
/// exactly once, in order, across many buffer growths and wraparounds.
#[test]
fn two_thread_exactly_once_in_order() {
    let (mut tx, mut rx) = spsc::<u64>();
    let producer = std::thread::spawn(move || {
        for i in 0..MESSAGES {
            tx.send(i).unwrap();
            if i % 4096 == 0 {
                // Let the consumer catch up sometimes so the ring sees
                // both near-empty and deeply-backlogged (grown) phases.
                std::thread::yield_now();
            }
        }
    });
    executor::block_on(async {
        for expected in 0..MESSAGES {
            assert_eq!(rx.recv().await, Some(expected));
        }
        assert_eq!(rx.recv().await, None);
    });
    producer.join().unwrap();
}

/// Forces growth *while* the consumer is actively popping: the producer
/// sends bursts sized past the current backlog, the consumer pops
/// concurrently, so copies into the doubled buffer race pops from the
/// retired one. Order must still be total.
#[test]
fn grow_during_recv() {
    for iteration in 0..RACE_ITERATIONS {
        let (mut tx, mut rx) = spsc::<u64>();
        let mut seed = iteration;
        let bursts: Vec<u64> = (0..32).map(|_| 1 + next_rand(&mut seed) % 96).collect();
        let total: u64 = bursts.iter().sum();
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            for burst in bursts {
                for _ in 0..burst {
                    tx.send(next).unwrap();
                    next += 1;
                }
            }
        });
        let mut expected = 0u64;
        while expected < total {
            if let Some(value) = rx.try_recv() {
                assert_eq!(value, expected, "iteration {iteration}");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        assert!(rx.try_recv().is_none());
        producer.join().unwrap();
    }
}

/// Drops the receiver at a random point mid-stream: the producer must
/// observe closure as a clean `SendError` (never a crash or a hang), and
/// everything received up to the drop must be an in-order prefix.
#[test]
fn receiver_drop_races_sender() {
    for iteration in 0..RACE_ITERATIONS {
        let (mut tx, mut rx) = spsc::<u64>();
        let mut seed = 0xD00D ^ iteration;
        let keep = next_rand(&mut seed) % 64;
        let producer = std::thread::spawn(move || {
            let mut sent = 0u64;
            loop {
                if tx.send(sent).is_err() {
                    return sent;
                }
                sent += 1;
            }
        });
        let mut received = 0u64;
        while received < keep {
            if let Some(value) = rx.try_recv() {
                assert_eq!(value, received, "iteration {iteration}");
                received += 1;
            }
        }
        drop(rx);
        // The producer exits only via the SendError path.
        let sent = producer.join().unwrap();
        assert!(sent >= received, "iteration {iteration}");
    }
}

/// Drops the sender at a random point: the receiver must drain exactly
/// the messages sent before the drop and then resolve to `None` through
/// the waker path (the drop must wake a parked receiver).
#[test]
fn sender_drop_races_receiver() {
    for iteration in 0..RACE_ITERATIONS {
        let (mut tx, mut rx) = spsc::<u64>();
        let mut seed = 0xBEEF ^ iteration;
        let count = next_rand(&mut seed) % 128;
        let producer = std::thread::spawn(move || {
            for i in 0..count {
                tx.send(i).unwrap();
            }
            // tx drops here, mid-race with the draining receiver.
        });
        let drained = executor::block_on(async {
            let mut drained = 0u64;
            while let Some(value) = rx.recv().await {
                assert_eq!(value, drained, "iteration {iteration}");
                drained += 1;
            }
            drained
        });
        assert_eq!(drained, count, "iteration {iteration}");
        producer.join().unwrap();
    }
}

/// Zero-sized payloads: indices, not slot contents, carry the protocol.
/// Also pins drop-exactly-once semantics via a drop-counting ZST.
#[test]
fn zero_sized_payloads() {
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    #[derive(Debug)]
    struct Token;
    impl Drop for Token {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }

    let (mut tx, mut rx) = spsc::<()>();
    for _ in 0..1000 {
        tx.send(()).unwrap();
    }
    let mut count = 0;
    while rx.try_recv().is_some() {
        count += 1;
    }
    assert_eq!(count, 1000);

    // 300 tokens sent, 100 received (dropped by the caller), 200 left
    // queued when the channel drops: every token drops exactly once.
    let (mut tx, mut rx) = spsc::<Token>();
    for _ in 0..300 {
        tx.send(Token).unwrap();
    }
    for _ in 0..100 {
        assert!(rx.try_recv().is_some());
    }
    assert_eq!(DROPS.load(Ordering::Relaxed), 100);
    drop((tx, rx));
    assert_eq!(DROPS.load(Ordering::Relaxed), 300);
}

/// Hammers the register/wake handshake: ping-pong pairs over
/// `Bidirectional` links with randomized yield patterns, across 1, 2 and
/// 8 workers (1 worker maximises LIFO-slot handoffs; oversubscription
/// maximises cross-thread register/wake races).
#[test]
fn waker_handoff_interleavings() {
    const PAIRS: usize = 4;
    #[cfg(debug_assertions)]
    const ROUNDS: u32 = 200;
    #[cfg(not(debug_assertions))]
    const ROUNDS: u32 = 2000;

    for workers in [1, 2, 8] {
        let rt = Runtime::new(workers);
        let handles: Vec<_> = (0..PAIRS)
            .flat_map(|pair| {
                let (mut ping, mut pong) = Bidirectional::pair();
                let ponger = rt.spawn(async move {
                    let mut count = 0u64;
                    while let Some(value) = pong.recv().await {
                        count += 1;
                        if pong.send(value).is_err() {
                            break;
                        }
                        if value % 7 == pair as u32 % 7 {
                            executor::yield_now().await;
                        }
                    }
                    count
                });
                let pinger = rt.spawn(async move {
                    let mut sum = 0u64;
                    for round in 1..=ROUNDS {
                        ping.send(round).unwrap();
                        if round % 5 == 0 {
                            executor::yield_now().await;
                        }
                        sum += u64::from(ping.recv().await.unwrap());
                    }
                    sum
                });
                [pinger, ponger]
            })
            .collect();
        let expected = u64::from(ROUNDS) * u64::from(ROUNDS + 1) / 2;
        for (index, handle) in handles.into_iter().enumerate() {
            let value = rt.block_on(handle).unwrap();
            if index % 2 == 0 {
                assert_eq!(value, expected, "pinger {index}, {workers} workers");
            } else {
                assert_eq!(
                    value,
                    u64::from(ROUNDS),
                    "ponger {index}, {workers} workers"
                );
            }
        }
    }
}

/// Two-thread in-place sends: the producer thread commits every message
/// through the reserve/commit path (`try_reserve().write()` and
/// `send_with`), racing a consumer thread across many growths and
/// wraparounds. Exactly-once, in-order delivery must be identical to the
/// plain `send` path.
#[test]
fn two_thread_in_place_send_exactly_once_in_order() {
    let (mut tx, mut rx) = spsc::<u64>();
    let producer = std::thread::spawn(move || {
        for i in 0..MESSAGES {
            // Alternate the two commit flavours so both race the
            // consumer; an abandoned reservation in between must be
            // invisible.
            if i % 2 == 0 {
                tx.try_reserve().unwrap().write(i);
            } else {
                tx.send_with(|| i).unwrap();
            }
            if i % 1024 == 0 {
                drop(tx.try_reserve().unwrap());
                std::thread::yield_now();
            }
        }
    });
    executor::block_on(async {
        for expected in 0..MESSAGES {
            assert_eq!(rx.recv().await, Some(expected));
        }
        assert_eq!(rx.recv().await, None);
    });
    producer.join().unwrap();
}

/// Batch receives interleaved with the waker handoff at 1, 2 and 8
/// workers: a producer task streams messages with yields sprinkled in, a
/// consumer task drains through `recv_batch` with varying windows. Every
/// message arrives exactly once, in order, and the final batch resolves
/// to 0 only after the producer is gone.
#[test]
fn recv_batch_waker_handoff_across_workers() {
    #[cfg(debug_assertions)]
    const STREAM: u64 = 5_000;
    #[cfg(not(debug_assertions))]
    const STREAM: u64 = 200_000;

    for workers in [1usize, 2, 8] {
        for window in [1usize, 3, 16] {
            let rt = Runtime::new(workers);
            let (mut tx, mut rx) = spsc::<u64>();
            let producer = rt.spawn(async move {
                for i in 0..STREAM {
                    tx.send(i).unwrap();
                    if i % 64 == 0 {
                        executor::yield_now().await;
                    }
                }
            });
            let consumer = rt.spawn(async move {
                let mut out = VecDeque::new();
                let mut expected = 0u64;
                loop {
                    let n = rx.recv_batch(window, &mut out).await;
                    if n == 0 {
                        break;
                    }
                    assert!(n <= window.max(1), "{workers} workers, window {window}");
                    while let Some(value) = out.pop_front() {
                        assert_eq!(value, expected, "{workers} workers, window {window}");
                        expected += 1;
                    }
                }
                expected
            });
            rt.block_on(producer).unwrap();
            assert_eq!(
                rt.block_on(consumer).unwrap(),
                STREAM,
                "{workers} workers, window {window}"
            );
        }
    }
}

/// Bounded-mode park/unpark under a deliberately full ring: a tiny
/// capacity forces the producer through the back-pressure park on nearly
/// every send while consumers of varying speed drain it. The capacity
/// invariant (`in flight <= k`) is asserted on every observation.
#[test]
fn bounded_park_unpark_under_full_ring() {
    #[cfg(debug_assertions)]
    const STREAM: u64 = 5_000;
    #[cfg(not(debug_assertions))]
    const STREAM: u64 = 100_000;

    for capacity in [1usize, 2, 7] {
        for workers in [1usize, 2, 8] {
            let rt = Runtime::new(workers);
            let (mut tx, mut rx) = spsc_bounded::<u64>(capacity);
            let producer = rt.spawn(async move {
                for i in 0..STREAM {
                    tx.send_wait(i).await.unwrap();
                }
            });
            let consumer = rt.spawn(async move {
                let mut expected = 0u64;
                loop {
                    assert!(
                        rx.len() <= capacity,
                        "capacity {capacity} exceeded: {} in flight",
                        rx.len()
                    );
                    match rx.recv().await {
                        Some(value) => {
                            assert_eq!(value, expected, "capacity {capacity}");
                            expected += 1;
                            if value % 97 == 0 {
                                executor::yield_now().await;
                            }
                        }
                        None => break,
                    }
                }
                expected
            });
            rt.block_on(producer).unwrap();
            assert_eq!(
                rt.block_on(consumer).unwrap(),
                STREAM,
                "capacity {capacity}"
            );
        }
    }
}

/// The sync `try_send` path on a full bounded ring: `Full` is returned
/// (with the value recoverable), never a growth, and the ring recovers
/// as the consumer drains.
#[test]
fn bounded_try_send_full_is_recoverable() {
    let (mut tx, mut rx) = spsc_bounded::<u64>(3);
    let mut next = 0u64;
    let mut expected = 0u64;
    for _ in 0..10_000 {
        match tx.try_send(next) {
            Ok(()) => next += 1,
            Err(TrySendError::Full(value)) => {
                assert_eq!(value, next);
                assert_eq!(rx.try_recv(), Some(expected));
                expected += 1;
            }
            Err(TrySendError::Closed(_)) => unreachable!("receiver alive"),
        }
    }
    while let Some(value) = rx.try_recv() {
        assert_eq!(value, expected);
        expected += 1;
    }
    assert_eq!(expected, next);
}

/// Drop-mid-batch leak check: payloads drained into the batch stash but
/// never consumed, payloads still queued in the ring, and payloads popped
/// normally must each drop exactly once when everything is torn down —
/// for both a drop-counting payload and a drop-counting ZST.
#[test]
fn drop_mid_batch_is_leak_free() {
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    #[derive(Debug)]
    struct Counted(#[allow(dead_code)] u64);
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }
    static ZST_DROPS: AtomicUsize = AtomicUsize::new(0);
    #[derive(Debug)]
    struct ZstToken;
    impl Drop for ZstToken {
        fn drop(&mut self) {
            ZST_DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }

    const SENT: usize = 500;
    {
        let (mut tx, mut rx) = spsc::<Counted>();
        for i in 0..SENT {
            tx.send(Counted(i as u64)).unwrap();
        }
        let mut out = VecDeque::new();
        // Drain two windows into the stash, consume only part of one.
        assert_eq!(rx.try_recv_batch(64, &mut out), 64);
        assert_eq!(rx.try_recv_batch(32, &mut out), 32);
        for _ in 0..40 {
            drop(out.pop_front().unwrap());
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 40);
        // 56 still in `out`, the rest still queued; drop everything.
        drop(out);
        assert_eq!(DROPS.load(Ordering::Relaxed), 96);
        drop((tx, rx));
    }
    assert_eq!(DROPS.load(Ordering::Relaxed), SENT);

    {
        let (mut tx, mut rx) = spsc::<ZstToken>();
        for _ in 0..SENT {
            tx.send(ZstToken).unwrap();
        }
        let mut out = VecDeque::new();
        assert_eq!(rx.try_recv_batch(100, &mut out), 100);
        drop(out);
        assert_eq!(ZST_DROPS.load(Ordering::Relaxed), 100);
        drop((tx, rx));
    }
    assert_eq!(ZST_DROPS.load(Ordering::Relaxed), SENT);
}

/// Cross-thread wake of a parked `block_on` receiver: the sender fires
/// from a plain OS thread after a delay, so the receiver is genuinely
/// parked in the WAITING state when the wake arrives.
#[test]
fn wakes_parked_receiver_from_foreign_thread() {
    for delay_us in [0u64, 50, 200] {
        let (mut tx, mut rx) = spsc::<u64>();
        let sender = std::thread::spawn(move || {
            if delay_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
            }
            tx.send(delay_us).unwrap();
        });
        assert_eq!(executor::block_on(rx.recv()), Some(delay_us));
        sender.join().unwrap();
    }
}
