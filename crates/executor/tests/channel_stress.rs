//! SPSC channel stress suite: two-thread exactly-once/in-order delivery,
//! growth racing concurrent receives, endpoint drop races, zero-sized
//! payloads and waker-handoff interleavings.
//!
//! CI runs this file under `--release` (see `.github/workflows/ci.yml`);
//! the iteration counts scale down in debug builds so plain `cargo test`
//! stays fast.

use std::sync::atomic::{AtomicUsize, Ordering};

use executor::channel::{spsc, Bidirectional};
use executor::Runtime;

#[cfg(debug_assertions)]
const MESSAGES: u64 = 20_000;
#[cfg(not(debug_assertions))]
const MESSAGES: u64 = 500_000;

#[cfg(debug_assertions)]
const RACE_ITERATIONS: u64 = 50;
#[cfg(not(debug_assertions))]
const RACE_ITERATIONS: u64 = 500;

/// Splitmix-style deterministic RNG so failures reproduce.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A producer OS thread floods the ring while a consumer thread drains it
/// through the waker path (`block_on(recv())`): every message arrives
/// exactly once, in order, across many buffer growths and wraparounds.
#[test]
fn two_thread_exactly_once_in_order() {
    let (mut tx, mut rx) = spsc::<u64>();
    let producer = std::thread::spawn(move || {
        for i in 0..MESSAGES {
            tx.send(i).unwrap();
            if i % 4096 == 0 {
                // Let the consumer catch up sometimes so the ring sees
                // both near-empty and deeply-backlogged (grown) phases.
                std::thread::yield_now();
            }
        }
    });
    executor::block_on(async {
        for expected in 0..MESSAGES {
            assert_eq!(rx.recv().await, Some(expected));
        }
        assert_eq!(rx.recv().await, None);
    });
    producer.join().unwrap();
}

/// Forces growth *while* the consumer is actively popping: the producer
/// sends bursts sized past the current backlog, the consumer pops
/// concurrently, so copies into the doubled buffer race pops from the
/// retired one. Order must still be total.
#[test]
fn grow_during_recv() {
    for iteration in 0..RACE_ITERATIONS {
        let (mut tx, mut rx) = spsc::<u64>();
        let mut seed = iteration;
        let bursts: Vec<u64> = (0..32).map(|_| 1 + next_rand(&mut seed) % 96).collect();
        let total: u64 = bursts.iter().sum();
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            for burst in bursts {
                for _ in 0..burst {
                    tx.send(next).unwrap();
                    next += 1;
                }
            }
        });
        let mut expected = 0u64;
        while expected < total {
            if let Some(value) = rx.try_recv() {
                assert_eq!(value, expected, "iteration {iteration}");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        assert!(rx.try_recv().is_none());
        producer.join().unwrap();
    }
}

/// Drops the receiver at a random point mid-stream: the producer must
/// observe closure as a clean `SendError` (never a crash or a hang), and
/// everything received up to the drop must be an in-order prefix.
#[test]
fn receiver_drop_races_sender() {
    for iteration in 0..RACE_ITERATIONS {
        let (mut tx, mut rx) = spsc::<u64>();
        let mut seed = 0xD00D ^ iteration;
        let keep = next_rand(&mut seed) % 64;
        let producer = std::thread::spawn(move || {
            let mut sent = 0u64;
            loop {
                if tx.send(sent).is_err() {
                    return sent;
                }
                sent += 1;
            }
        });
        let mut received = 0u64;
        while received < keep {
            if let Some(value) = rx.try_recv() {
                assert_eq!(value, received, "iteration {iteration}");
                received += 1;
            }
        }
        drop(rx);
        // The producer exits only via the SendError path.
        let sent = producer.join().unwrap();
        assert!(sent >= received, "iteration {iteration}");
    }
}

/// Drops the sender at a random point: the receiver must drain exactly
/// the messages sent before the drop and then resolve to `None` through
/// the waker path (the drop must wake a parked receiver).
#[test]
fn sender_drop_races_receiver() {
    for iteration in 0..RACE_ITERATIONS {
        let (mut tx, mut rx) = spsc::<u64>();
        let mut seed = 0xBEEF ^ iteration;
        let count = next_rand(&mut seed) % 128;
        let producer = std::thread::spawn(move || {
            for i in 0..count {
                tx.send(i).unwrap();
            }
            // tx drops here, mid-race with the draining receiver.
        });
        let drained = executor::block_on(async {
            let mut drained = 0u64;
            while let Some(value) = rx.recv().await {
                assert_eq!(value, drained, "iteration {iteration}");
                drained += 1;
            }
            drained
        });
        assert_eq!(drained, count, "iteration {iteration}");
        producer.join().unwrap();
    }
}

/// Zero-sized payloads: indices, not slot contents, carry the protocol.
/// Also pins drop-exactly-once semantics via a drop-counting ZST.
#[test]
fn zero_sized_payloads() {
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    #[derive(Debug)]
    struct Token;
    impl Drop for Token {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }

    let (mut tx, mut rx) = spsc::<()>();
    for _ in 0..1000 {
        tx.send(()).unwrap();
    }
    let mut count = 0;
    while rx.try_recv().is_some() {
        count += 1;
    }
    assert_eq!(count, 1000);

    // 300 tokens sent, 100 received (dropped by the caller), 200 left
    // queued when the channel drops: every token drops exactly once.
    let (mut tx, mut rx) = spsc::<Token>();
    for _ in 0..300 {
        tx.send(Token).unwrap();
    }
    for _ in 0..100 {
        assert!(rx.try_recv().is_some());
    }
    assert_eq!(DROPS.load(Ordering::Relaxed), 100);
    drop((tx, rx));
    assert_eq!(DROPS.load(Ordering::Relaxed), 300);
}

/// Hammers the register/wake handshake: ping-pong pairs over
/// `Bidirectional` links with randomized yield patterns, across 1, 2 and
/// 8 workers (1 worker maximises LIFO-slot handoffs; oversubscription
/// maximises cross-thread register/wake races).
#[test]
fn waker_handoff_interleavings() {
    const PAIRS: usize = 4;
    #[cfg(debug_assertions)]
    const ROUNDS: u32 = 200;
    #[cfg(not(debug_assertions))]
    const ROUNDS: u32 = 2000;

    for workers in [1, 2, 8] {
        let rt = Runtime::new(workers);
        let handles: Vec<_> = (0..PAIRS)
            .flat_map(|pair| {
                let (mut ping, mut pong) = Bidirectional::pair();
                let ponger = rt.spawn(async move {
                    let mut count = 0u64;
                    while let Some(value) = pong.recv().await {
                        count += 1;
                        if pong.send(value).is_err() {
                            break;
                        }
                        if value % 7 == pair as u32 % 7 {
                            executor::yield_now().await;
                        }
                    }
                    count
                });
                let pinger = rt.spawn(async move {
                    let mut sum = 0u64;
                    for round in 1..=ROUNDS {
                        ping.send(round).unwrap();
                        if round % 5 == 0 {
                            executor::yield_now().await;
                        }
                        sum += u64::from(ping.recv().await.unwrap());
                    }
                    sum
                });
                [pinger, ponger]
            })
            .collect();
        let expected = u64::from(ROUNDS) * u64::from(ROUNDS + 1) / 2;
        for (index, handle) in handles.into_iter().enumerate() {
            let value = rt.block_on(handle).unwrap();
            if index % 2 == 0 {
                assert_eq!(value, expected, "pinger {index}, {workers} workers");
            } else {
                assert_eq!(
                    value,
                    u64::from(ROUNDS),
                    "ponger {index}, {workers} workers"
                );
            }
        }
    }
}

/// Cross-thread wake of a parked `block_on` receiver: the sender fires
/// from a plain OS thread after a delay, so the receiver is genuinely
/// parked in the WAITING state when the wake arrives.
#[test]
fn wakes_parked_receiver_from_foreign_thread() {
    for delay_us in [0u64, 50, 200] {
        let (mut tx, mut rx) = spsc::<u64>();
        let sender = std::thread::spawn(move || {
            if delay_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
            }
            tx.send(delay_us).unwrap();
        });
        assert_eq!(executor::block_on(rx.recv()), Some(delay_us));
        sender.join().unwrap();
    }
}
