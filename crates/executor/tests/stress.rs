//! Executor stress suite: spawn storms, ping-pong latency pairs, and a
//! randomized steal-correctness test asserting exactly-once execution.
//!
//! CI runs this file under `--release` (see `.github/workflows/ci.yml`);
//! the iteration counts scale down in debug builds so plain `cargo test`
//! stays fast.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use executor::channel::unbounded;
use executor::Runtime;

/// Iterations for the randomized steal-correctness loop.
#[cfg(debug_assertions)]
const STEAL_ITERATIONS: u64 = 10;
#[cfg(not(debug_assertions))]
const STEAL_ITERATIONS: u64 = 100;

#[cfg(debug_assertions)]
const STORM_TASKS: u32 = 1_000;
#[cfg(not(debug_assertions))]
const STORM_TASKS: u32 = 10_000;

/// A task flood from outside the pool: every task must run exactly once
/// and every handle must resolve, at 1, 2 and 8 workers.
#[test]
fn spawn_storm() {
    for workers in [1, 2, 8] {
        let rt = Runtime::new(workers);
        let counter = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..STORM_TASKS)
            .map(|i| {
                let counter = counter.clone();
                rt.spawn(async move {
                    counter.fetch_add(1, Ordering::Relaxed);
                    i
                })
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            assert_eq!(rt.block_on(handle).unwrap(), i as u32);
        }
        assert_eq!(
            counter.load(Ordering::Relaxed),
            STORM_TASKS,
            "{workers} workers"
        );
    }
}

/// Message-passing latency pairs: concurrent ping-pong over channels, the
/// pattern the LIFO slot accelerates. Checks no message is lost or
/// duplicated under heavy wake traffic.
#[test]
fn ping_pong_pairs() {
    const PAIRS: usize = 8;
    const ROUNDS: u32 = 500;
    for workers in [1, 2, 8] {
        let rt = Runtime::new(workers);
        let handles: Vec<_> = (0..PAIRS)
            .flat_map(|_| {
                let (ping_tx, mut ping_rx) = unbounded::<u32>();
                let (pong_tx, mut pong_rx) = unbounded::<u32>();
                let ponger = rt.spawn(async move {
                    let mut last = 0u64;
                    while let Some(v) = ping_rx.recv().await {
                        last = u64::from(v);
                        if pong_tx.send(v).is_err() {
                            break;
                        }
                    }
                    last
                });
                let pinger = rt.spawn(async move {
                    let mut sum = 0u64;
                    for round in 1..=ROUNDS {
                        ping_tx.send(round).unwrap();
                        sum += u64::from(pong_rx.recv().await.unwrap());
                    }
                    drop(ping_tx);
                    sum
                });
                [pinger, ponger]
            })
            .collect();
        let expected_sum = u64::from(ROUNDS) * u64::from(ROUNDS + 1) / 2;
        for (index, handle) in handles.into_iter().enumerate() {
            let value = rt.block_on(handle).unwrap();
            if index % 2 == 0 {
                assert_eq!(value, expected_sum, "pinger {index}, {workers} workers");
            } else {
                assert_eq!(
                    value,
                    u64::from(ROUNDS),
                    "ponger {index}, {workers} workers"
                );
            }
        }
    }
}

/// Splitmix-style deterministic RNG so failures reproduce.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Randomized steal-correctness: a storm of tasks with random yield
/// patterns and random cross-task wakes across 1/2/8 workers; every task
/// must execute exactly once (its flag ends at exactly 1) and every
/// message must arrive. Runs [`STEAL_ITERATIONS`] consecutive iterations
/// (100 in release) so steal interleavings vary.
#[test]
fn randomized_steal_exactly_once() {
    const TASKS: usize = 256;
    for iteration in 0..STEAL_ITERATIONS {
        let workers = [1, 2, 8][iteration as usize % 3];
        let rt = Runtime::new(workers);
        let flags = Arc::new((0..TASKS).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());

        // Random pairing: even-indexed tasks message their odd partner a
        // random number of times, forcing waker-driven reschedules that
        // land in the LIFO slot, the local deque or the injector depending
        // on which thread the send happens on.
        let handles: Vec<_> = (0..TASKS / 2)
            .flat_map(|pair| {
                let (tx, mut rx) = unbounded::<u64>();
                let mut seed = iteration.wrapping_mul(0x1009) ^ pair as u64;
                let messages = next_rand(&mut seed) % 8;
                let yields = next_rand(&mut seed) % 4;
                let sender_flags = flags.clone();
                let receiver_flags = flags.clone();
                let sender = rt.spawn(async move {
                    for _ in 0..yields {
                        executor::yield_now().await;
                    }
                    for message in 0..messages {
                        tx.send(message).unwrap();
                        executor::yield_now().await;
                    }
                    sender_flags[2 * pair].fetch_add(1, Ordering::Relaxed);
                    drop(tx);
                });
                let receiver = rt.spawn(async move {
                    let mut received = 0;
                    while rx.recv().await.is_some() {
                        received += 1;
                    }
                    assert_eq!(received, messages);
                    receiver_flags[2 * pair + 1].fetch_add(1, Ordering::Relaxed);
                });
                [sender, receiver]
            })
            .collect();

        for handle in handles {
            rt.block_on(handle).unwrap();
        }
        for (task, flag) in flags.iter().enumerate() {
            assert_eq!(
                flag.load(Ordering::Relaxed),
                1,
                "task {task} ran a wrong number of times \
                 (iteration {iteration}, {workers} workers)"
            );
        }
    }
}
