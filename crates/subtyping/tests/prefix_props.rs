//! Property tests for the prefix machinery and the visitor:
//!
//! * snapshot/revert is an exact inverse under arbitrary edit sequences,
//! * reduction terminates and only shrinks prefixes (Lemma 5),
//! * disabling fail-early never changes the verdict, only the cost.

use proptest::prelude::*;

use subtyping::prefix::{prefix_of, reduce, reduce_step, Prefix, Reduction};
use subtyping::SubtypeVisitor;
use theory::fsm::Action;
use theory::local::{LocalBranch, LocalType};
use theory::sort::Sort;

fn arbitrary_action() -> impl Strategy<Value = Action> {
    (
        proptest::bool::ANY,
        proptest::sample::select(vec!["p", "q", "r"]),
        proptest::sample::select(vec!["a", "b"]),
    )
        .prop_map(|(send, peer, label)| {
            if send {
                Action::send(peer, label, Sort::Unit)
            } else {
                Action::receive(peer, label, Sort::Unit)
            }
        })
}

fn arbitrary_prefix() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(arbitrary_action(), 0..12)
}

fn live_labels(prefix: &Prefix) -> Vec<String> {
    prefix.live().map(|(_, a)| format!("{a}")).collect()
}

fn binary_local_type() -> impl Strategy<Value = LocalType> {
    let leaf = Just(LocalType::End);
    leaf.prop_recursive(3, 16, 2, |inner| {
        let branch =
            (proptest::sample::select(vec!["a", "b"]), inner).prop_map(|(label, continuation)| {
                LocalBranch {
                    label: label.into(),
                    sort: Sort::Unit,
                    continuation,
                }
            });
        let dedup = |mut branches: Vec<LocalBranch>| {
            branches.sort_by(|x, y| x.label.cmp(&y.label));
            branches.dedup_by(|x, y| x.label == y.label);
            branches
        };
        prop_oneof![
            proptest::collection::vec(branch.clone(), 1..3).prop_map(move |branches| {
                LocalType::Select {
                    peer: "p".into(),
                    branches: dedup(branches),
                }
            }),
            proptest::collection::vec(branch, 1..3).prop_map(move |branches| {
                LocalType::Branch {
                    peer: "p".into(),
                    branches: dedup(branches),
                }
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reduction terminates within min(|π|, |π′|) steps and every step
    /// removes exactly one element from each side (Lemma 5 / Lemma 8).
    #[test]
    fn reduction_terminates_and_shrinks(
        sub_actions in arbitrary_prefix(),
        sup_actions in arbitrary_prefix(),
    ) {
        let mut sub = prefix_of(sub_actions.clone());
        let mut sup = prefix_of(sup_actions.clone());
        let budget = sub_actions.len().min(sup_actions.len());
        let mut steps = 0;
        loop {
            let before = (sub.len(), sup.len());
            match reduce_step(&mut sub, &mut sup) {
                Reduction::Progress => {
                    steps += 1;
                    prop_assert_eq!(sub.len(), before.0 - 1);
                    prop_assert_eq!(sup.len(), before.1 - 1);
                    prop_assert!(steps <= budget, "exceeded the Lemma 8 bound");
                }
                Reduction::Blocked | Reduction::DeadEnd => break,
            }
        }
    }

    /// snapshot → arbitrary pushes/reductions → revert restores the
    /// exact live sequence.
    #[test]
    fn snapshot_revert_is_exact(
        initial in arbitrary_prefix(),
        pushed in arbitrary_prefix(),
        partner in arbitrary_prefix(),
    ) {
        let mut prefix = prefix_of(initial);
        let mut other = prefix_of(partner);
        let before = live_labels(&prefix);
        let snapshot = prefix.snapshot();
        for action in pushed {
            prefix.push(action);
        }
        let _ = reduce(&mut prefix, &mut other);
        prefix.revert(snapshot);
        prop_assert_eq!(live_labels(&prefix), before);
    }

    /// Fail-early is a pure optimisation: enabling or disabling it never
    /// changes the verdict.
    #[test]
    fn fail_early_preserves_verdicts(
        sub in binary_local_type(),
        sup in binary_local_type(),
    ) {
        let sub = theory::fsm::from_local(&"r".into(), &sub).unwrap();
        let sup = theory::fsm::from_local(&"r".into(), &sup).unwrap();
        let with = SubtypeVisitor::new(&sub, &sup, 4).run();
        let without = SubtypeVisitor::new(&sub, &sup, 4).without_fail_early().run();
        prop_assert_eq!(with, without);
    }
}
