//! Command-line interface to the asynchronous subtyping algorithm,
//! mirroring the binary the paper benchmarks with Hyperfine (§4.2).
//!
//! ```text
//! subtype <subtype> <supertype> [--bound N] [--json]
//! subtype <cand1> <cand2> ... <supertype> [--bound N] [--json]
//! ```
//!
//! Each argument is either a local-type expression (e.g.
//! `"rec x . s!ready . s?value . x"`) or `@path` to read one from a file.
//! Exits 0 when the subtyping holds, 1 when it cannot be shown.
//!
//! With `--json` the verdict is emitted as a single machine-readable
//! object (consumed by the optimiser report and CI):
//!
//! ```text
//! {"verdict": true, "bound": 16, "visited_pairs": 42}
//! ```
//!
//! With more than two positionals, every argument but the last is a
//! candidate checked against the final supertype in one
//! `check_candidates` pass — the bulk shape the AMR optimiser uses —
//! and `--json` reports the per-candidate `CheckStats` visit counts:
//!
//! ```text
//! {"bound": 16, "candidates": [
//!   {"verdict": true, "visited_pairs": 42}, ...]}
//! ```
//!
//! The bulk form exits 0 only when every candidate verifies.

use std::process::ExitCode;

const USAGE: &str = "\
usage: subtype <subtype> <supertype> [options]
       subtype <cand1> <cand2> ... <supertype> [options]

Checks whether <subtype> is a sound asynchronous subtype of <supertype>.
Each positional argument is a local-type expression, or `@path` to read
one from a file. With more than two positionals, every argument but the
last is a candidate checked against the final supertype in one bulk
pass (the shape the AMR optimiser validates its reorderings with).

options:
    --bound N   recursion-unrolling bound: how many times each pair of
                states may be revisited on one derivation path
                (default: 16); larger bounds verify deeper reorderings
                at higher cost
    --json      print one JSON object instead of prose:
                {\"verdict\": bool, \"bound\": N, \"visited_pairs\": N}
                where visited_pairs counts the state-pair visits the
                search performed (its cost metric); with multiple
                candidates, {\"bound\": N, \"candidates\": [...]} with
                one {\"verdict\", \"visited_pairs\"} entry per candidate
    -h, --help  show this help

exit codes: 0 every subtyping holds, 1 some not shown, 2 usage or
parse error";

fn read_type(arg: &str) -> Result<theory::LocalType, String> {
    let text = if let Some(path) = arg.strip_prefix('@') {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    } else {
        arg.to_owned()
    };
    theory::local::parse(text.trim()).map_err(|e| format!("parse error: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut bound = 16usize;
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--bound" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(value) => bound = value,
                None => {
                    eprintln!("--bound requires an integer");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => positional.push(other.to_owned()),
        }
    }
    if positional.len() < 2 {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut types = Vec::with_capacity(positional.len());
    for arg in &positional {
        match read_type(arg) {
            Ok(t) => types.push(t),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let sup = types.pop().expect("at least two positionals");

    if let [sub] = types.as_slice() {
        // Pairwise form: the original interface, output unchanged.
        let stats = match subtyping::check_with_stats_local(sub, &sup, bound) {
            Ok(stats) => stats,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        if json {
            println!(
                "{{\"verdict\": {}, \"bound\": {}, \"visited_pairs\": {}}}",
                stats.verdict, stats.bound, stats.visited_pairs
            );
        } else if stats.verdict {
            println!(
                "subtype holds (bound {bound}, {} state pairs visited)",
                stats.visited_pairs
            );
        } else {
            println!(
                "subtype NOT shown (bound {bound}, {} state pairs visited)",
                stats.visited_pairs
            );
        }
        return if stats.verdict {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // Bulk form: every candidate against the one supertype, exactly the
    // `check_candidates` pass the optimiser runs, stats in input order.
    let role = theory::Name::from("self");
    let sup_fsm = match theory::fsm::from_local(&role, &sup) {
        Ok(fsm) => fsm,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut candidates = Vec::with_capacity(types.len());
    for (index, candidate) in types.iter().enumerate() {
        match theory::fsm::from_local(&role, candidate) {
            Ok(fsm) => candidates.push(fsm),
            Err(e) => {
                eprintln!("error: candidate {}: {e}", index + 1);
                return ExitCode::from(2);
            }
        }
    }
    let stats = subtyping::check_candidates(candidates.iter(), &sup_fsm, bound);
    let all_hold = stats.iter().all(|s| s.verdict);
    if json {
        let entries: Vec<String> = stats
            .iter()
            .map(|s| {
                format!(
                    "{{\"verdict\": {}, \"visited_pairs\": {}}}",
                    s.verdict, s.visited_pairs
                )
            })
            .collect();
        println!(
            "{{\"bound\": {bound}, \"candidates\": [{}]}}",
            entries.join(", ")
        );
    } else {
        for (index, s) in stats.iter().enumerate() {
            println!(
                "candidate {}: {} (bound {bound}, {} state pairs visited)",
                index + 1,
                if s.verdict { "holds" } else { "NOT shown" },
                s.visited_pairs
            );
        }
    }
    if all_hold {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
