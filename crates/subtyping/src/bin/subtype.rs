//! Command-line interface to the asynchronous subtyping algorithm,
//! mirroring the binary the paper benchmarks with Hyperfine (§4.2).
//!
//! ```text
//! subtype <subtype> <supertype> [--bound N] [--json]
//! ```
//!
//! Each argument is either a local-type expression (e.g.
//! `"rec x . s!ready . s?value . x"`) or `@path` to read one from a file.
//! Exits 0 when the subtyping holds, 1 when it cannot be shown.
//!
//! With `--json` the verdict is emitted as a single machine-readable
//! object (consumed by the optimiser report and CI):
//!
//! ```text
//! {"verdict": true, "bound": 16, "visited_pairs": 42}
//! ```

use std::process::ExitCode;

const USAGE: &str = "\
usage: subtype <subtype> <supertype> [options]

Checks whether <subtype> is a sound asynchronous subtype of <supertype>.
Each positional argument is a local-type expression, or `@path` to read
one from a file.

options:
    --bound N   recursion-unrolling bound: how many times each pair of
                states may be revisited on one derivation path
                (default: 16); larger bounds verify deeper reorderings
                at higher cost
    --json      print one JSON object instead of prose:
                {\"verdict\": bool, \"bound\": N, \"visited_pairs\": N}
                where visited_pairs counts the state-pair visits the
                search performed (its cost metric)
    -h, --help  show this help

exit codes: 0 subtype holds, 1 not shown, 2 usage or parse error";

fn read_type(arg: &str) -> Result<theory::LocalType, String> {
    let text = if let Some(path) = arg.strip_prefix('@') {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    } else {
        arg.to_owned()
    };
    theory::local::parse(text.trim()).map_err(|e| format!("parse error: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut bound = 16usize;
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--bound" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(value) => bound = value,
                None => {
                    eprintln!("--bound requires an integer");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => positional.push(other.to_owned()),
        }
    }
    let [sub, sup] = positional.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let (sub, sup) = match (read_type(sub), read_type(sup)) {
        (Ok(sub), Ok(sup)) => (sub, sup),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let stats = match subtyping::check_with_stats_local(&sub, &sup, bound) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!(
            "{{\"verdict\": {}, \"bound\": {}, \"visited_pairs\": {}}}",
            stats.verdict, stats.bound, stats.visited_pairs
        );
    } else if stats.verdict {
        println!(
            "subtype holds (bound {bound}, {} state pairs visited)",
            stats.visited_pairs
        );
    } else {
        println!(
            "subtype NOT shown (bound {bound}, {} state pairs visited)",
            stats.visited_pairs
        );
    }
    if stats.verdict {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
