//! Command-line interface to the asynchronous subtyping algorithm,
//! mirroring the binary the paper benchmarks with Hyperfine (§4.2).
//!
//! ```text
//! subtype <subtype> <supertype> [--bound N]
//! ```
//!
//! Each argument is either a local-type expression (e.g.
//! `"rec x . s!ready . s?value . x"`) or `@path` to read one from a file.
//! Exits 0 when the subtyping holds, 1 when it cannot be shown.

use std::process::ExitCode;

fn read_type(arg: &str) -> Result<theory::LocalType, String> {
    let text = if let Some(path) = arg.strip_prefix('@') {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    } else {
        arg.to_owned()
    };
    theory::local::parse(text.trim()).map_err(|e| format!("parse error: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut bound = 16usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--bound" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(value) => bound = value,
                None => {
                    eprintln!("--bound requires an integer");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: subtype <subtype> <supertype> [--bound N]");
                return ExitCode::SUCCESS;
            }
            other => positional.push(other.to_owned()),
        }
    }
    let [sub, sup] = positional.as_slice() else {
        eprintln!("usage: subtype <subtype> <supertype> [--bound N]");
        return ExitCode::from(2);
    };

    let (sub, sup) = match (read_type(sub), read_type(sup)) {
        (Ok(sub), Ok(sup)) => (sub, sup),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    match subtyping::is_subtype_local(&sub, &sup, bound) {
        Ok(true) => {
            println!("subtype holds (bound {bound})");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("subtype NOT shown (bound {bound})");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
