//! The depth-first subtyping visitor (Appendix B.5).
//!
//! The visitor walks the product of the candidate-subtype FSM and the
//! supertype FSM. The `history` matrix plays the role of the assumption map
//! `Σ` of Fig 5: an entry stores how many visits remain for that state pair
//! (the recursion bound `n`) and, if the pair lies on the current
//! derivation path, snapshots of both prefixes taken at the previous visit
//! (the `ρ` recorded with each assumption).

use theory::fsm::{Direction, Fsm, StateIndex};

use crate::prefix::{reduce, Prefix, Snapshot};

/// Per-state-pair record: remaining visits and the prefix snapshots from
/// the most recent visit on the current path.
#[derive(Clone, Debug)]
struct Previous {
    visits: usize,
    snapshots: Option<[Snapshot; 2]>,
}

/// Checks `sub ≤ sup` by depth-first search; see [`crate::is_subtype`].
pub struct SubtypeVisitor<'a> {
    sub: &'a Fsm,
    sup: &'a Fsm,
    history: Vec<Previous>,
    prefixes: [Prefix; 2],
    fail_early: bool,
    visited: usize,
}

impl<'a> SubtypeVisitor<'a> {
    /// Prepares a visitor with `bound` visits allowed per state pair.
    pub fn new(sub: &'a Fsm, sup: &'a Fsm, bound: usize) -> Self {
        let entries = sub.len() * sup.len();
        Self {
            sub,
            sup,
            history: vec![
                Previous {
                    visits: bound,
                    snapshots: None,
                };
                entries
            ],
            prefixes: [Prefix::new(), Prefix::new()],
            fail_early: true,
            visited: 0,
        }
    }

    /// Disables the fail-early reduction cut-off (Appendix B.5), for the
    /// ablation benchmark. The answer is unchanged — permanently stuck
    /// prefixes still exhaust the bound — but doomed paths are explored
    /// to the bound instead of being pruned.
    pub fn without_fail_early(mut self) -> Self {
        self.fail_early = false;
        self
    }

    /// Runs the check from both initial states with empty prefixes
    /// (`[init]`).
    pub fn run(mut self) -> bool {
        self.visit(self.sub.initial(), self.sup.initial())
    }

    /// Like [`run`](Self::run), but also reports how many state-pair
    /// visits the search performed — the work metric surfaced by
    /// `subtype --json` and the optimiser report.
    pub fn run_counting(mut self) -> (bool, usize) {
        let verdict = self.visit(self.sub.initial(), self.sup.initial());
        (verdict, self.visited)
    }

    fn entry(&self, sub_state: StateIndex, sup_state: StateIndex) -> usize {
        sub_state.0 * self.sup.len() + sup_state.0
    }

    fn visit(&mut self, sub_state: StateIndex, sup_state: StateIndex) -> bool {
        self.visited += 1;
        // (1) Bound check ([μl]/[μr] with n = 0): each state pair may be
        // visited at most `bound` times along one derivation path.
        let entry = self.entry(sub_state, sup_state);
        if self.history[entry].visits == 0 {
            return false;
        }

        // (2) Reduce the prefix pair as far as possible ([sub] applied
        // eagerly); a dead end means no completion of this path can ever
        // reduce it (fail-early).
        let fail_early = self.fail_early;
        let [sub_prefix, sup_prefix] = &mut self.prefixes;
        if !reduce(sub_prefix, sup_prefix) && fail_early {
            return false;
        }

        // (3) [asm]: the pair was visited before on this path and both
        // prefixes match their recorded snapshots (Eq. (2)).
        if let Some([sub_snapshot, sup_snapshot]) = self.history[entry].snapshots {
            if self.prefixes[0].matches_snapshot(sub_snapshot)
                && self.prefixes[1].matches_snapshot(sup_snapshot)
            {
                return true;
            }
        }

        // (4) [end]: both machines finished and nothing is left pending.
        let sub_terminal = self.sub.is_terminal(sub_state);
        let sup_terminal = self.sup.is_terminal(sup_state);
        if sub_terminal && sup_terminal {
            return self.prefixes[0].is_empty() && self.prefixes[1].is_empty();
        }
        if sub_terminal || sup_terminal {
            // One side finished while the other still owes actions.
            return false;
        }

        // (5) Explore transitions according to the quantifier rules
        // [oo]/[oi]/[ii]/[io] of Fig 5.
        let saved = self.history[entry].clone();
        self.history[entry] = Previous {
            visits: saved.visits - 1,
            snapshots: Some([self.prefixes[0].snapshot(), self.prefixes[1].snapshot()]),
        };

        let sub_direction = direction_of(self.sub, sub_state);
        let sup_direction = direction_of(self.sup, sup_state);
        let sub_count = self.sub.transitions(sub_state).len();
        let sup_count = self.sup.transitions(sup_state).len();

        let result = match (sub_direction, sup_direction) {
            // [oo]: ∀i ∈ I. ∃j ∈ J (the subtype may drop internal choices).
            (Direction::Send, Direction::Send) => (0..sub_count)
                .all(|i| (0..sup_count).any(|j| self.try_pair(sub_state, i, sup_state, j))),
            // [oi]: ∀i. ∀j — the subtype's output must anticipate across
            // every input the supertype might perform.
            (Direction::Send, Direction::Receive) => (0..sub_count)
                .all(|i| (0..sup_count).all(|j| self.try_pair(sub_state, i, sup_state, j))),
            // [ii]: ∀j. ∃i (the subtype may accept extra external choices).
            (Direction::Receive, Direction::Receive) => (0..sup_count)
                .all(|j| (0..sub_count).any(|i| self.try_pair(sub_state, i, sup_state, j))),
            // [io]: ∃i. ∃j.
            (Direction::Receive, Direction::Send) => (0..sub_count)
                .any(|i| (0..sup_count).any(|j| self.try_pair(sub_state, i, sup_state, j))),
        };

        // Restore the entry for sibling branches of the search.
        self.history[entry] = saved;
        result
    }

    /// Pushes one transition from each machine onto the prefixes, recurses
    /// into the target pair, and reverts.
    fn try_pair(
        &mut self,
        sub_state: StateIndex,
        sub_index: usize,
        sup_state: StateIndex,
        sup_index: usize,
    ) -> bool {
        let (sub_action, sub_target) = self.sub.transitions(sub_state)[sub_index].clone();
        let (sup_action, sup_target) = self.sup.transitions(sup_state)[sup_index].clone();
        let snapshots = [self.prefixes[0].snapshot(), self.prefixes[1].snapshot()];
        self.prefixes[0].push(sub_action);
        self.prefixes[1].push(sup_action);
        let result = self.visit(sub_target, sup_target);
        self.prefixes[0].revert(snapshots[0]);
        self.prefixes[1].revert(snapshots[1]);
        result
    }
}

/// Direction of a non-terminal state (validated to be uniform by
/// `Fsm::validate_directed` for machines built from local types; for
/// hand-built machines a mixed state is treated as its first transition's
/// direction, matching the serialisation the runtime produces).
fn direction_of(fsm: &Fsm, state: StateIndex) -> Direction {
    fsm.transitions(state)[0].0.direction
}

#[cfg(test)]
mod tests {
    use super::*;
    use theory::fsm::from_local;
    use theory::local;

    fn fsm(text: &str) -> theory::fsm::Fsm {
        from_local(&"r".into(), &local::parse(text).unwrap()).unwrap()
    }

    #[test]
    fn trivial_end() {
        assert!(SubtypeVisitor::new(&fsm("end"), &fsm("end"), 1).run());
    }

    #[test]
    fn bound_exhaustion_rejects() {
        // Bound 0 forbids even entering the initial pair (paper step 1).
        assert!(!SubtypeVisitor::new(&fsm("end"), &fsm("end"), 0).run());
        // A loop needs at least two visits: enter + re-enter for [asm].
        let looped = fsm("rec x . p!a . x");
        assert!(!SubtypeVisitor::new(&looped, &looped, 1).run());
        assert!(SubtypeVisitor::new(&looped, &looped, 2).run());
    }

    #[test]
    fn double_unroll_verified_with_generous_bound() {
        // Anticipating two `ready`s is the 3-buffer optimisation of the
        // k-buffering family; higher bounds only add slack.
        let projected = fsm("rec x . s!ready . s?value . t?ready . t!value . x");
        let optimised =
            fsm("s!ready . s!ready . rec x . s!ready . s?value . t?ready . t!value . x");
        assert!(SubtypeVisitor::new(&optimised, &projected, 8).run());
        // The reverse direction owes two `ready`s and must fail.
        assert!(!SubtypeVisitor::new(&projected, &optimised, 8).run());
    }
}
