//! The paper's sound asynchronous multiparty session subtyping algorithm
//! (§3, Fig 5), implemented on FSMs exactly as described in Appendix B.5:
//!
//! * [`prefix`] — SISO prefixes `π` as lazily-removable transition lists
//!   with snapshot/revert, and the prefix reduction rules
//!   `[)i] [)o] [)A] [)B]` of Definition 3 (including the fail-early
//!   optimisation),
//! * [`visitor`] — the depth-first `SubtypeVisitor` over a pair of FSMs
//!   with a history matrix standing for the assumption map `Σ` and a
//!   per-state-pair visit bound standing for the recursion bounds `n`.
//!
//! The algorithm is **sound** (a `true` answer implies the precise
//! asynchronous subtyping `T ≤ T′` of Ghilezan et al.) and **terminating**,
//! but necessarily incomplete since the precise relation is undecidable.
//!
//! # Example: the double-buffering optimisation (paper §2/§3)
//!
//! ```
//! use subtyping::is_subtype_local;
//! use theory::local;
//!
//! // Projected kernel Mk and AMR-optimised kernel M'k (Fig 4).
//! let projected = local::parse("rec x . s!ready . s?value . t?ready . t!value . x").unwrap();
//! let optimised = local::parse(
//!     "s!ready . rec x . s!ready . s?value . t?ready . t!value . x",
//! ).unwrap();
//! assert!(is_subtype_local(&optimised, &projected, 4).unwrap());
//! // ... and the converse fails: the projection is *not* a subtype of the
//! // optimisation (it would owe an extra `ready`).
//! assert!(!is_subtype_local(&projected, &optimised, 4).unwrap());
//! ```

pub mod prefix;
pub mod visitor;

use theory::fsm::{self, Fsm, FsmError};
use theory::local::LocalType;
use theory::name::Name;

pub use visitor::SubtypeVisitor;

/// Checks whether `sub` is an asynchronous subtype of `sup`.
///
/// `bound` limits how many times each pair of states may be revisited on a
/// single derivation path (the recursion-unrolling bound `n` of the paper);
/// larger bounds verify deeper reorderings at higher cost.
pub fn is_subtype(sub: &Fsm, sup: &Fsm, bound: usize) -> bool {
    SubtypeVisitor::new(sub, sup, bound).run()
}

/// Convenience wrapper converting local types to FSMs first.
pub fn is_subtype_local(sub: &LocalType, sup: &LocalType, bound: usize) -> Result<bool, FsmError> {
    let role = Name::from("self");
    let sub = fsm::from_local(&role, sub)?;
    let sup = fsm::from_local(&role, sup)?;
    Ok(is_subtype(&sub, &sup, bound))
}

/// Outcome of one instrumented subtyping check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckStats {
    /// Whether the subtyping was shown to hold.
    pub verdict: bool,
    /// The recursion-unrolling bound the check ran with.
    pub bound: usize,
    /// State-pair visits performed by the search — the cost metric
    /// reported by `subtype --json` and the optimiser report.
    pub visited_pairs: usize,
}

/// Instrumented variant of [`is_subtype`]: same verdict, plus search
/// statistics.
pub fn check_with_stats(sub: &Fsm, sup: &Fsm, bound: usize) -> CheckStats {
    let (verdict, visited_pairs) = SubtypeVisitor::new(sub, sup, bound).run_counting();
    CheckStats {
        verdict,
        bound,
        visited_pairs,
    }
}

/// Instrumented variant of [`is_subtype_local`]: converts both types with
/// the same role convention, then runs [`check_with_stats`]. The `subtype`
/// CLI's `--json` output is this verbatim.
pub fn check_with_stats_local(
    sub: &LocalType,
    sup: &LocalType,
    bound: usize,
) -> Result<CheckStats, FsmError> {
    let role = Name::from("self");
    let sub = fsm::from_local(&role, sub)?;
    let sup = fsm::from_local(&role, sup)?;
    Ok(check_with_stats(&sub, &sup, bound))
}

/// Bulk candidate checking: verifies many candidate subtypes against one
/// supertype, returning per-candidate statistics in input order.
///
/// This is the entry point the AMR optimiser uses to validate its
/// generated reorderings — one supertype (the projection), many
/// candidates. Checks are independent; a candidate failing (or even
/// being degenerate) never affects its siblings.
pub fn check_candidates<'a>(
    candidates: impl IntoIterator<Item = &'a Fsm>,
    sup: &Fsm,
    bound: usize,
) -> Vec<CheckStats> {
    candidates
        .into_iter()
        .map(|sub| check_with_stats(sub, sup, bound))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use theory::local;

    fn check(sub: &str, sup: &str, bound: usize) -> bool {
        let sub = local::parse(sub).unwrap();
        let sup = local::parse(sup).unwrap();
        is_subtype_local(&sub, &sup, bound).unwrap()
    }

    #[test]
    fn reflexive_on_paper_types() {
        for t in [
            "end",
            "p!a.end",
            "rec x . t?ready . +{ t!value.x, t!stop.end }",
            "rec x . s!ready . s?value . t?ready . t!value . x",
        ] {
            assert!(check(t, t, 4), "{t} should be a subtype of itself");
        }
    }

    /// Example 2 of the paper: reordering q's actions (send before
    /// receive) is safe...
    #[test]
    fn example2_correct_reordering() {
        assert!(check("p!l2.p?l1.end", "p?l1.p!l2.end", 2));
    }

    /// ...but reordering p's actions (receive before send) deadlocks and
    /// must be rejected.
    #[test]
    fn example2_incorrect_reordering() {
        assert!(!check("q?l2.q!l1.end", "q!l1.q?l2.end", 2));
    }

    /// §3's worked derivation: the optimised double-buffering kernel.
    #[test]
    fn double_buffering_kernel_optimisation() {
        let projected = "rec x . s!ready . s?copy . t?ready . t!copy . x";
        let optimised = "s!ready . rec x . s!ready . s?copy . t?ready . t!copy . x";
        assert!(check(optimised, projected, 4));
        assert!(!check(projected, optimised, 4));
    }

    /// Appendix B.2.1: ring protocol with choice.
    #[test]
    fn ring_with_choice_optimisation() {
        let projected = "rec t . a?add . +{ c!add.t, c!sub.t }";
        let optimised = "rec t . +{ c!add.a?add.t, c!sub.a?add.t }";
        assert!(check(optimised, projected, 4));
    }

    /// Appendix B.4: alternating bit protocol receiver.
    #[test]
    fn alternating_bit_receiver() {
        let projected = "rec t . s?d0 . +{ s!a0 . rec u . s?d1 . +{ s!a0.u, s!a1.t }, s!a1.t }";
        let specified = "rec t . &{ s?d0.s!a0.t, s?d1.s!a1.t }";
        assert!(check(specified, projected, 4));
    }

    /// Fig A.14: a subtype that "forgets" the initial q?l' input must be
    /// rejected by the action check in [asm].
    #[test]
    fn forgotten_action_is_rejected() {
        assert!(!check("rec t . p?l . t", "q?lp . rec t . p?l . t", 8));
    }

    /// Internal choice is covariant: fewer outputs is a subtype.
    #[test]
    fn fewer_internal_choices() {
        assert!(check("p!a.end", "+{ p!a.end, p!b.end }", 2));
        assert!(!check("+{ p!a.end, p!b.end }", "p!a.end", 2));
    }

    /// External choice is contravariant: more inputs is a subtype.
    #[test]
    fn more_external_choices() {
        assert!(check("&{ p?a.end, p?b.end }", "p?a.end", 2));
        assert!(!check("p?a.end", "&{ p?a.end, p?b.end }", 2));
    }

    /// Streaming source: unrolling sends ahead of the `ready` receives is
    /// exactly the AMR benchmarked in Fig 7 (streaming).
    #[test]
    fn streaming_unrolled_source() {
        // Infinite-stream shape used by the Fig 7 generator: the source
        // pre-sends two values, shifting the whole pipeline.
        let projected = "rec x . t?ready . t!value . x";
        let optimised = "t!value . t!value . rec x . t?ready . t!value . x";
        assert!(check(optimised, projected, 8));
        assert!(!check(projected, optimised, 8));
    }

    #[test]
    fn mismatched_labels_rejected() {
        assert!(!check("p!a.end", "p!b.end", 2));
        assert!(!check("p?a.end", "p?b.end", 2));
    }

    #[test]
    fn output_anticipation_cannot_cross_same_peer_output() {
        // B(p) forbids earlier outputs to the same participant.
        assert!(!check("p!b.p!a.end", "p!a.p!b.end", 2));
        // ...but crossing an output to a different peer is fine.
        assert!(check("p!a.q!b.end", "q!b.p!a.end", 2));
    }

    #[test]
    fn input_anticipation_cannot_cross_same_peer_input() {
        assert!(!check("p?b.p?a.end", "p?a.p?b.end", 2));
        assert!(check("p?a.q?b.end", "q?b.p?a.end", 2));
    }

    #[test]
    fn input_cannot_be_anticipated_before_output() {
        // A(p) contains only inputs: receiving early across a send is
        // unsound (it can deadlock).
        assert!(!check("p?a.q!b.end", "q!b.p?a.end", 2));
    }

    #[test]
    fn output_can_be_anticipated_before_inputs() {
        // R2: outputs may cross any inputs.
        assert!(check("p!a.p?b.end", "p?b.p!a.end", 2));
        assert!(check("p!a.q?b.r?c.end", "q?b.r?c.p!a.end", 2));
    }

    #[test]
    fn sort_subtyping_is_respected() {
        // Receives are contravariant in the payload sort: a receiver of
        // i64 can stand where a u32 is produced.
        assert!(check("p?l(i64).end", "p?l(u32).end", 2));
        assert!(!check("p?l(u32).end", "p?l(i64).end", 2));
        // Sends are covariant.
        assert!(check("p!l(u32).end", "p!l(i64).end", 2));
        assert!(!check("p!l(i64).end", "p!l(u32).end", 2));
    }

    #[test]
    fn end_not_subtype_of_action() {
        assert!(!check("end", "p!a.end", 2));
        assert!(!check("p!a.end", "end", 2));
    }
}
