//! SISO prefixes `π` and the reduction relation `⟨π ⌈⌋ π′⟩  ⟨…⟩`
//! (paper Definition 3), in the lazily-removable representation of
//! Appendix B.5.
//!
//! A prefix is a grow-only list of transitions. Elements are consumed
//! either by advancing `start` (when the head is consumed) or by flagging
//! them removed (when a reduction consumes an element in the middle — the
//! `[)A]`/`[)B]` cases). [`Snapshot`]s record `(len, start, removed.len())`
//! so the depth-first visitor can revert cheaply without copying.

use theory::fsm::{Action, Direction};
use theory::sort::Sort;

/// A recorded point in a prefix's history; see [`Prefix::snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Length of `transitions` at snapshot time.
    pub size: usize,
    /// Value of `start` at snapshot time.
    pub start: usize,
    /// Length of the `removed` log at snapshot time.
    pub removed: usize,
}

/// A prefix `π`: the sequence of actions the algorithm has traversed but
/// not yet matched between subtype and supertype.
#[derive(Clone, Debug, Default)]
pub struct Prefix {
    /// `(removed, transition)` pairs; `removed` marks lazy deletion.
    transitions: Vec<(bool, Action)>,
    /// Elements before `start` are consumed (a cheap bulk form of removal).
    start: usize,
    /// Log of indices removed by flagging, in removal order, for revert.
    removed: Vec<usize>,
}

impl Prefix {
    /// Creates an empty prefix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an action to the prefix.
    pub fn push(&mut self, action: Action) {
        self.transitions.push((false, action));
    }

    /// True when no live elements remain.
    pub fn is_empty(&self) -> bool {
        self.live().next().is_none()
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.live().count()
    }

    /// Iterates over `(index, action)` for live elements, in order.
    pub fn live(&self) -> impl Iterator<Item = (usize, &Action)> {
        self.transitions
            .iter()
            .enumerate()
            .skip(self.start)
            .filter(|(_, (removed, _))| !removed)
            .map(|(index, (_, action))| (index, action))
    }

    /// The first live action, if any.
    pub fn head(&self) -> Option<&Action> {
        self.live().next().map(|(_, action)| action)
    }

    /// Removes the element at `index` (which must be live).
    ///
    /// Maintains the invariant that the element at `start` is never
    /// flagged: removing the head advances `start` past any flagged run.
    pub fn remove(&mut self, index: usize) {
        debug_assert!(index >= self.start);
        debug_assert!(!self.transitions[index].0, "double removal at {index}");
        if index == self.start {
            self.start += 1;
        } else {
            self.transitions[index].0 = true;
            self.removed.push(index);
        }
        // Advance start past any previously flagged elements so the head
        // is always a live element.
        while self
            .transitions
            .get(self.start)
            .is_some_and(|(removed, _)| *removed)
        {
            self.start += 1;
        }
    }

    /// Records the current state for a later [`Prefix::revert`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            size: self.transitions.len(),
            start: self.start,
            removed: self.removed.len(),
        }
    }

    /// Restores the prefix to `snapshot`: un-flags every element removed
    /// since, truncates appended elements and resets `start`.
    pub fn revert(&mut self, snapshot: Snapshot) {
        for &index in &self.removed[snapshot.removed..] {
            self.transitions[index].0 = false;
        }
        self.removed.truncate(snapshot.removed);
        self.transitions.truncate(snapshot.size);
        self.start = snapshot.start;
    }

    /// The `[asm]` termination check of Appendix B.5, Eq. (2):
    ///
    /// ```text
    /// transitions[start..] == transitions[..snapshot.size][snapshot.start..]
    /// ```
    ///
    /// Both ranges are compared with their *current* flags; a supertype
    /// action that "hangs on" without ever being consumed makes the left
    /// range strictly longer, failing the check — this is what rejects
    /// subtypes that forget actions (Fig A.14).
    pub fn matches_snapshot(&self, snapshot: Snapshot) -> bool {
        let current = &self.transitions[self.start.min(self.transitions.len())..];
        let recorded = &self.transitions[snapshot.start..snapshot.size];
        current == recorded
    }
}

/// Result of attempting one reduction step on a prefix pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reduction {
    /// A rule applied; the pair shrank.
    Progress,
    /// No rule applies now, but appending more actions may unblock it.
    Blocked,
    /// No rule can ever apply (fail-early, Appendix B.5): the subtype's
    /// head is permanently obstructed in the supertype prefix.
    DeadEnd,
}

/// Attempts a single reduction `⟨sub ⌈⌋ sup⟩  ⟨sub′ ⌈⌋ sup′⟩`, driven by
/// the head of the subtype prefix:
///
/// * `[)i]`/`[)o]`: the heads match directly,
/// * `[)A]`: a head input `p?ℓ` matches across a context `A(p)` of inputs
///   from participants other than `p`,
/// * `[)B]`: a head output `p!ℓ` matches across a context `B(p)` of inputs
///   (any) and outputs to participants other than `p`.
pub fn reduce_step(sub: &mut Prefix, sup: &mut Prefix) -> Reduction {
    let Some(head) = sub.head().cloned() else {
        return Reduction::Blocked;
    };
    let mut matched: Option<usize> = None;
    for (index, action) in sup.live() {
        if action.direction == head.direction
            && action.peer == head.peer
            && action.label == head.label
        {
            if sorts_compatible(&head, action) {
                matched = Some(index);
                break;
            }
            // Same action with incompatible payload: a permanent obstacle
            // (it is in neither A(p) nor B(p), and precedes any later match).
            return Reduction::DeadEnd;
        }
        let context_ok = match head.direction {
            // A(p): inputs from participants other than p.
            Direction::Receive => {
                action.direction == Direction::Receive && action.peer != head.peer
            }
            // B(p): any inputs, and outputs to participants other than p.
            Direction::Send => action.direction == Direction::Receive || action.peer != head.peer,
        };
        if !context_ok {
            return Reduction::DeadEnd;
        }
    }
    match matched {
        Some(index) => {
            let head_index = sub.live().next().map(|(i, _)| i).expect("head exists");
            sub.remove(head_index);
            sup.remove(index);
            Reduction::Progress
        }
        None => Reduction::Blocked,
    }
}

/// Exhaustively reduces the pair; returns `false` on a dead end.
pub fn reduce(sub: &mut Prefix, sup: &mut Prefix) -> bool {
    loop {
        match reduce_step(sub, sup) {
            Reduction::Progress => continue,
            Reduction::Blocked => return true,
            Reduction::DeadEnd => return false,
        }
    }
}

/// Payload compatibility for matched actions: receives are contravariant
/// (`[ref-in]`: the supertype's sort must be a subsort of the subtype's),
/// sends covariant (`[ref-out]`).
fn sorts_compatible(sub: &Action, sup: &Action) -> bool {
    match sub.direction {
        Direction::Receive => sup.sort.is_subsort_of(&sub.sort),
        Direction::Send => sub.sort.is_subsort_of(&sup.sort),
    }
}

/// Convenience constructor used by tests: builds a prefix from actions.
pub fn prefix_of(actions: impl IntoIterator<Item = Action>) -> Prefix {
    let mut prefix = Prefix::new();
    for action in actions {
        prefix.push(action);
    }
    prefix
}

#[allow(unused)]
fn sort_unit() -> Sort {
    Sort::Unit
}

#[cfg(test)]
mod tests {
    use super::*;
    use theory::fsm::Action;
    use theory::sort::Sort;

    fn send(peer: &str, label: &str) -> Action {
        Action::send(peer, label, Sort::Unit)
    }

    fn recv(peer: &str, label: &str) -> Action {
        Action::receive(peer, label, Sort::Unit)
    }

    /// Example 4 of the paper: `⟨p!ℓ2.p?ℓ1 ⌈⌋ p?ℓ1.p!ℓ2⟩` reduces via
    /// `[)B]` with `B(p) = p?ℓ1`, then `[)i]`.
    #[test]
    fn example4_safe_reordering_reduces() {
        let mut sub = prefix_of([send("p", "l2"), recv("p", "l1")]);
        let mut sup = prefix_of([recv("p", "l1"), send("p", "l2")]);
        assert!(reduce(&mut sub, &mut sup));
        assert!(sub.is_empty());
        assert!(sup.is_empty());
    }

    /// Example 4, unsafe direction: `A(q)` may not contain an output, so
    /// the head input cannot cross it — fail-early fires.
    #[test]
    fn example4_unsafe_reordering_dead_ends() {
        let mut sub = prefix_of([recv("q", "l2"), send("q", "l1")]);
        let mut sup = prefix_of([send("q", "l1"), recv("q", "l2")]);
        assert_eq!(reduce_step(&mut sub, &mut sup), Reduction::DeadEnd);
    }

    #[test]
    fn identical_heads_erase() {
        let mut sub = prefix_of([recv("p", "a"), send("q", "b")]);
        let mut sup = prefix_of([recv("p", "a"), send("q", "b")]);
        assert!(reduce(&mut sub, &mut sup));
        assert!(sub.is_empty() && sup.is_empty());
    }

    #[test]
    fn input_cannot_cross_same_peer_input() {
        let mut sub = prefix_of([recv("p", "a")]);
        let mut sup = prefix_of([recv("p", "b"), recv("p", "a")]);
        assert_eq!(reduce_step(&mut sub, &mut sup), Reduction::DeadEnd);
    }

    #[test]
    fn output_can_cross_inputs_and_foreign_outputs() {
        let mut sub = prefix_of([send("p", "a")]);
        let mut sup = prefix_of([recv("p", "x"), send("q", "y"), send("p", "a")]);
        assert_eq!(reduce_step(&mut sub, &mut sup), Reduction::Progress);
        // The B(p) context stays behind.
        assert_eq!(sup.len(), 2);
        assert!(sub.is_empty());
    }

    #[test]
    fn blocked_when_no_match_yet() {
        let mut sub = prefix_of([send("p", "a")]);
        let mut sup = prefix_of([recv("q", "x")]);
        assert_eq!(reduce_step(&mut sub, &mut sup), Reduction::Blocked);
    }

    #[test]
    fn snapshot_revert_restores_midlist_removals() {
        let mut prefix = prefix_of([recv("a", "1"), recv("b", "2"), recv("c", "3")]);
        let snapshot = prefix.snapshot();
        prefix.remove(1); // mid-list: flagged
        prefix.remove(0); // head: start advances past flagged idx 1
        assert_eq!(prefix.len(), 1);
        prefix.push(recv("d", "4"));
        prefix.revert(snapshot);
        assert_eq!(prefix.len(), 3);
        assert_eq!(
            prefix
                .live()
                .map(|(_, a)| a.label.as_str())
                .collect::<Vec<_>>(),
            vec!["1", "2", "3"]
        );
    }

    #[test]
    fn matches_snapshot_on_periodic_consumption() {
        // Simulate one loop iteration that consumes exactly what it adds.
        let mut prefix = Prefix::new();
        prefix.push(recv("p", "l"));
        let before = prefix.snapshot();
        prefix.push(recv("p", "l"));
        prefix.remove(0);
        assert!(prefix.matches_snapshot(before));
    }

    #[test]
    fn hanging_action_fails_snapshot_match() {
        // A q?l' that is never consumed makes the live range longer than
        // the recorded one.
        let mut prefix = Prefix::new();
        prefix.push(recv("q", "lp"));
        let before = prefix.snapshot();
        prefix.push(recv("p", "l"));
        assert!(!prefix.matches_snapshot(before));
    }

    #[test]
    fn sort_contravariance_in_reduction() {
        let mut sub = prefix_of([Action::receive("p", "l", Sort::I64)]);
        let mut sup = prefix_of([Action::receive("p", "l", Sort::U32)]);
        assert_eq!(reduce_step(&mut sub, &mut sup), Reduction::Progress);

        let mut sub = prefix_of([Action::receive("p", "l", Sort::U32)]);
        let mut sup = prefix_of([Action::receive("p", "l", Sort::I64)]);
        assert_eq!(reduce_step(&mut sub, &mut sup), Reduction::DeadEnd);
    }
}
