//! Sequential fast Fourier transform — the RustFFT stand-in baseline for
//! the paper's Fig 6 (FFT) benchmark.
//!
//! Implements the iterative radix-2 Cooley–Tukey algorithm over
//! [`Complex`] `f64` values with precomputed twiddle factors and in-place
//! bit-reversal, plus helpers for the 8-way decomposition used by the
//! message-passing version in the benchmark crate:
//!
//! * [`fft_in_place`] / [`ifft_in_place`] — single transforms,
//! * [`Planner`] — reusable twiddle tables (the RustFFT usage pattern),
//! * [`fft_columns_8`] — the paper's workload: an `n × 8` matrix
//!   transformed row-wise by independent 8-point FFTs,
//! * [`butterfly_stage`] — one pairwise stage of the decomposed FFT, the
//!   arithmetic each message-passing process performs between exchanges.

mod complex;

pub use complex::Complex;

/// Precomputed twiddle factors for a fixed power-of-two size.
///
/// Reusing a planner across transforms amortises the trigonometry, like
/// RustFFT's `FftPlanner`.
pub struct Planner {
    size: usize,
    /// Twiddles for each stage, concatenated: stage `s` (half-size `m/2`)
    /// starts at offset `m/2 - 1` where `m = 2^(s+1)`.
    twiddles: Vec<Complex>,
    inverse_twiddles: Vec<Complex>,
}

impl Planner {
    /// Builds a planner for transforms of `size` points.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two.
    pub fn new(size: usize) -> Self {
        assert!(size.is_power_of_two(), "FFT size must be a power of two");
        let mut twiddles = Vec::with_capacity(size.max(1) - 1);
        let mut inverse_twiddles = Vec::with_capacity(size.max(1) - 1);
        let mut m = 2;
        while m <= size {
            let step = -2.0 * std::f64::consts::PI / m as f64;
            for k in 0..m / 2 {
                let angle = step * k as f64;
                twiddles.push(Complex::from_polar(1.0, angle));
                inverse_twiddles.push(Complex::from_polar(1.0, -angle));
            }
            m *= 2;
        }
        Self {
            size,
            twiddles,
            inverse_twiddles,
        }
    }

    /// The transform size this planner serves.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Forward transform, in place.
    pub fn fft(&self, data: &mut [Complex]) {
        self.transform(data, false);
    }

    /// Inverse transform, in place (includes the `1/n` normalisation).
    pub fn ifft(&self, data: &mut [Complex]) {
        self.transform(data, true);
        let scale = 1.0 / self.size as f64;
        for value in data.iter_mut() {
            *value = value.scale(scale);
        }
    }

    fn transform(&self, data: &mut [Complex], inverse: bool) {
        assert_eq!(data.len(), self.size, "planner size mismatch");
        bit_reverse_permute(data);
        let twiddles = if inverse {
            &self.inverse_twiddles
        } else {
            &self.twiddles
        };
        let mut m = 2;
        let mut offset = 0;
        while m <= self.size {
            let half = m / 2;
            let stage = &twiddles[offset..offset + half];
            for chunk in data.chunks_exact_mut(m) {
                let (lo, hi) = chunk.split_at_mut(half);
                for k in 0..half {
                    let t = stage[k] * hi[k];
                    let u = lo[k];
                    lo[k] = u + t;
                    hi[k] = u - t;
                }
            }
            offset += half;
            m *= 2;
        }
    }
}

/// One-shot forward FFT (builds a throwaway [`Planner`]).
pub fn fft_in_place(data: &mut [Complex]) {
    Planner::new(data.len()).fft(data);
}

/// One-shot inverse FFT.
pub fn ifft_in_place(data: &mut [Complex]) {
    Planner::new(data.len()).ifft(data);
}

/// In-place bit-reversal permutation.
fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
}

/// The Fig 6 FFT workload: an `n × 8` matrix (8 columns of length `n`),
/// transformed by `n` independent 8-point FFTs across the columns — the
/// sequential equivalent of what the eight message-passing processes
/// compute together.
///
/// `columns` must contain exactly 8 equal-length columns; the transform
/// happens in place.
pub fn fft_columns_8(columns: &mut [Vec<Complex>]) {
    assert_eq!(columns.len(), 8, "workload is fixed at 8 columns");
    let rows = columns[0].len();
    assert!(
        columns.iter().all(|c| c.len() == rows),
        "ragged matrix: all columns must have the same length"
    );
    let planner = Planner::new(8);
    let mut row = [Complex::ZERO; 8];
    for r in 0..rows {
        for (c, column) in columns.iter().enumerate() {
            row[c] = column[r];
        }
        planner.fft(&mut row);
        for (c, column) in columns.iter_mut().enumerate() {
            column[r] = row[c];
        }
    }
}

/// One butterfly stage of the decomposed 8-point FFT: combines a process's
/// vector with its partner's, element-wise.
///
/// For partner distance `d` at stage `s` (`d = 4, 2, 1` for 8 points), the
/// lower process of each pair computes `u + w·t` and the upper `u - w·t`,
/// where `w` is the stage twiddle for the process's position. `is_lower`
/// selects which half this process holds; `twiddle` is applied to the
/// partner's (for lower) or own (for upper) contribution exactly as in the
/// interleaved Cooley–Tukey recursion.
pub fn butterfly_stage(
    mine: &mut [Complex],
    partners: &[Complex],
    twiddle: Complex,
    is_lower: bool,
) {
    assert_eq!(mine.len(), partners.len());
    if is_lower {
        for (m, p) in mine.iter_mut().zip(partners) {
            *m = *m + twiddle * *p;
        }
    } else {
        for (m, p) in mine.iter_mut().zip(partners) {
            *m = *p - twiddle * *m;
        }
    }
}

/// Twiddle factor `w` used by process `index` at the stage with partner
/// distance `distance`, for an 8-point decimation-in-time FFT.
pub fn stage_twiddle(index: usize, distance: usize, total: usize) -> Complex {
    // Stage with partner distance d combines blocks of size 2d; the
    // twiddle exponent is the process's position within the lower half of
    // its block, scaled by total/(2d).
    let block = 2 * distance;
    let position = index % distance;
    let exponent = position * (total / block);
    Complex::from_polar(
        1.0,
        -2.0 * std::f64::consts::PI * exponent as f64 / total as f64,
    )
}

/// Naive O(n²) DFT, used as the oracle in tests.
pub fn dft_reference(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut sum = Complex::ZERO;
            for (j, value) in data.iter().enumerate() {
                let angle = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                sum = sum + *value * Complex::from_polar(1.0, angle);
            }
            sum
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < 1e-9 && (x.im - y.im).abs() < 1e-9,
                "{x:?} != {y:?}"
            );
        }
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64, (i as f64 * 0.5).sin()))
            .collect()
    }

    #[test]
    fn matches_reference_dft() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let input = ramp(n);
            let expected = dft_reference(&input);
            let mut actual = input.clone();
            fft_in_place(&mut actual);
            assert_close(&actual, &expected);
        }
    }

    #[test]
    fn inverse_round_trip() {
        let input = ramp(128);
        let mut data = input.clone();
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        assert_close(&data, &input);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        Planner::new(12);
    }

    #[test]
    fn planner_reuse_matches_one_shot() {
        let planner = Planner::new(32);
        for seed in 0..4 {
            let input: Vec<Complex> = (0..32)
                .map(|i| Complex::new((i + seed) as f64, (i * seed) as f64))
                .collect();
            let mut a = input.clone();
            let mut b = input.clone();
            planner.fft(&mut a);
            fft_in_place(&mut b);
            assert_close(&a, &b);
        }
    }

    #[test]
    fn columns_workload_matches_rowwise_fft() {
        let rows = 16;
        let mut columns: Vec<Vec<Complex>> = (0..8)
            .map(|c| {
                (0..rows)
                    .map(|r| Complex::new((c * rows + r) as f64, (r as f64).cos()))
                    .collect()
            })
            .collect();
        let reference: Vec<Vec<Complex>> = (0..rows)
            .map(|r| {
                let row: Vec<Complex> = (0..8).map(|c| columns[c][r]).collect();
                dft_reference(&row)
            })
            .collect();
        fft_columns_8(&mut columns);
        for r in 0..rows {
            let actual: Vec<Complex> = (0..8).map(|c| columns[c][r]).collect();
            assert_close(&actual, &reference[r]);
        }
    }

    /// The message-passing decomposition: 8 "processes" each hold one
    /// column (bit-reversed order) and run three butterfly stages.
    #[test]
    fn butterfly_decomposition_matches_planner() {
        let rows = 8;
        let columns: Vec<Vec<Complex>> = (0..8)
            .map(|c| {
                (0..rows)
                    .map(|r| Complex::new((c + r) as f64, (c as f64) - (r as f64)))
                    .collect()
            })
            .collect();

        // Sequential oracle.
        let mut expected = columns.clone();
        fft_columns_8(&mut expected);

        // Parallel-style: processes start with bit-reversed columns.
        let mut state: Vec<Vec<Complex>> = (0..8)
            .map(|i| columns[(i as usize).reverse_bits() >> (usize::BITS - 3)].clone())
            .collect();
        for distance in [1usize, 2, 4] {
            let snapshot = state.clone();
            for (i, mine) in state.iter_mut().enumerate() {
                let partner = i ^ distance;
                let is_lower = i & distance == 0;
                let twiddle = stage_twiddle(i, distance, 8);
                butterfly_stage(mine, &snapshot[partner], twiddle, is_lower);
            }
        }
        for c in 0..8 {
            super::tests::assert_close(&state[c], &expected[c]);
        }
    }
}
