//! Minimal complex arithmetic (no external num crate).

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Builds a complex number from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Builds `r·e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Magnitude `|z|`.
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scales both components by a real factor.
    pub fn scale(self, factor: f64) -> Self {
        Self {
            re: self.re * factor,
            im: self.im * factor,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication() {
        let i = Complex::new(0.0, 1.0);
        assert_eq!(i * i, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn polar_unit_circle() {
        let z = Complex::from_polar(1.0, std::f64::consts::FRAC_PI_2);
        assert!((z.re).abs() < 1e-12);
        assert!((z.im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conjugate_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
    }
}
