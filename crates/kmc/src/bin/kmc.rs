//! Command-line interface to the k-multiparty compatibility checker.
//!
//! ```text
//! kmc <system-file> [--k N]
//! ```
//!
//! The system file contains one participant per line:
//!
//! ```text
//! s: rec x . t?ready . +{ t!value.x, t!stop.end }
//! t: rec x . s!ready . &{ s?value.x, s?stop.end }
//! ```
//!
//! Exits 0 when the system is k-MC safe, 1 on a violation.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut k = 1usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--k" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(value) => k = value,
                None => {
                    eprintln!("--k requires an integer");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: kmc <system-file> [--k N]");
                return ExitCode::SUCCESS;
            }
            other => path = Some(other.to_owned()),
        }
    }
    let Some(path) = path else {
        eprintln!("usage: kmc <system-file> [--k N]");
        return ExitCode::from(2);
    };

    let source = match std::fs::read_to_string(&path) {
        Ok(source) => source,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut specs = Vec::new();
    for (index, line) in source.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((role, body)) = line.split_once(':') else {
            eprintln!("{path}:{}: expected `role: local type`", index + 1);
            return ExitCode::from(2);
        };
        specs.push((role.trim().to_owned(), body.trim().to_owned()));
    }
    let specs: Vec<(&str, &str)> = specs
        .iter()
        .map(|(r, b)| (r.as_str(), b.as_str()))
        .collect();

    let system = match kmc::system_from_locals(&specs) {
        Ok(system) => system,
        Err(e) => {
            eprintln!("invalid system: {e}");
            return ExitCode::from(2);
        }
    };

    match kmc::check(&system, k) {
        Ok(report) => {
            println!(
                "{}-MC safe: {} configurations, {} transitions{}",
                k,
                report.configurations,
                report.transitions,
                if report.exhaustive {
                    ""
                } else {
                    " (not k-exhaustive: verdict holds up to this bound)"
                }
            );
            ExitCode::SUCCESS
        }
        Err(violation) => {
            println!("violation: {violation}");
            ExitCode::FAILURE
        }
    }
}
