//! k-multiparty compatibility (k-MC) — the global verification baseline
//! [Lange & Yoshida, CAV'19] used by Rumpsteak's bottom-up workflow
//! (paper §2.2) and benchmarked against the subtyping algorithm in Fig 7.
//!
//! A *system* is one communicating FSM per participant, exchanging messages
//! over FIFO channels (one per ordered pair of participants). k-MC explores
//! every configuration reachable when channels hold at most `k` pending
//! messages and reports:
//!
//! * **deadlocks** — a non-final configuration with no enabled transition,
//! * **reception errors** — a machine committed to receiving from `p` whose
//!   incoming channel head from `p` matches none of its expected labels,
//! * **orphan messages** — all machines terminated but a channel is
//!   non-empty,
//! * **k-exhaustivity** — whether some send was ever disabled by a full
//!   channel (if so, the verdict is only conclusive up to bound `k`).
//!
//! Exploration is a breadth-first search over the global configuration
//! graph, which grows exponentially with the number of participants and
//! with `k` — exactly the scaling the paper demonstrates in Fig 7.

use std::collections::{HashSet, VecDeque};
use std::fmt;

use theory::fsm::{Direction, Fsm, StateIndex};
use theory::name::Name;

/// Interned message label: an index into [`System::labels`].
///
/// Configurations store label ids instead of [`Name`]s so that hashing a
/// [`Config`] — the hot operation of the exploration's visited set —
/// hashes small integers instead of re-hashing label strings for every
/// queued message (the clone-heavy cost that dominated larger `k`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(pub u32);

/// A communicating system: one FSM per participant.
///
/// Machine roles must be pairwise distinct, and every action's peer must
/// name another machine in the system.
#[derive(Clone, Debug)]
pub struct System {
    machines: Vec<Fsm>,
    roles: Vec<Name>,
    /// Label table: `LabelId(i)` names `labels[i]`; first-occurrence
    /// order over machines/states/transitions, so deterministic.
    labels: Vec<Name>,
}

/// Errors constructing a [`System`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SystemError {
    /// Two machines share a role name.
    DuplicateRole(Name),
    /// An action references a participant with no machine.
    UnknownPeer { role: Name, peer: Name },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::DuplicateRole(role) => write!(f, "duplicate role {role}"),
            SystemError::UnknownPeer { role, peer } => {
                write!(f, "machine {role} references unknown peer {peer}")
            }
        }
    }
}

impl std::error::Error for SystemError {}

impl System {
    /// Builds a system from per-participant machines.
    pub fn new(machines: Vec<Fsm>) -> Result<Self, SystemError> {
        let roles: Vec<Name> = machines.iter().map(|m| m.role.clone()).collect();
        for (index, role) in roles.iter().enumerate() {
            if roles[..index].contains(role) {
                return Err(SystemError::DuplicateRole(role.clone()));
            }
        }
        let mut labels: Vec<Name> = Vec::new();
        for machine in &machines {
            for state in machine.states() {
                for (action, _) in machine.transitions(state) {
                    if !roles.contains(&action.peer) {
                        return Err(SystemError::UnknownPeer {
                            role: machine.role.clone(),
                            peer: action.peer.clone(),
                        });
                    }
                    if !labels.contains(&action.label) {
                        labels.push(action.label.clone());
                    }
                }
            }
        }
        Ok(Self {
            machines,
            roles,
            labels,
        })
    }

    /// The machines in the system.
    pub fn machines(&self) -> &[Fsm] {
        &self.machines
    }

    /// Participant names, indexed like [`Self::machines`]. Channel
    /// `roles()[i] → roles()[j]` lives at index `i * n + j` in a
    /// [`Config`]'s channel vector and in [`Report::max_depths`].
    pub fn roles(&self) -> &[Name] {
        &self.roles
    }

    /// The interned label table (resolve a [`LabelId`] from a
    /// [`Config`]'s channel contents back to its name).
    pub fn labels(&self) -> &[Name] {
        &self.labels
    }

    fn role_index(&self, role: &Name) -> usize {
        self.roles
            .iter()
            .position(|r| r == role)
            .expect("validated at construction")
    }

    fn label_id(&self, label: &Name) -> LabelId {
        LabelId(
            self.labels
                .iter()
                .position(|l| l == label)
                .expect("interned at construction") as u32,
        )
    }

    fn channel_index(&self, from: usize, to: usize) -> usize {
        from * self.machines.len() + to
    }
}

/// A global configuration: one state per machine plus all channel contents.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Config {
    /// Current state of each machine, indexed like `System::machines`.
    pub states: Vec<StateIndex>,
    /// FIFO contents of channel `from → to` at `from * n + to`, as
    /// interned [`LabelId`]s (see [`System::labels`]).
    pub channels: Vec<VecDeque<LabelId>>,
}

/// A violation of k-multiparty compatibility.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// No transition is enabled but the system has not terminated.
    Deadlock(Config),
    /// `role` can only receive from `peer`, whose next message `found` is
    /// not among the expected labels.
    ReceptionError {
        /// The offending configuration.
        config: Config,
        /// The machine that cannot proceed.
        role: Name,
        /// The peer whose message is unexpected.
        peer: Name,
        /// The unexpected label at the head of the channel.
        found: Name,
    },
    /// All machines terminated with messages still in flight.
    OrphanMessages(Config),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Deadlock(_) => f.write_str("deadlock: no machine can make progress"),
            Violation::ReceptionError {
                role, peer, found, ..
            } => write!(
                f,
                "reception error: {role} cannot receive {found} from {peer}"
            ),
            Violation::OrphanMessages(_) => f.write_str("orphan messages at termination"),
        }
    }
}

impl std::error::Error for Violation {}

/// Statistics of a successful k-MC run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// Number of distinct configurations explored.
    pub configurations: usize,
    /// Number of transitions fired during exploration.
    pub transitions: usize,
    /// False if some send was disabled by a full channel: the verdict is
    /// then only conclusive for executions that stay within bound `k`.
    pub exhaustive: bool,
    /// Maximum queue depth each channel reached during exploration,
    /// indexed `from * n + to` like [`Config::channels`]. When
    /// [`Self::exhaustive`] is true these are *tight static bounds*: no
    /// execution of the system can ever hold more messages in flight on
    /// that channel, so a runtime observing `depth > max_depths[c]`
    /// has witnessed a verification bug.
    pub max_depths: Vec<usize>,
}

impl Report {
    /// The channels that ever carried a message, as
    /// `(from, to, max_depth)` triples resolved against `system` (which
    /// must be the system this report was produced from).
    pub fn channel_bounds<'a>(&'a self, system: &'a System) -> Vec<(&'a Name, &'a Name, usize)> {
        let n = system.roles().len();
        assert_eq!(self.max_depths.len(), n * n, "report/system mismatch");
        let mut bounds = Vec::new();
        for (index, &depth) in self.max_depths.iter().enumerate() {
            if depth > 0 {
                bounds.push((
                    &system.roles()[index / n],
                    &system.roles()[index % n],
                    depth,
                ));
            }
        }
        bounds
    }
}

/// One machine transition with peer and label pre-resolved to indices,
/// so the exploration loop never hashes a name or searches the role
/// list.
#[derive(Clone, Copy)]
struct CompiledAction {
    direction: Direction,
    /// Index of the peer machine.
    peer: usize,
    label: LabelId,
    target: StateIndex,
}

/// Runs the k-MC check with channel bound `k` (`k ≥ 1`).
pub fn check(system: &System, k: usize) -> Result<Report, Violation> {
    let k = k.max(1);
    let machine_count = system.machines.len();

    // Compile every transition once: peer names become machine indices,
    // labels become interned ids (the exploration then touches only
    // integers — configurations hash and compare without string work).
    let compiled: Vec<Vec<Vec<CompiledAction>>> = system
        .machines
        .iter()
        .map(|machine| {
            machine
                .states()
                .map(|state| {
                    machine
                        .transitions(state)
                        .iter()
                        .map(|(action, target)| CompiledAction {
                            direction: action.direction,
                            peer: system.role_index(&action.peer),
                            label: system.label_id(&action.label),
                            target: *target,
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    let initial = Config {
        states: system.machines.iter().map(|m| m.initial()).collect(),
        channels: vec![VecDeque::new(); machine_count * machine_count],
    };

    let mut seen: HashSet<Config> = HashSet::new();
    let mut queue = VecDeque::new();
    queue.push_back(initial.clone());
    seen.insert(initial);

    let mut transitions = 0usize;
    let mut exhaustive = true;
    let mut max_depths = vec![0usize; machine_count * machine_count];

    while let Some(config) = queue.pop_front() {
        let mut enabled_any = false;

        for (index, states) in compiled.iter().enumerate() {
            let state = config.states[index];
            for action in &states[state.0] {
                match action.direction {
                    Direction::Send => {
                        let channel = system.channel_index(index, action.peer);
                        if config.channels[channel].len() >= k {
                            exhaustive = false;
                            continue;
                        }
                        let mut next = config.clone();
                        next.states[index] = action.target;
                        next.channels[channel].push_back(action.label);
                        let depth = next.channels[channel].len();
                        if depth > max_depths[channel] {
                            max_depths[channel] = depth;
                        }
                        enabled_any = true;
                        transitions += 1;
                        if !seen.contains(&next) {
                            queue.push_back(next.clone());
                            seen.insert(next);
                        }
                    }
                    Direction::Receive => {
                        let channel = system.channel_index(action.peer, index);
                        if config.channels[channel].front() != Some(&action.label) {
                            continue;
                        }
                        let mut next = config.clone();
                        next.states[index] = action.target;
                        next.channels[channel].pop_front();
                        enabled_any = true;
                        transitions += 1;
                        if !seen.contains(&next) {
                            queue.push_back(next.clone());
                            seen.insert(next);
                        }
                    }
                }
            }
        }

        // Reception errors: a machine committed to receiving whose
        // matching channel head is unexpected.
        for (index, states) in compiled.iter().enumerate() {
            let state = config.states[index];
            let all = &states[state.0];
            if all.is_empty() || all.iter().any(|a| a.direction != Direction::Receive) {
                // Not a receive-committed state (sends can still progress).
                continue;
            }
            for action in all {
                let channel = system.channel_index(action.peer, index);
                if let Some(&found) = config.channels[channel].front() {
                    let expected = all
                        .iter()
                        .any(|a| a.peer == action.peer && a.label == found);
                    if !expected {
                        return Err(Violation::ReceptionError {
                            role: system.roles[index].clone(),
                            peer: system.roles[action.peer].clone(),
                            found: system.labels[found.0 as usize].clone(),
                            config,
                        });
                    }
                }
            }
        }

        let final_config = config
            .states
            .iter()
            .enumerate()
            .all(|(index, state)| system.machines[index].is_terminal(*state));
        let channels_empty = config.channels.iter().all(|c| c.is_empty());

        if final_config && !channels_empty {
            return Err(Violation::OrphanMessages(config));
        }
        if !enabled_any && !final_config {
            return Err(Violation::Deadlock(config));
        }
    }

    Ok(Report {
        configurations: seen.len(),
        transitions,
        exhaustive,
        max_depths,
    })
}

/// Builds a system from `(role, local type text)` pairs; test/bench helper.
pub fn system_from_locals(specs: &[(&str, &str)]) -> Result<System, Box<dyn std::error::Error>> {
    let mut machines = Vec::with_capacity(specs.len());
    for (role, text) in specs {
        let local = theory::local::parse(text)?;
        machines.push(theory::fsm::from_local(&Name::from(*role), &local)?);
    }
    Ok(System::new(machines)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_party_ping_pong_is_safe() {
        let system =
            system_from_locals(&[("a", "b!ping.b?pong.end"), ("b", "a?ping.a!pong.end")]).unwrap();
        let report = check(&system, 1).unwrap();
        assert!(report.exhaustive);
        assert!(report.configurations >= 4);
    }

    #[test]
    fn example2_deadlock_detected() {
        // Both participants reordered to receive first: classic deadlock
        // (paper Example 2, unsafe direction).
        let system = system_from_locals(&[("p", "q?l2.q!l1.end"), ("q", "p?l1.p!l2.end")]).unwrap();
        assert!(matches!(check(&system, 2), Err(Violation::Deadlock(_))));
    }

    #[test]
    fn example2_safe_reorder_passes() {
        // Only q reordered (send first): safe.
        let system = system_from_locals(&[("p", "q!l1.q?l2.end"), ("q", "p!l2.p?l1.end")]).unwrap();
        check(&system, 2).unwrap();
    }

    #[test]
    fn reception_error_detected() {
        let system = system_from_locals(&[("a", "b!oops.end"), ("b", "a?expected.end")]).unwrap();
        assert!(matches!(
            check(&system, 1),
            Err(Violation::ReceptionError { .. })
        ));
    }

    #[test]
    fn orphan_message_detected() {
        let system = system_from_locals(&[("a", "b!extra.end"), ("b", "end")]).unwrap();
        assert!(matches!(
            check(&system, 1),
            Err(Violation::OrphanMessages(_))
        ));
    }

    #[test]
    fn streaming_protocol_is_safe() {
        let system = system_from_locals(&[
            ("s", "rec x . t?ready . +{ t!value.x, t!stop.end }"),
            ("t", "rec x . s!ready . &{ s?value.x, s?stop.end }"),
        ])
        .unwrap();
        check(&system, 1).unwrap();
    }

    #[test]
    fn double_buffering_with_optimised_kernel_is_safe() {
        let system = system_from_locals(&[
            ("s", "rec x . k?ready . k!value . x"),
            (
                "k",
                "s!ready . rec x . s!ready . s?value . t?ready . t!value . x",
            ),
            ("t", "rec x . k!ready . k?value . x"),
        ])
        .unwrap();
        let report = check(&system, 2).unwrap();
        assert!(report.configurations > 4);
    }

    #[test]
    fn nonexhaustive_flagged_when_buffer_too_small() {
        // The optimised kernel needs 2 slots towards the source; k = 1
        // cannot certify it.
        let system = system_from_locals(&[
            ("s", "rec x . k?ready . k!value . x"),
            (
                "k",
                "s!ready . rec x . s!ready . s?value . t?ready . t!value . x",
            ),
            ("t", "rec x . k!ready . k?value . x"),
        ])
        .unwrap();
        let report = check(&system, 1).unwrap();
        assert!(!report.exhaustive);
    }

    #[test]
    fn ring_of_three_is_safe() {
        let system = system_from_locals(&[
            ("a", "rec x . b!v . c?v . x"),
            ("b", "rec x . a?v . c!v . x"),
            ("c", "rec x . b?v . a!v . x"),
        ])
        .unwrap();
        check(&system, 1).unwrap();
    }

    #[test]
    fn max_depths_reports_tight_channel_bounds() {
        // Ping-pong alternates strictly: no channel ever holds more than
        // one message even with a generous bound.
        let system =
            system_from_locals(&[("a", "b!ping.b?pong.end"), ("b", "a?ping.a!pong.end")]).unwrap();
        let report = check(&system, 4).unwrap();
        assert!(report.exhaustive);
        let bounds = report.channel_bounds(&system);
        assert_eq!(bounds.len(), 2);
        assert!(bounds.iter().all(|&(_, _, depth)| depth == 1));

        // The optimised double-buffering kernel keeps two `ready` tokens
        // in flight towards the source; the bound must see both.
        let system = system_from_locals(&[
            ("s", "rec x . k?ready . k!value . x"),
            (
                "k",
                "s!ready . rec x . s!ready . s?value . t?ready . t!value . x",
            ),
            ("t", "rec x . k!ready . k?value . x"),
        ])
        .unwrap();
        let report = check(&system, 2).unwrap();
        assert!(report.exhaustive);
        let k_to_s = report
            .channel_bounds(&system)
            .into_iter()
            .find(|(from, to, _)| from.as_str() == "k" && to.as_str() == "s")
            .expect("k -> s channel used");
        assert_eq!(k_to_s.2, 2);
    }

    #[test]
    fn duplicate_roles_rejected() {
        let result = system_from_locals(&[("a", "b!x.end"), ("a", "b?x.end")]);
        assert!(result.is_err());
    }

    #[test]
    fn unknown_peer_rejected() {
        let result = system_from_locals(&[("a", "z!x.end")]);
        assert!(result.is_err());
    }
}
