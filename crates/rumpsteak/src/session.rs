//! The generic session primitives (paper §2.1, Listings 2–3).
//!
//! Each primitive is an affine typestate: executing it consumes the value
//! and returns the continuation, so a channel can never be used twice.
//! `try_session` requires the closure to hand back an [`End`], so a session
//! cannot be silently discarded half-way (breaking linearity fails to
//! type-check).

use std::future::Future;
use std::marker::PhantomData;
use std::task::Poll;

use crate::role::{Message, Role, Route};
use crate::telemetry;
use crate::transport::Transport;
use crate::{Error, Result};

/// Records a session trace event for types `(role, peer, label)`.
/// Identifies participants via `type_name` (no extra trait bounds) with
/// module paths and generics stripped; compiles away without the
/// `telemetry` feature.
#[inline]
fn trace_event<Q, R, L>(kind: telemetry::trace::Kind) {
    if telemetry::ENABLED {
        telemetry::trace::event(
            kind,
            telemetry::short_type_name(std::any::type_name::<Q>()),
            telemetry::short_type_name(std::any::type_name::<R>()),
            telemetry::short_type_name(std::any::type_name::<L>()),
        );
    }
}

/// The private capability to act as role `Q` within one session: an
/// exclusive borrow of the role struct.
///
/// Holding `&'q mut Q` is what prevents the same role from participating
/// in two sessions at once (paper §2.1, "channel reuse"): the borrow
/// checker rejects a second `try_session` until the first completes.
pub struct State<'q, Q> {
    pub(crate) role: &'q mut Q,
}

impl<'q, Q> State<'q, Q> {
    fn new(role: &'q mut Q) -> Self {
        Self { role }
    }
}

/// Construction of a session state from the role capability.
///
/// Implemented by every primitive and by the types generated with
/// [`session!`](macro@crate::session) / [`choice!`](crate::choice).
pub trait FromState<'q>: Sized {
    /// The role this session type belongs to.
    type Role;

    /// Builds the state. Hidden: user code receives states from
    /// [`try_session`] and from executing primitives, never by forging.
    #[doc(hidden)]
    fn from_state(state: State<'q, Self::Role>) -> Self;
}

/// Send `L` to peer `R`, continuing as `S`.
#[must_use = "sessions must be driven to completion"]
pub struct Send<'q, Q, R, L, S> {
    state: State<'q, Q>,
    phantom: PhantomData<(R, L, S)>,
}

impl<'q, Q, R, L, S> FromState<'q> for Send<'q, Q, R, L, S> {
    type Role = Q;

    fn from_state(state: State<'q, Q>) -> Self {
        Self {
            state,
            phantom: PhantomData,
        }
    }
}

impl<'q, Q, R, L, S> Send<'q, Q, R, L, S>
where
    Q: Route<R>,
    Q::Message: Message<L>,
    S: FromState<'q, Role = Q>,
{
    /// Enqueues `label` for `R` and returns the continuation.
    ///
    /// The send commits through the transport's reserve/commit path: a
    /// ring slot is reserved and the wire message is written directly
    /// into it. On the default growable links this resolves on the first
    /// poll (sends never block — channels are the paper's unbounded
    /// asynchronous queues); on a capacity-bounded link the future parks
    /// under back-pressure until the peer frees a slot. The future is a
    /// plain ADT rather than an `async fn` so that auto-trait (`Send`)
    /// inference never hits higher-ranked lifetime obligations when
    /// sessions are spawned.
    pub fn send(self, label: L) -> SendFuture<'q, Q, R, L, S> {
        SendFuture {
            state: Some(self.state),
            message: Some(Message::upcast(label)),
            phantom: PhantomData,
        }
    }
}

/// Future returned by [`Send::send`]; a hand-written ADT so that
/// `Send`-ness is structural.
#[must_use = "futures do nothing unless awaited"]
pub struct SendFuture<'q, Q: Role, R, L, S> {
    state: Option<State<'q, Q>>,
    /// The upcast wire message, taken by the transport on commit.
    message: Option<Q::Message>,
    phantom: PhantomData<(R, L, S)>,
}

impl<'q, Q, R, L, S> Future for SendFuture<'q, Q, R, L, S>
where
    Q: Route<R>,
    Q::Message: Message<L>,
    S: FromState<'q, Role = Q>,
{
    type Output = Result<S>;

    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut std::task::Context<'_>) -> Poll<Self::Output> {
        // No structural pinning: fields are only moved out, never pinned.
        let this = unsafe { self.get_unchecked_mut() };
        let state = this.state.as_mut().expect("polled after completion");
        match state.role.route().poll_send(cx, &mut this.message) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Err(_)) => Poll::Ready(Err(Error::ChannelClosed)),
            Poll::Ready(Ok(())) => {
                trace_event::<Q, R, L>(telemetry::trace::Kind::Send);
                let state = this.state.take().expect("checked above");
                Poll::Ready(Ok(S::from_state(state)))
            }
        }
    }
}

/// Receive `L` from peer `R`, continuing as `S`.
#[must_use = "sessions must be driven to completion"]
pub struct Receive<'q, Q, R, L, S> {
    state: State<'q, Q>,
    phantom: PhantomData<(R, L, S)>,
}

impl<'q, Q, R, L, S> FromState<'q> for Receive<'q, Q, R, L, S> {
    type Role = Q;

    fn from_state(state: State<'q, Q>) -> Self {
        Self {
            state,
            phantom: PhantomData,
        }
    }
}

impl<'q, Q, R, L, S> Receive<'q, Q, R, L, S>
where
    Q: Route<R>,
    Q::Message: Message<L>,
    S: FromState<'q, Role = Q>,
{
    /// Awaits the next message from `R` and returns it with the
    /// continuation.
    pub fn receive(self) -> ReceiveFuture<'q, Q, R, L, S> {
        ReceiveFuture {
            state: Some(self.state),
            phantom: PhantomData,
        }
    }
}

/// Future returned by [`Receive::receive`]; a hand-written ADT so that
/// `Send`-ness is structural.
#[must_use = "futures do nothing unless awaited"]
pub struct ReceiveFuture<'q, Q, R, L, S> {
    state: Option<State<'q, Q>>,
    phantom: PhantomData<(R, L, S)>,
}

impl<'q, Q, R, L, S> Future for ReceiveFuture<'q, Q, R, L, S>
where
    Q: Route<R>,
    Q::Message: Message<L>,
    S: FromState<'q, Role = Q>,
{
    type Output = Result<(L, S)>;

    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut std::task::Context<'_>) -> Poll<Self::Output> {
        // No structural pinning: all fields are Unpin.
        let this = unsafe { self.get_unchecked_mut() };
        let state = this.state.as_mut().expect("polled after completion");
        // Non-blocking fast path first, falling back to `poll_recv` only
        // on an empty queue; `poll_recv` then registers the waker (and
        // re-checks, so nothing is lost). The session layer spells the
        // two phases out so the hot path stays a plain pop even if the
        // transport's `poll_recv` changes shape.
        let message = match state.role.route().try_recv() {
            Some(message) => message,
            None => match state.role.route().poll_recv(cx) {
                Poll::Pending => return Poll::Pending,
                Poll::Ready(None) => return Poll::Ready(Err(Error::ChannelClosed)),
                Poll::Ready(Some(message)) => message,
            },
        };
        let label = match <Q::Message as Message<L>>::downcast(message) {
            Ok(label) => label,
            Err(_) => return Poll::Ready(Err(Error::UnexpectedMessage)),
        };
        trace_event::<Q, R, L>(telemetry::trace::Kind::Receive);
        let state = this.state.take().expect("checked above");
        Poll::Ready(Ok((label, S::from_state(state))))
    }
}

/// Maps one selectable label `L` to its continuation within a choice enum.
///
/// Generated by [`choice!`](crate::choice) for every variant.
pub trait Choice<'q, L> {
    /// The session state after selecting `L`.
    type Continuation: FromState<'q>;
}

/// Internal choice towards peer `R`: pick any label of the enum `C`.
#[must_use = "sessions must be driven to completion"]
pub struct Select<'q, Q, R, C> {
    state: State<'q, Q>,
    phantom: PhantomData<(R, C)>,
}

impl<'q, Q, R, C> FromState<'q> for Select<'q, Q, R, C> {
    type Role = Q;

    fn from_state(state: State<'q, Q>) -> Self {
        Self {
            state,
            phantom: PhantomData,
        }
    }
}

impl<'q, Q, R, C> Select<'q, Q, R, C>
where
    Q: Route<R>,
{
    /// Sends the chosen `label`; the continuation depends on the label's
    /// variant in `C`. Like [`Send::send`], the send goes through the
    /// transport's reserve/commit path: immediate on growable links,
    /// parking under back-pressure on capacity-bounded ones.
    pub fn select<L>(self, label: L) -> SelectFuture<'q, Q, R, C, L>
    where
        Q: Role,
        Q::Message: Message<L>,
        C: Choice<'q, L>,
        C::Continuation: FromState<'q, Role = Q>,
    {
        SelectFuture {
            state: Some(self.state),
            message: Some(Message::upcast(label)),
            phantom: PhantomData,
        }
    }
}

/// Future returned by [`Select::select`]; a hand-written ADT so that
/// `Send`-ness is structural.
#[must_use = "futures do nothing unless awaited"]
pub struct SelectFuture<'q, Q: Role, R, C, L> {
    state: Option<State<'q, Q>>,
    /// The upcast wire message, taken by the transport on commit.
    message: Option<Q::Message>,
    phantom: PhantomData<(R, C, L)>,
}

impl<'q, Q, R, C, L> Future for SelectFuture<'q, Q, R, C, L>
where
    Q: Route<R>,
    Q::Message: Message<L>,
    C: Choice<'q, L>,
    C::Continuation: FromState<'q, Role = Q>,
{
    type Output = Result<C::Continuation>;

    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut std::task::Context<'_>) -> Poll<Self::Output> {
        // No structural pinning: fields are only moved out, never pinned.
        let this = unsafe { self.get_unchecked_mut() };
        let state = this.state.as_mut().expect("polled after completion");
        match state.role.route().poll_send(cx, &mut this.message) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Err(_)) => Poll::Ready(Err(Error::ChannelClosed)),
            Poll::Ready(Ok(())) => {
                trace_event::<Q, R, L>(telemetry::trace::Kind::Select);
                let state = this.state.take().expect("checked above");
                Poll::Ready(Ok(C::Continuation::from_state(state)))
            }
        }
    }
}

/// Downcast of a received wire message into a choice enum whose variants
/// pair the label with its continuation.
///
/// Generated by [`choice!`](crate::choice).
pub trait Choices<'q>: Sized {
    /// The role whose session branches here.
    type Role: Role;

    /// Matches the message against every variant; returns the message
    /// unchanged if none matched.
    #[doc(hidden)]
    fn downcast(
        state: State<'q, Self::Role>,
        message: <Self::Role as Role>::Message,
    ) -> std::result::Result<Self, <Self::Role as Role>::Message>;
}

/// External choice from peer `R`: receive whichever label the peer chose.
#[must_use = "sessions must be driven to completion"]
pub struct Branch<'q, Q, R, C> {
    state: State<'q, Q>,
    phantom: PhantomData<(R, C)>,
}

impl<'q, Q, R, C> FromState<'q> for Branch<'q, Q, R, C> {
    type Role = Q;

    fn from_state(state: State<'q, Q>) -> Self {
        Self {
            state,
            phantom: PhantomData,
        }
    }
}

impl<'q, Q, R, C> Branch<'q, Q, R, C>
where
    Q: Role + Route<R>,
    C: Choices<'q, Role = Q>,
{
    /// Awaits the peer's choice; pattern-match the returned enum to learn
    /// which label arrived and continue accordingly.
    pub fn branch(self) -> BranchFuture<'q, Q, R, C> {
        BranchFuture {
            state: Some(self.state),
            phantom: PhantomData,
        }
    }
}

/// Future returned by [`Branch::branch`].
#[must_use = "futures do nothing unless awaited"]
pub struct BranchFuture<'q, Q, R, C> {
    state: Option<State<'q, Q>>,
    phantom: PhantomData<(R, C)>,
}

impl<'q, Q, R, C> Future for BranchFuture<'q, Q, R, C>
where
    Q: Role + Route<R>,
    C: Choices<'q, Role = Q>,
{
    type Output = Result<C>;

    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut std::task::Context<'_>) -> Poll<Self::Output> {
        let this = unsafe { self.get_unchecked_mut() };
        let state = this.state.as_mut().expect("polled after completion");
        // Same non-blocking fast path as `ReceiveFuture`: pop an already
        // published choice before registering any waker.
        let message = match state.role.route().try_recv() {
            Some(message) => message,
            None => match state.role.route().poll_recv(cx) {
                Poll::Pending => return Poll::Pending,
                Poll::Ready(None) => return Poll::Ready(Err(Error::ChannelClosed)),
                Poll::Ready(Some(message)) => message,
            },
        };
        let state = this.state.take().expect("checked above");
        Poll::Ready(match C::downcast(state, message) {
            Ok(choices) => {
                // The concrete label is buried in the enum; record the
                // choice type, which names the branch point.
                trace_event::<Q, R, C>(telemetry::trace::Kind::Branch);
                Ok(choices)
            }
            Err(_) => Err(Error::UnexpectedMessage),
        })
    }
}

/// The completed session. The only way user code obtains one is by
/// executing the protocol to its end, which is how `try_session` verifies
/// linear completion.
#[must_use = "return End from the try_session closure"]
pub struct End<'q, Q> {
    state: State<'q, Q>,
}

impl<'q, Q> FromState<'q> for End<'q, Q> {
    type Role = Q;

    fn from_state(state: State<'q, Q>) -> Self {
        Self { state }
    }
}

impl<Q> End<'_, Q> {
    /// Releases the role borrow explicitly (dropping has the same effect).
    pub fn finish(self) {
        let _ = self.state;
    }
}

/// Unwrapping of a named recursion point (generated by
/// [`session!`](macro@crate::session) for `struct` definitions) into its body,
/// used at loop back-edges:
///
/// ```ignore
/// let s = t.into_session().send(Ready).await?;
/// ```
pub trait IntoSession<'q>: FromState<'q> {
    /// The unfolded session type.
    type Session: FromState<'q, Role = Self::Role>;

    /// Unfolds one level of recursion.
    fn into_session(self) -> Self::Session;
}

/// Runs a session closure for `role`, enforcing protocol completion.
///
/// The closure receives the initial state `S` and must return the final
/// [`End`] together with its result; infinite protocols coerce via Rust's
/// never type as in the paper (Listing 3, "infinite recursion").
pub async fn try_session<'q, Q, S, T, F, Fut>(role: &'q mut Q, f: F) -> Result<T>
where
    Q: Role,
    S: FromState<'q, Role = Q>,
    F: FnOnce(S) -> Fut,
    Fut: Future<Output = Result<(T, End<'q, Q>)>>,
{
    let started = if telemetry::ENABLED {
        telemetry::trace::now_ns()
    } else {
        0
    };
    let session = S::from_state(State::new(role));
    let (output, end) = f(session).await?;
    end.finish();
    if telemetry::ENABLED {
        // Spawn→teardown lifetime of one completed session run, keyed
        // by the role that drove it.
        telemetry::hist::record_session(
            Q::name(),
            telemetry::trace::now_ns().saturating_sub(started),
        );
    }
    Ok(output)
}

/// Generates session type aliases and recursion-point structs.
///
/// * `type Name<'q> = …;` — a plain alias for a finite protocol segment.
/// * `struct Name<'q> for Role = …;` — a named recursion point that may
///   reference itself inside its body; implements [`IntoSession`] for
///   unfolding at loop back-edges.
///
/// ```ignore
/// session! {
///     type Kernel<'q> = Send<'q, K, S, Ready, KernelLoop<'q>>;
///     struct KernelLoop<'q> for K = Send<'q, K, S, Ready,
///         Receive<'q, K, S, Value, Receive<'q, K, T, Ready,
///         Send<'q, K, T, Value, KernelLoop<'q>>>>>;
/// }
/// ```
#[macro_export]
macro_rules! session {
    () => {};
    (type $name:ident<$lt:lifetime> = $inner:ty ; $($rest:tt)*) => {
        /// Session type alias generated by `session!`.
        pub type $name<$lt> = $inner;
        $crate::session! { $($rest)* }
    };
    (struct $name:ident<$lt:lifetime> for $role:ty = $inner:ty ; $($rest:tt)*) => {
        /// Named recursion point generated by `session!`.
        #[must_use = "sessions must be driven to completion"]
        pub struct $name<$lt>($inner);

        impl<$lt> $crate::FromState<$lt> for $name<$lt> {
            type Role = $role;
            fn from_state(state: $crate::State<$lt, $role>) -> Self {
                Self(<$inner as $crate::FromState<$lt>>::from_state(state))
            }
        }

        impl<$lt> $crate::IntoSession<$lt> for $name<$lt> {
            type Session = $inner;
            fn into_session(self) -> $inner {
                self.0
            }
        }

        // Deliberately unconditional (no `$inner: SessionFsm` bound): a
        // conditional impl would send trait resolution through the
        // recursion cycle and overflow on choice-free loops; the body
        // itself re-proves the obligation, which terminates because it
        // passes through this very impl.
        impl<$lt> $crate::SessionFsm for $name<$lt> {
            const KEY: Option<&'static str> = Some(stringify!($name));
            fn fill(
                builder: &mut ::theory::fsm::FsmBuilder,
                visited: &mut ::std::collections::HashMap<&'static str, ::theory::fsm::StateIndex>,
                state: ::theory::fsm::StateIndex,
            ) {
                <$inner as $crate::SessionFsm>::fill(builder, visited, state);
            }
        }

        $crate::session! { $($rest)* }
    };
}

/// Generates a choice enum, its [`Choices`] downcast, per-label
/// [`Choice`] impls and the serialisation glue.
///
/// ```ignore
/// choice! {
///     enum SourceChoice<'q> for S {
///         Value(Value) => SourceLoop<'q>,
///         Stop(Stop) => End<'q, S>,
///     }
/// }
/// ```
#[macro_export]
macro_rules! choice {
    (enum $name:ident<$lt:lifetime> for $role:ident {
        $($variant:ident($label:ty) => $cont:ty),* $(,)?
    }) => {
        /// Choice enum generated by `choice!`: each variant pairs the
        /// received label with the session continuation.
        #[must_use = "sessions must be driven to completion"]
        pub enum $name<$lt> {
            $(
                #[allow(missing_docs)]
                $variant($label, $cont),
            )*
        }

        impl<$lt> $crate::Choices<$lt> for $name<$lt> {
            type Role = $role;

            fn downcast(
                state: $crate::State<$lt, $role>,
                message: <$role as $crate::Role>::Message,
            ) -> ::std::result::Result<Self, <$role as $crate::Role>::Message> {
                $(
                    let message = match <<$role as $crate::Role>::Message as
                        $crate::Message<$label>>::downcast(message)
                    {
                        Ok(label) => {
                            return Ok(Self::$variant(
                                label,
                                <$cont as $crate::FromState<$lt>>::from_state(state),
                            ))
                        }
                        Err(message) => message,
                    };
                )*
                Err(message)
            }
        }

        $(
            impl<$lt> $crate::Choice<$lt, $label> for $name<$lt> {
                type Continuation = $cont;
            }
        )*

        impl<$lt> $crate::ChoicesFsm for $name<$lt> {
            fn append_choices(
                builder: &mut ::theory::fsm::FsmBuilder,
                visited: &mut ::std::collections::HashMap<&'static str, ::theory::fsm::StateIndex>,
                from: ::theory::fsm::StateIndex,
                direction: ::theory::fsm::Direction,
                peer: &'static str,
            ) {
                $(
                    let target = <$cont as $crate::SessionFsm>::append(builder, visited);
                    builder.add_transition(
                        from,
                        ::theory::fsm::Action {
                            direction,
                            peer: ::theory::Name::new(peer),
                            label: ::theory::Name::new(
                                <$label as $crate::role::Label>::label_name(),
                            ),
                            sort: <$label as $crate::role::Label>::sort(),
                        },
                        target,
                    );
                )*
            }
        }
    };
}
