//! The bottom-up workflow (paper §2.2): serialising a session type — as a
//! Rust type — into an FSM.
//!
//! `serialize::<S>()` walks the type structure of `S` at compile-time
//! monomorphisation (no value of `S` is ever constructed) and emits the
//! corresponding [`Fsm`]. The result can be fed to the `kmc` crate to
//! verify a whole system, or to the `subtyping` crate against a projected
//! FSM (the hybrid workflow, §2.3).
//!
//! Recursion points (the `struct`s of [`session!`](macro@crate::session)) carry
//! a unique `KEY`; the visited map ties back-edges to their states, just
//! like `μt`-binders in local types.

use std::collections::HashMap;

use theory::fsm::{Action, Direction, Fsm, FsmBuilder, FsmError, StateIndex};
use theory::Name;

use crate::role::{Label, Role};
use crate::session::{Branch, End, FromState, Receive, Select, Send};

/// Type-level description of a session type's FSM structure.
///
/// Implemented for all primitives; [`session!`](macro@crate::session) generates
/// impls for recursion points and [`choice!`](crate::choice) the
/// [`ChoicesFsm`] companions.
pub trait SessionFsm {
    /// Unique key for recursion points; `None` for structural types.
    const KEY: Option<&'static str> = None;

    /// Ensures a state for this type exists and returns its index.
    fn append(
        builder: &mut FsmBuilder,
        visited: &mut HashMap<&'static str, StateIndex>,
    ) -> StateIndex {
        if let Some(key) = Self::KEY {
            if let Some(&state) = visited.get(key) {
                return state;
            }
        }
        let state = builder.add_state();
        if let Some(key) = Self::KEY {
            visited.insert(key, state);
        }
        Self::fill(builder, visited, state);
        state
    }

    /// Adds this type's outgoing transitions to `state`.
    fn fill(
        builder: &mut FsmBuilder,
        visited: &mut HashMap<&'static str, StateIndex>,
        state: StateIndex,
    );
}

/// Companion of [`SessionFsm`] for choice enums: appends one transition
/// per variant.
pub trait ChoicesFsm {
    /// Adds each variant's transition from `from` in `direction`.
    fn append_choices(
        builder: &mut FsmBuilder,
        visited: &mut HashMap<&'static str, StateIndex>,
        from: StateIndex,
        direction: Direction,
        peer: &'static str,
    );
}

impl<Q> SessionFsm for End<'_, Q> {
    fn fill(
        _builder: &mut FsmBuilder,
        _visited: &mut HashMap<&'static str, StateIndex>,
        _state: StateIndex,
    ) {
        // Terminal: no transitions.
    }
}

impl<Q, R, L, S> SessionFsm for Send<'_, Q, R, L, S>
where
    R: Role,
    L: Label,
    S: SessionFsm,
{
    fn fill(
        builder: &mut FsmBuilder,
        visited: &mut HashMap<&'static str, StateIndex>,
        state: StateIndex,
    ) {
        let target = S::append(builder, visited);
        builder.add_transition(
            state,
            Action {
                direction: Direction::Send,
                peer: Name::new(R::name()),
                label: Name::new(L::label_name()),
                sort: L::sort(),
            },
            target,
        );
    }
}

impl<Q, R, L, S> SessionFsm for Receive<'_, Q, R, L, S>
where
    R: Role,
    L: Label,
    S: SessionFsm,
{
    fn fill(
        builder: &mut FsmBuilder,
        visited: &mut HashMap<&'static str, StateIndex>,
        state: StateIndex,
    ) {
        let target = S::append(builder, visited);
        builder.add_transition(
            state,
            Action {
                direction: Direction::Receive,
                peer: Name::new(R::name()),
                label: Name::new(L::label_name()),
                sort: L::sort(),
            },
            target,
        );
    }
}

impl<Q, R, C> SessionFsm for Select<'_, Q, R, C>
where
    R: Role,
    for<'q> C: ChoicesFsm,
{
    fn fill(
        builder: &mut FsmBuilder,
        visited: &mut HashMap<&'static str, StateIndex>,
        state: StateIndex,
    ) {
        C::append_choices(builder, visited, state, Direction::Send, R::name());
    }
}

impl<Q, R, C> SessionFsm for Branch<'_, Q, R, C>
where
    R: Role,
    C: ChoicesFsm,
{
    fn fill(
        builder: &mut FsmBuilder,
        visited: &mut HashMap<&'static str, StateIndex>,
        state: StateIndex,
    ) {
        C::append_choices(builder, visited, state, Direction::Receive, R::name());
    }
}

/// Serialises session type `S` into the FSM of its role.
///
/// Use the `'static` instantiation of the session type:
///
/// ```ignore
/// let fsm = serialize::<Kernel<'static>>()?;
/// ```
pub fn serialize<'q, S>() -> Result<Fsm, FsmError>
where
    S: SessionFsm + FromState<'q>,
    S::Role: Role,
{
    let mut builder = FsmBuilder::new(<S::Role as Role>::name());
    let mut visited = HashMap::new();
    let initial = S::append(&mut builder, &mut visited);
    builder.build(initial)
}
