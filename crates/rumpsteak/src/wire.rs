//! Hand-rolled wire serialisation for session messages.
//!
//! The distributed transport ([`net`](crate::net)) moves protocol labels
//! between OS processes, so they need a byte representation. This
//! container has no crates.io access, so instead of `serde` the repo
//! carries its own minimal codec: [`Wire`] encodes a value into a byte
//! vector and decodes it back from a bounds-checked [`WireReader`]
//! cursor. The format is fixed-endian (little), length-prefixed for
//! variable-size data, and self-contained per message — no schema
//! evolution, no versioning — because both ends of a session link are
//! compiled from the *same* protocol declaration, which is exactly the
//! property the session types already enforce.
//!
//! The [`messages!`](crate::messages) macro's `wire enum` arm derives
//! [`Wire`] for a protocol's label enum (a `u16` variant tag in
//! declaration order, then the payload) and for each label struct, so a
//! protocol opts its wire format in with one keyword:
//!
//! ```ignore
//! messages! {
//!     wire enum Label { Ready(Ready), Value(Value): i32, Stop(Stop) }
//! }
//! ```
//!
//! Every decode path returns [`WireError`] — malformed input from a
//! socket must never panic the process.

use std::fmt;

/// Decoding failure: the bytes do not describe a value of the requested
/// type. Always an *input* error — decoders never panic on malformed
/// bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEnd {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes the buffer still had.
        remaining: usize,
    },
    /// An enum tag matching no variant of the target type.
    UnknownTag(u16),
    /// A declared element count or byte length too large for the
    /// remaining input (a corrupt or hostile length prefix).
    LengthOverflow(u64),
    /// String bytes that are not valid UTF-8.
    InvalidUtf8,
    /// A value decoded completely but left unconsumed bytes behind.
    Trailing(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} byte(s), {remaining} remaining"
            ),
            WireError::UnknownTag(tag) => write!(f, "unknown wire tag {tag}"),
            WireError::LengthOverflow(len) => {
                write!(f, "declared length {len} exceeds the remaining input")
            }
            WireError::InvalidUtf8 => f.write_str("string payload is not valid UTF-8"),
            WireError::Trailing(n) => write!(f, "{n} trailing byte(s) after the value"),
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked cursor over an encoded byte buffer.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes, failing (not panicking) if fewer
    /// remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEnd {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(bytes)
    }

    /// Asserts the buffer was consumed exactly; a complete message must
    /// account for every byte of its frame.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::Trailing(n)),
        }
    }
}

/// A value with a byte representation on the session wire.
///
/// Encoding is infallible (it only appends to a vector); decoding
/// returns [`WireError`] on malformed input. The derived implementations
/// round-trip: `decode(encode(v)) == v` for every value.
pub trait Wire: Sized {
    /// Appends the value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value, consuming exactly the bytes [`encode`](Self::encode)
    /// produced for it.
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a value from a complete buffer, rejecting trailing bytes.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut reader = WireReader::new(bytes);
    let value = T::decode(&mut reader)?;
    reader.finish()?;
    Ok(value)
}

/// Fixed-width numeric primitives: little-endian, no prefix.
macro_rules! wire_le {
    ($($ty:ty),*) => {
        $(
            impl Wire for $ty {
                #[inline]
                fn encode(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }
                #[inline]
                fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
                    let bytes = reader.take(std::mem::size_of::<$ty>())?;
                    Ok(<$ty>::from_le_bytes(bytes.try_into().expect("take returned n bytes")))
                }
            }
        )*
    };
}

wire_le!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(u8::decode(reader)? != 0)
    }
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

/// `u32` element count, then each element in order. Counts are checked
/// against the remaining input *before* any allocation, so a hostile
/// length prefix cannot trigger an out-of-memory abort.
impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (u32::try_from(self.len()).expect("vector longer than u32::MAX elements")).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let count = u32::decode(reader)? as usize;
        // Every element costs at least one byte on the wire except `()`
        // and other ZST-encodings; cap the pre-allocation at what the
        // input could possibly hold, then decode exactly `count` items.
        if std::mem::size_of::<T>() > 0 && count > reader.remaining() {
            return Err(WireError::LengthOverflow(count as u64));
        }
        let mut items = Vec::with_capacity(count.min(reader.remaining().max(1)));
        for _ in 0..count {
            items.push(T::decode(reader)?);
        }
        Ok(items)
    }
}

/// `u32` byte length, then UTF-8 bytes.
impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (u32::try_from(self.len()).expect("string longer than u32::MAX bytes")).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = u32::decode(reader)? as usize;
        if len > reader.remaining() {
            return Err(WireError::LengthOverflow(len as u64));
        }
        let bytes = reader.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

/// Causal trace context attached to a wire frame when the sender runs
/// with telemetry enabled: a per-process session id, a per-edge frame
/// sequence number, and the sender's monotonic clock at encode time.
///
/// Fixed 24-byte encoding (three little-endian `u64`s) so the framing
/// layer can reserve space for it without consulting the payload. The
/// receiver uses `seq` to pair its `frame_recv` trace event with the
/// sender's `frame_send` (the flow edges `rumpsteak-trace --merge`
/// draws) and `t_ns` — shifted by the handshake-estimated clock offset
/// — to record wire latency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceContext {
    /// Sender-process session identifier (one per `NetLink`).
    pub session: u64,
    /// Frame index on this directed edge, starting at 0.
    pub seq: u64,
    /// Sender's monotonic clock at frame encode, in nanoseconds.
    pub t_ns: u64,
}

impl TraceContext {
    /// Encoded size in bytes: three `u64` words.
    pub const WIRE_SIZE: usize = 24;
}

impl Wire for TraceContext {
    fn encode(&self, out: &mut Vec<u8>) {
        self.session.encode(out);
        self.seq.encode(out);
        self.t_ns.encode(out);
    }
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(TraceContext {
            session: u64::decode(reader)?,
            seq: u64::decode(reader)?,
            t_ns: u64::decode(reader)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value);
        assert_eq!(from_bytes::<T>(&bytes).unwrap(), value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(0x1234u16);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(-1i8);
        round_trip(i16::MIN);
        round_trip(i32::MIN);
        round_trip(i64::MAX);
        round_trip(1.5f32);
        round_trip(-2.25f64);
        round_trip(true);
        round_trip(false);
        round_trip(());
    }

    #[test]
    fn numbers_are_little_endian() {
        assert_eq!(to_bytes(&0x0102_0304u32), vec![4, 3, 2, 1]);
    }

    #[test]
    fn containers_round_trip() {
        round_trip(Vec::<i32>::new());
        round_trip(vec![1i32, -2, 3]);
        round_trip(vec![vec![1u8], vec![], vec![2, 3]]);
        round_trip(String::new());
        round_trip("héllo wire".to_owned());
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = to_bytes(&7u32);
        assert!(matches!(
            from_bytes::<u32>(&bytes[..3]),
            Err(WireError::UnexpectedEnd { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0);
        assert_eq!(from_bytes::<u32>(&bytes), Err(WireError::Trailing(1)));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocating() {
        // Claims u32::MAX elements with a 0-byte body.
        let bytes = to_bytes(&u32::MAX);
        assert!(matches!(
            from_bytes::<Vec<i32>>(&bytes),
            Err(WireError::LengthOverflow(_))
        ));
        assert!(matches!(
            from_bytes::<String>(&bytes),
            Err(WireError::LengthOverflow(_))
        ));
    }

    #[test]
    fn trace_context_is_fixed_size_and_round_trips() {
        let ctx = TraceContext {
            session: 0xfeed_beef_dead_cafe,
            seq: 42,
            t_ns: u64::MAX,
        };
        let bytes = to_bytes(&ctx);
        assert_eq!(bytes.len(), TraceContext::WIRE_SIZE);
        assert_eq!(from_bytes::<TraceContext>(&bytes).unwrap(), ctx);
        round_trip(TraceContext::default());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut bytes = to_bytes(&2u32);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(from_bytes::<String>(&bytes), Err(WireError::InvalidUtf8));
    }
}
