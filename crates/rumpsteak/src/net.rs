//! The distributed transport: framed sockets with k-MC-derived send
//! windows.
//!
//! In-process, the paper's statically verified k-MC bounds became ring
//! capacities and batch windows (PR 7). This module carries the same
//! guarantee across OS processes: a [`NetLink`] is one role-to-role
//! session link over a length-prefixed framed TCP or Unix-domain-socket
//! stream, and its *send window* — the number of messages the sender
//! may buffer ahead of the socket — is exactly the verified bound k for
//! that direction. A producer overrunning the window parks
//! (`Poll::Pending`, recorded as a `window_stall`), so the back-pressure
//! point is derived from the verification rather than tuned; on the
//! receiving side the inbound queue is capped at the same k, which
//! propagates a slow consumer back through the socket's own flow
//! control to the sender's window. Back-pressure you can prove, end to
//! end.
//!
//! # Architecture
//!
//! The executor has no I/O reactor — by design, the scheduler knows
//! only tasks — so each link bridges its socket with two dedicated OS
//! threads:
//!
//! ```text
//!  session task ──poll_send──▶ [outgoing SPSC, capacity k] ──▶ writer thread ──▶ socket
//!  session task ◀─poll_recv── [incoming SPSC, capacity k] ◀── reader thread ◀── socket
//! ```
//!
//! The session side reuses the lock-free SPSC rings (and their batch
//! receive windows) unchanged, so a [`NetLink`] and an in-process
//! [`Bidirectional`](executor::channel::Bidirectional) behave
//! identically under the [`Transport`] trait; the threads do blocking
//! `write_all`/`read` and park on the rings, never spinning.
//!
//! # Wire format
//!
//! Every frame is a `u32` little-endian header followed by the payload
//! — a [`Wire`]-encoded label enum for data frames, a UTF-8 role name
//! for the handshake. The header's low 31 bits are the payload length;
//! the top bit ([`FLAG_TRACE`]) marks an optional 24-byte
//! [`TraceContext`] (session id, per-edge sequence, sender monotonic
//! timestamp) between header and payload, attached to data frames when
//! the sender runs with telemetry and always attached to handshake
//! frames (the timestamps drive the clock-offset estimate). Zero-length
//! payloads are legal; lengths above [`MAX_FRAME`] are rejected without
//! allocating (a corrupt or hostile peer must not abort the process).
//!
//! # Handshake and clock offset
//!
//! A dialing role opens each link with a three-frame exchange: it sends
//! its role name stamped with its clock `t1`, the accepter replies with
//! an empty frame stamped `t2`, and the dialer — reading the reply at
//! `t4` — estimates the accepter's clock as `t2 - (t1 + t4) / 2` ahead
//! of its own (the NTP midpoint, assuming symmetric path delay) and
//! sends the accepter the mirrored estimate in a final 8-byte frame.
//! Both sides record the offset ([`telemetry::trace::set_peer_offset`])
//! so `rumpsteak-trace --merge` can shift per-process timelines onto
//! one clock, and the reader thread uses it to turn each traced frame's
//! sender timestamp into a wire-latency sample.
//!
//! # Topology
//!
//! A [`Topology`] maps role names to addresses (`tcp:host:port` or
//! `uds:/path`). For each pair of connected roles the one listed
//! *later* dials and the one listed *earlier* accepts, so a mesh needs
//! no coordinator; dial retries while the peer is still binding are
//! counted as `reconnects` in the transport telemetry.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::task::{Context, Poll};
use std::thread::JoinHandle;
use std::time::Duration;

use executor::channel::{spsc_with, SendError, SpscConfig, SpscReceiver, SpscSender};

use crate::telemetry;
use crate::transport::{Disconnected, Transport};
pub use crate::wire::TraceContext;
use crate::wire::{from_bytes, Wire};

/// Largest accepted frame payload, in bytes. Frames above this are a
/// protocol violation (or an attack) and close the link; the cap keeps
/// a hostile 4 GiB length prefix from becoming a 4 GiB allocation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Bytes of frame header (the `u32` length-and-flags word).
pub const FRAME_HEADER: usize = 4;

/// Header bit marking a frame that carries a [`TraceContext`] between
/// header and payload. The remaining 31 bits are the payload length,
/// which [`MAX_FRAME`] keeps far below the flag bit.
pub const FLAG_TRACE: u32 = 1 << 31;

/// One decoded frame: the payload plus the sender's optional trace
/// context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The payload bytes (a [`Wire`]-encoded message for data frames).
    pub payload: Vec<u8>,
    /// The sender's causal context, when the frame carried one.
    pub trace: Option<TraceContext>,
}

/// Framing failure: the byte stream does not parse as frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// A length prefix above [`MAX_FRAME`].
    Oversized(u64),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(len) => {
                write!(f, "frame length {len} exceeds MAX_FRAME = {MAX_FRAME}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(error: FrameError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, error)
    }
}

/// Appends one untraced frame (header + payload) to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) -> Result<(), FrameError> {
    encode_frame_traced(payload, None, out)
}

/// Appends one frame to `out`, embedding `trace` after the header when
/// present (and setting [`FLAG_TRACE`]).
pub fn encode_frame_traced(
    payload: &[u8],
    trace: Option<&TraceContext>,
    out: &mut Vec<u8>,
) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME {
        return Err(FrameError::Oversized(payload.len() as u64));
    }
    let mut header = payload.len() as u32;
    if trace.is_some() {
        header |= FLAG_TRACE;
    }
    out.extend_from_slice(&header.to_le_bytes());
    if let Some(ctx) = trace {
        ctx.encode(out);
    }
    out.extend_from_slice(payload);
    Ok(())
}

/// Incremental frame parser: feed it byte chunks as they arrive off the
/// socket ([`push`](Self::push)), pull complete payloads out
/// ([`next_frame`](Self::next_frame)). Frames may arrive split across any chunk
/// boundary — mid-header, mid-payload, several per chunk — and
/// reassemble identically.
#[derive(Default)]
pub struct FrameDecoder {
    buf: VecDeque<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete frame, `Ok(None)` when more bytes are
    /// needed. A length above [`MAX_FRAME`] is an error (and is detected
    /// from the header alone, before any payload accumulates) — that
    /// check also rejects junk in the reserved flag bits, since only
    /// [`FLAG_TRACE`] is masked off the length.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() < FRAME_HEADER {
            return Ok(None);
        }
        let mut header = [0u8; FRAME_HEADER];
        for (i, byte) in header.iter_mut().enumerate() {
            *byte = self.buf[i];
        }
        let word = u32::from_le_bytes(header);
        let traced = word & FLAG_TRACE != 0;
        let len = (word & !FLAG_TRACE) as usize;
        if len > MAX_FRAME {
            return Err(FrameError::Oversized(len as u64));
        }
        let ctx_len = if traced { TraceContext::WIRE_SIZE } else { 0 };
        if self.buf.len() < FRAME_HEADER + ctx_len + len {
            return Ok(None);
        }
        self.buf.drain(..FRAME_HEADER);
        let trace = traced.then(|| {
            let bytes: Vec<u8> = self.buf.drain(..TraceContext::WIRE_SIZE).collect();
            from_bytes::<TraceContext>(&bytes).expect("fixed-size context always decodes")
        });
        Ok(Some(Frame {
            payload: self.buf.drain(..len).collect(),
            trace,
        }))
    }
}

/// A role's endpoint address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Addr {
    /// `tcp:host:port`.
    Tcp(String),
    /// `uds:/path/to/socket` (Unix only).
    #[cfg(unix)]
    Uds(PathBuf),
}

impl std::str::FromStr for Addr {
    type Err = io::Error;

    fn from_str(s: &str) -> io::Result<Self> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            return Ok(Addr::Tcp(rest.to_owned()));
        }
        #[cfg(unix)]
        if let Some(rest) = s.strip_prefix("uds:") {
            return Ok(Addr::Uds(PathBuf::from(rest)));
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("address `{s}` must start with tcp: or uds:"),
        ))
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Tcp(hostport) => write!(f, "tcp:{hostport}"),
            #[cfg(unix)]
            Addr::Uds(path) => write!(f, "uds:{}", path.display()),
        }
    }
}

/// The role-to-address map of one distributed protocol instance.
///
/// Text format: one `role address` pair per line, `#` comments and
/// blank lines ignored. Listing order is the tie-break for connection
/// direction (later dials earlier), so every process must load the
/// *same* topology file — which deployment already requires, since it
/// is where the addresses live.
#[derive(Clone, Debug)]
pub struct Topology {
    entries: Vec<(String, Addr)>,
}

impl Topology {
    /// Parses the text format.
    pub fn parse(text: &str) -> io::Result<Self> {
        let mut entries: Vec<(String, Addr)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (role, addr) = line.split_once(char::is_whitespace).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("topology line {}: expected `role address`", lineno + 1),
                )
            })?;
            if entries.iter().any(|(name, _)| name == role) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("topology line {}: duplicate role `{role}`", lineno + 1),
                ));
            }
            entries.push((role.to_owned(), addr.trim().parse()?));
        }
        if entries.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "topology declares no roles",
            ));
        }
        Ok(Self { entries })
    }

    /// Loads and parses a topology file.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        Self::parse(&std::fs::read_to_string(path)?)
    }

    /// The declared roles, in listing order.
    pub fn roles(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(name, _)| name.as_str())
    }

    /// The listing position of `role`.
    pub fn index_of(&self, role: &str) -> Option<usize> {
        self.entries.iter().position(|(name, _)| name == role)
    }

    /// The address of `role`.
    pub fn addr_of(&self, role: &str) -> Option<&Addr> {
        self.entries
            .iter()
            .find(|(name, _)| name == role)
            .map(|(_, addr)| addr)
    }
}

/// A connected stream socket of either family.
enum Socket {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Socket {
    fn try_clone(&self) -> io::Result<Socket> {
        match self {
            Socket::Tcp(s) => s.try_clone().map(Socket::Tcp),
            #[cfg(unix)]
            Socket::Uds(s) => s.try_clone().map(Socket::Uds),
        }
    }

    fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        match self {
            Socket::Tcp(s) => s.shutdown(how),
            #[cfg(unix)]
            Socket::Uds(s) => s.shutdown(how),
        }
    }
}

impl Read for Socket {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Socket::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Socket::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Socket {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Socket::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Socket::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Socket::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Socket::Uds(s) => s.flush(),
        }
    }
}

fn connect(addr: &Addr) -> io::Result<Socket> {
    match addr {
        Addr::Tcp(hostport) => {
            let stream = TcpStream::connect(hostport.as_str())?;
            // Frames are the application's batching unit; Nagle on top
            // of them only adds latency.
            stream.set_nodelay(true)?;
            Ok(Socket::Tcp(stream))
        }
        #[cfg(unix)]
        Addr::Uds(path) => Ok(Socket::Uds(UnixStream::connect(path)?)),
    }
}

/// A bound listening socket of either family.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener),
}

impl Listener {
    fn bind(addr: &Addr) -> io::Result<Self> {
        match addr {
            Addr::Tcp(hostport) => TcpListener::bind(hostport.as_str()).map(Listener::Tcp),
            #[cfg(unix)]
            Addr::Uds(path) => {
                // A previous run's socket file would make bind fail
                // with AddrInUse even though nobody is listening.
                let _ = std::fs::remove_file(path);
                UnixListener::bind(path).map(Listener::Uds)
            }
        }
    }

    fn accept(&self) -> io::Result<Socket> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true)?;
                Ok(Socket::Tcp(stream))
            }
            #[cfg(unix)]
            Listener::Uds(l) => {
                let (stream, _) = l.accept()?;
                Ok(Socket::Uds(stream))
            }
        }
    }
}

/// Writes one frame synchronously (handshakes and the writer thread).
fn write_frame(
    socket: &mut Socket,
    payload: &[u8],
    trace: Option<&TraceContext>,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    scratch.clear();
    encode_frame_traced(payload, trace, scratch)?;
    socket.write_all(scratch)
}

/// Reads whole frames synchronously until one is complete; leftover
/// bytes stay in `decoder` for the next caller.
fn read_frame(socket: &mut Socket, decoder: &mut FrameDecoder) -> io::Result<Frame> {
    let mut chunk = [0u8; 8192];
    loop {
        if let Some(frame) = decoder.next_frame()? {
            return Ok(frame);
        }
        match socket.read(&mut chunk) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => decoder.push(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// A handshake timestamp context: only `t_ns` is meaningful.
fn clock_ctx() -> TraceContext {
    TraceContext {
        session: 0,
        seq: 0,
        t_ns: telemetry::trace::now_ns(),
    }
}

/// One directed pair of session queues over a framed socket; the
/// distributed implementation of [`Transport`].
///
/// The outgoing queue is capacity-capped at the direction's verified
/// k-MC bound (its *send window*): `poll_send` parks — recording a
/// `window_stall` — when k messages are already buffered ahead of the
/// socket. The incoming queue is capped at the opposite direction's
/// bound and drained with the same batch-receive window the in-process
/// links use. Unbounded directions (no registered bound) grow instead.
pub struct NetLink<M> {
    out_tx: Option<SpscSender<M>>,
    in_rx: SpscReceiver<M>,
    /// Messages drained by a batch receive but not yet handed to the
    /// session; served before the ring is touched again.
    stash: VecDeque<M>,
    /// Batch-receive window for the incoming direction (1 = unbatched).
    window: usize,
    /// True while the current message has already recorded its stall,
    /// so one saturated send counts one `window_stall` however often it
    /// is polled.
    stalled: bool,
    stats: telemetry::transport::TransportStats,
    writer: Option<JoinHandle<()>>,
    reader: Option<JoinHandle<()>>,
    /// Clone used to force the reader thread off its blocking read when
    /// the link is dropped.
    socket: Option<Socket>,
}

/// Construction parameters for one [`NetLink`].
struct LinkSetup {
    from: &'static str,
    to: &'static str,
    /// Verified bound of the outgoing direction (the send window).
    send_bound: Option<usize>,
    /// Verified bound of the incoming direction (inbound cap and batch
    /// window).
    recv_bound: Option<usize>,
    /// Handshake-estimated peer clock offset, `peer_clock - my_clock`
    /// in nanoseconds (0 for loopback pairs sharing one clock).
    peer_offset: i64,
}

/// Process-wide id source for [`TraceContext::session`]: each link gets
/// a fresh id so merged timelines can tell apart reconnects of the same
/// edge.
static LINK_SESSION_ID: AtomicU64 = AtomicU64::new(1);

impl<M: Wire + std::marker::Send + 'static> NetLink<M> {
    /// Wraps a connected socket. `residue` carries any bytes read past
    /// the handshake frame — a dialing peer may have data frames on the
    /// wire right behind it.
    fn start(socket: Socket, setup: LinkSetup, residue: FrameDecoder) -> io::Result<Self> {
        let LinkSetup {
            from,
            to,
            send_bound,
            recv_bound,
            peer_offset,
        } = setup;
        let stats = telemetry::transport::register(from, to);
        if let Some(k) = send_bound {
            telemetry::transport::set_window(from, to, k as u64);
        }
        let in_stats = telemetry::transport::register(to, from);

        // The session-facing rings reuse the channel layer unchanged,
        // labels included, so the channel registry's watermark-vs-bound
        // check covers the distributed path too.
        // Stamp only the session-facing side of each ring: the commit
        // in a session future publishes the send stamp, the pop in a
        // session future consumes the recv stamp, and the writer/reader
        // threads' own ring operations stay stampless. On a loopback
        // pair both rings share one registry cell per direction, so the
        // surviving stamp pair measures the full send→recv path —
        // socket included; across real processes the recv side misses
        // safely and the frame trace context carries the wire latency.
        let (out_tx, out_rx) = spsc_with::<M>(SpscConfig {
            label: Some((from, to)),
            capacity: send_bound,
            bound_hint: send_bound,
            stamp_send: true,
            stamp_recv: false,
        });
        let (in_tx, in_rx) = spsc_with::<M>(SpscConfig {
            label: Some((to, from)),
            capacity: recv_bound,
            bound_hint: recv_bound,
            stamp_send: false,
            stamp_recv: true,
        });
        if telemetry::ENABLED {
            if let Some(k) = recv_bound {
                telemetry::channel::set_batch_window(to, from, k as u64);
            }
        }

        let writer_socket = socket.try_clone()?;
        let reader_socket = socket.try_clone()?;

        let session = LINK_SESSION_ID.fetch_add(1, Ordering::Relaxed);
        let writer_stats = stats.clone();
        let writer = std::thread::Builder::new()
            .name(format!("netlink-writer {from}->{to}"))
            .spawn(move || {
                let mut socket = writer_socket;
                let mut out_rx = out_rx;
                let mut payload = Vec::new();
                let mut scratch = Vec::new();
                let mut seq = 0u64;
                while let Some(message) = executor::block_on(out_rx.recv()) {
                    payload.clear();
                    message.encode(&mut payload);
                    let trace = if telemetry::ENABLED {
                        telemetry::trace::event_seq(
                            telemetry::trace::Kind::FrameSend,
                            from,
                            to,
                            "frame",
                            seq,
                        );
                        Some(TraceContext {
                            session,
                            seq,
                            t_ns: telemetry::trace::now_ns(),
                        })
                    } else {
                        None
                    };
                    seq += 1;
                    if write_frame(&mut socket, &payload, trace.as_ref(), &mut scratch).is_err() {
                        // The socket is gone; draining the ring keeps
                        // the producer unblocked until it sees the
                        // close below.
                        break;
                    }
                    writer_stats.record_frame_sent(scratch.len() as u64);
                }
                // Flush-then-close: everything committed to the ring
                // before the link was dropped is on the wire; the peer's
                // reader sees clean EOF at a frame boundary.
                let _ = socket.shutdown(Shutdown::Write);
            })?;

        let reader = std::thread::Builder::new()
            .name(format!("netlink-reader {to}->{from}"))
            .spawn(move || {
                let mut socket = reader_socket;
                let mut in_tx = in_tx;
                let mut decoder = residue;
                let mut chunk = [0u8; 8192];
                'read: loop {
                    loop {
                        let frame = match decoder.next_frame() {
                            Ok(Some(frame)) => frame,
                            Ok(None) => break,
                            // Oversized frame: hostile or corrupt peer;
                            // drop the link, never panic.
                            Err(_) => break 'read,
                        };
                        let wire_bytes = frame.payload.len()
                            + FRAME_HEADER
                            + frame.trace.map_or(0, |_| TraceContext::WIRE_SIZE);
                        in_stats.record_frame_received(wire_bytes as u64);
                        if telemetry::ENABLED {
                            if let Some(ctx) = frame.trace {
                                // The frame travels the `to → from`
                                // edge (the peer is the sender), which
                                // is the key the sender's frame_send
                                // event used.
                                telemetry::trace::event_seq(
                                    telemetry::trace::Kind::FrameRecv,
                                    to,
                                    from,
                                    "frame",
                                    ctx.seq,
                                );
                                // Shift the sender's encode timestamp
                                // into this process's clock; skew the
                                // estimate did not cover clamps to 0
                                // rather than recording garbage.
                                let sent_here = ctx.t_ns as i128 - peer_offset as i128;
                                let latency = telemetry::trace::now_ns() as i128 - sent_here;
                                in_stats.record_wire_latency(latency.max(0) as u64);
                            }
                        }
                        let message = match from_bytes::<M>(&frame.payload) {
                            Ok(message) => message,
                            Err(_) => break 'read,
                        };
                        // A full inbound ring parks here, which stops
                        // the socket reads below and lets the kernel's
                        // flow control push back on the sender.
                        if executor::block_on(in_tx.send_wait(message)).is_err() {
                            break 'read;
                        }
                    }
                    match socket.read(&mut chunk) {
                        Ok(0) => break,
                        Ok(n) => decoder.push(&chunk[..n]),
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
                // Dropping in_tx reports ChannelClosed to the session.
            })?;

        Ok(Self {
            out_tx: Some(out_tx),
            in_rx,
            stash: VecDeque::new(),
            window: recv_bound.unwrap_or(1).max(1),
            stalled: false,
            stats,
            writer: Some(writer),
            reader: Some(reader),
            socket: Some(socket),
        })
    }

    /// Awaits delivery of `message` into the link (parking while the
    /// send window is full).
    pub async fn send(&mut self, message: M) -> Result<(), Disconnected> {
        let mut message = Some(message);
        std::future::poll_fn(|cx| Transport::poll_send(self, cx, &mut message)).await
    }

    /// Awaits the next message, `None` once the peer is gone and the
    /// link drained.
    pub async fn recv(&mut self) -> Option<M> {
        std::future::poll_fn(|cx| Transport::poll_recv(self, cx)).await
    }

    /// Number of pending inbound messages (stashed plus queued).
    pub fn pending(&self) -> usize {
        self.stash.len() + self.in_rx.len()
    }

    /// The send window (verified k-MC bound of the outgoing direction),
    /// `None` when the direction runs unbounded.
    pub fn send_window(&self) -> Option<usize> {
        self.out_tx.as_ref().and_then(|tx| tx.capacity())
    }
}

impl<M: Wire + std::marker::Send + 'static> Transport for NetLink<M> {
    type Message = M;

    fn poll_send(
        &mut self,
        cx: &mut Context<'_>,
        message: &mut Option<M>,
    ) -> Poll<Result<(), Disconnected>> {
        let stalled = &mut self.stalled;
        let stats = &self.stats;
        match self
            .out_tx
            .as_mut()
            .expect("NetLink used after drop")
            .poll_reserve(cx)
        {
            Poll::Pending => {
                // One stall per message, however many polls it pends.
                if !*stalled {
                    *stalled = true;
                    stats.record_window_stall();
                }
                Poll::Pending
            }
            Poll::Ready(Err(SendError(()))) => {
                *stalled = false;
                message.take().expect("poll_send polled after completion");
                Poll::Ready(Err(Disconnected))
            }
            Poll::Ready(Ok(slot)) => {
                slot.write(message.take().expect("poll_send polled after completion"));
                *stalled = false;
                Poll::Ready(Ok(()))
            }
        }
    }

    fn try_recv(&mut self) -> Option<M> {
        if let Some(message) = self.stash.pop_front() {
            return Some(message);
        }
        if self.window > 1 {
            if self.in_rx.try_recv_batch(self.window, &mut self.stash) > 0 {
                return self.stash.pop_front();
            }
            None
        } else {
            self.in_rx.try_recv()
        }
    }

    fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<Option<M>> {
        if let Some(message) = self.stash.pop_front() {
            return Poll::Ready(Some(message));
        }
        if self.window > 1 {
            match self.in_rx.poll_recv_batch(cx, self.window, &mut self.stash) {
                Poll::Ready(n) if n > 0 => Poll::Ready(self.stash.pop_front()),
                Poll::Ready(_) => Poll::Ready(None),
                Poll::Pending => Poll::Pending,
            }
        } else {
            self.in_rx.poll_recv(cx)
        }
    }
}

impl<M> Drop for NetLink<M> {
    fn drop(&mut self) {
        // Close the outgoing ring: the writer drains what was already
        // committed, then shuts the write half down (clean EOF for the
        // peer).
        drop(self.out_tx.take());
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
        // The reader may still be parked in a blocking read (the peer
        // keeps its end open); shutting the receive half down forces it
        // out.
        if let Some(socket) = self.socket.take() {
            let _ = socket.shutdown(Shutdown::Read);
        }
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// The connection broker of one distributed process: binds the local
/// role's listener, dials or accepts each peer (routing inbound
/// connections by their handshake frame), and shapes every link with
/// the registered k-MC bounds.
pub struct RemoteMesh<M> {
    topology: Topology,
    me: &'static str,
    listener: Option<Listener>,
    /// Inbound sockets that completed their handshake for a peer whose
    /// `link()` call has not happened yet, with any bytes read past the
    /// handshake and the estimated peer clock offset.
    accepted: HashMap<String, (Socket, FrameDecoder, i64)>,
    /// Verified k-MC bound per directed channel.
    bounds: HashMap<(&'static str, &'static str), usize>,
    /// How long `link()` keeps re-dialing a peer that is not yet
    /// listening.
    dial_timeout: Duration,
    _marker: std::marker::PhantomData<M>,
}

impl<M: Wire + std::marker::Send + 'static> RemoteMesh<M> {
    /// Prepares the mesh for role `me`: binds `me`'s listener address
    /// from the topology (peers listed later will dial it).
    pub fn bind(topology: Topology, me: &'static str) -> io::Result<Self> {
        let addr = topology.addr_of(me).cloned().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("role `{me}` is not in the topology"),
            )
        })?;
        let listener = Listener::bind(&addr)?;
        Ok(Self {
            topology,
            me,
            listener: Some(listener),
            accepted: HashMap::new(),
            bounds: HashMap::new(),
            dial_timeout: Duration::from_secs(20),
            _marker: std::marker::PhantomData,
        })
    }

    /// Registers the statically verified k-MC bound for the directed
    /// channel `from → to`; links created by later
    /// [`link`](Self::link) calls use it as their send window (or
    /// inbound cap). Repeated registration keeps the larger bound.
    /// Generated `remote_mesh()` constructors call this once per
    /// direction with the bounds the checker emitted.
    pub fn set_bound(&mut self, from: &'static str, to: &'static str, k: usize) {
        if k == 0 {
            return;
        }
        let bound = self.bounds.entry((from, to)).or_insert(k);
        *bound = (*bound).max(k);
        telemetry::transport::set_bound(from, to, k as u64);
        telemetry::channel::set_bound(from, to, k as u64);
    }

    /// How long [`link`](Self::link) keeps re-dialing a peer that is
    /// not yet listening (default 20s).
    pub fn set_dial_timeout(&mut self, timeout: Duration) {
        self.dial_timeout = timeout;
    }

    /// Establishes the session link with `peer`: dials if `peer` is
    /// listed before `me` in the topology (retrying while it binds),
    /// accepts otherwise. Either way the link's queues are shaped by
    /// the bounds registered for the two directions.
    pub fn link(&mut self, peer: &'static str) -> io::Result<NetLink<M>> {
        let me = self.me;
        let my_index = self
            .topology
            .index_of(me)
            .expect("bind() checked the local role");
        let peer_index = self.topology.index_of(peer).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("role `{peer}` is not in the topology"),
            )
        })?;
        let (socket, residue, peer_offset) = if peer_index < my_index {
            self.dial(peer)?
        } else {
            self.accept_from(peer)?
        };
        if telemetry::ENABLED {
            telemetry::trace::set_peer_offset(peer, peer_offset);
        }
        let setup = LinkSetup {
            from: me,
            to: peer,
            send_bound: self.bounds.get(&(me, peer)).copied(),
            recv_bound: self.bounds.get(&(peer, me)).copied(),
            peer_offset,
        };
        NetLink::start(socket, setup, residue)
    }

    /// Dials `peer`, retrying while its listener is not up yet; runs
    /// the three-frame handshake (role name out, timestamped reply
    /// back, mirrored offset estimate out) and returns the socket, any
    /// bytes read past the reply, and the estimated peer clock offset.
    fn dial(&self, peer: &'static str) -> io::Result<(Socket, FrameDecoder, i64)> {
        let addr = self
            .topology
            .addr_of(peer)
            .expect("link() checked the peer role");
        let stats = telemetry::transport::attach(self.me, peer);
        let deadline = std::time::Instant::now() + self.dial_timeout;
        let mut socket = loop {
            match connect(addr) {
                Ok(socket) => break socket,
                Err(error) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(io::Error::new(
                            error.kind(),
                            format!("dialing {peer} at {addr}: {error}"),
                        ));
                    }
                    // The peer exists but has not bound yet — normal
                    // during a staggered two-process start.
                    stats.record_reconnect();
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        };
        let mut scratch = Vec::new();
        let hello = clock_ctx();
        write_frame(&mut socket, self.me.as_bytes(), Some(&hello), &mut scratch)?;
        let mut decoder = FrameDecoder::new();
        let reply = read_frame(&mut socket, &mut decoder)?;
        let t4 = telemetry::trace::now_ns();
        let t2 = reply
            .trace
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "handshake reply carries no timestamp",
                )
            })?
            .t_ns;
        // NTP midpoint: assuming a symmetric path, the accepter stamped
        // t2 when our clock read (t1 + t4) / 2.
        let midpoint = (hello.t_ns as i128 + t4 as i128) / 2;
        let peer_offset = (t2 as i128 - midpoint) as i64;
        // Hand the accepter its own view (our clock minus its clock).
        write_frame(
            &mut socket,
            &(-peer_offset).to_le_bytes(),
            None,
            &mut scratch,
        )?;
        Ok((socket, decoder, peer_offset))
    }

    /// Accepts connections until `peer`'s handshake arrives, stashing
    /// handshaked sockets for other peers along the way. Completes the
    /// accept side of the clock handshake on every connection: reply
    /// with the local clock, then read back the dialer's offset
    /// estimate.
    fn accept_from(&mut self, peer: &str) -> io::Result<(Socket, FrameDecoder, i64)> {
        if let Some(ready) = self.accepted.remove(peer) {
            return Ok(ready);
        }
        let listener = self.listener.as_ref().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, "listener already closed")
        })?;
        loop {
            let mut socket = listener.accept()?;
            let mut decoder = FrameDecoder::new();
            let handshake = read_frame(&mut socket, &mut decoder)?;
            let name = String::from_utf8(handshake.payload).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "handshake is not a role name")
            })?;
            let mut scratch = Vec::new();
            write_frame(&mut socket, b"", Some(&clock_ctx()), &mut scratch)?;
            let offset_frame = read_frame(&mut socket, &mut decoder)?;
            let bytes: [u8; 8] = offset_frame.payload.as_slice().try_into().map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "offset frame is not 8 bytes")
            })?;
            let peer_offset = i64::from_le_bytes(bytes);
            if name == peer {
                return Ok((socket, decoder, peer_offset));
            }
            self.accepted.insert(name, (socket, decoder, peer_offset));
        }
    }
}

/// Builds a connected TCP loopback pair of links for the directed
/// channels `a → b` (window `bound_ab`) and `b → a` (window
/// `bound_ba`), registering both windows and bounds with the telemetry
/// layer. In-process benches and tests use this to exercise the real
/// socket path without a second process.
pub fn loopback_pair_tcp<M: Wire + std::marker::Send + 'static>(
    a: &'static str,
    b: &'static str,
    bound_ab: Option<usize>,
    bound_ba: Option<usize>,
) -> io::Result<(NetLink<M>, NetLink<M>)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let dialed = TcpStream::connect(addr)?;
    dialed.set_nodelay(true)?;
    let (accepted, _) = listener.accept()?;
    accepted.set_nodelay(true)?;
    loopback_pair(
        Socket::Tcp(dialed),
        Socket::Tcp(accepted),
        a,
        b,
        bound_ab,
        bound_ba,
    )
}

/// [`loopback_pair_tcp`] over a Unix-domain socket in the system temp
/// directory.
#[cfg(unix)]
pub fn loopback_pair_uds<M: Wire + std::marker::Send + 'static>(
    a: &'static str,
    b: &'static str,
    bound_ab: Option<usize>,
    bound_ba: Option<usize>,
) -> io::Result<(NetLink<M>, NetLink<M>)> {
    let (dialed, accepted) = UnixStream::pair()?;
    loopback_pair(
        Socket::Uds(dialed),
        Socket::Uds(accepted),
        a,
        b,
        bound_ab,
        bound_ba,
    )
}

fn loopback_pair<M: Wire + std::marker::Send + 'static>(
    side_a: Socket,
    side_b: Socket,
    a: &'static str,
    b: &'static str,
    bound_ab: Option<usize>,
    bound_ba: Option<usize>,
) -> io::Result<(NetLink<M>, NetLink<M>)> {
    if let Some(k) = bound_ab {
        telemetry::transport::set_bound(a, b, k as u64);
        telemetry::channel::set_bound(a, b, k as u64);
    }
    if let Some(k) = bound_ba {
        telemetry::transport::set_bound(b, a, k as u64);
        telemetry::channel::set_bound(b, a, k as u64);
    }
    let link_a = NetLink::start(
        side_a,
        LinkSetup {
            from: a,
            to: b,
            send_bound: bound_ab,
            recv_bound: bound_ba,
            peer_offset: 0,
        },
        FrameDecoder::new(),
    )?;
    let link_b = NetLink::start(
        side_b,
        LinkSetup {
            from: b,
            to: a,
            send_bound: bound_ba,
            recv_bound: bound_ab,
            peer_offset: 0,
        },
        FrameDecoder::new(),
    )?;
    Ok((link_a, link_b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_encode_and_decode() {
        let mut out = Vec::new();
        encode_frame(b"abc", &mut out).unwrap();
        encode_frame(b"", &mut out).unwrap();
        encode_frame(b"d", &mut out).unwrap();
        let mut decoder = FrameDecoder::new();
        decoder.push(&out);
        let payload = |frame: Option<Frame>| frame.map(|f| f.payload);
        assert_eq!(
            payload(decoder.next_frame().unwrap()).as_deref(),
            Some(&b"abc"[..])
        );
        assert_eq!(
            payload(decoder.next_frame().unwrap()).as_deref(),
            Some(&b""[..])
        );
        assert_eq!(
            payload(decoder.next_frame().unwrap()).as_deref(),
            Some(&b"d"[..])
        );
        assert_eq!(decoder.next_frame().unwrap(), None);
    }

    #[test]
    fn traced_frames_round_trip_at_any_chunk_boundary() {
        // A traced frame between untraced ones, reassembled for every
        // chunk size — splits land mid-header, mid-context and
        // mid-payload.
        let ctx = TraceContext {
            session: 7,
            seq: 99,
            t_ns: 123_456_789,
        };
        let mut wire = Vec::new();
        encode_frame(b"before", &mut wire).unwrap();
        encode_frame_traced(b"traced payload", Some(&ctx), &mut wire).unwrap();
        encode_frame_traced(b"", Some(&ctx), &mut wire).unwrap();
        encode_frame(b"after", &mut wire).unwrap();
        for chunk in 1..wire.len() {
            let mut decoder = FrameDecoder::new();
            let mut frames = Vec::new();
            for piece in wire.chunks(chunk) {
                decoder.push(piece);
                while let Some(frame) = decoder.next_frame().unwrap() {
                    frames.push(frame);
                }
            }
            assert_eq!(frames.len(), 4, "chunk size {chunk}");
            assert_eq!(frames[0].payload, b"before");
            assert_eq!(frames[0].trace, None);
            assert_eq!(frames[1].payload, b"traced payload");
            assert_eq!(frames[1].trace, Some(ctx));
            assert_eq!(frames[2].payload, b"");
            assert_eq!(frames[2].trace, Some(ctx));
            assert_eq!(frames[3].payload, b"after");
            assert_eq!(frames[3].trace, None);
        }
    }

    #[test]
    fn junk_flag_bits_are_rejected_as_oversized() {
        // Bits 24..31 set without FLAG_TRACE make the masked length
        // exceed MAX_FRAME — the decoder must error, not allocate.
        let mut decoder = FrameDecoder::new();
        decoder.push(&(0x7F00_0000u32).to_le_bytes());
        assert!(matches!(
            decoder.next_frame(),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn frames_reassemble_across_any_split() {
        let mut wire = Vec::new();
        encode_frame(b"hello", &mut wire).unwrap();
        encode_frame(&[0xAA; 300], &mut wire).unwrap();
        encode_frame(b"", &mut wire).unwrap();
        // Feed the byte stream one chunk at a time for every chunk size,
        // including splits inside headers and payloads.
        for chunk in 1..wire.len() {
            let mut decoder = FrameDecoder::new();
            let mut frames = Vec::new();
            for piece in wire.chunks(chunk) {
                decoder.push(piece);
                while let Some(frame) = decoder.next_frame().unwrap() {
                    frames.push(frame.payload);
                }
            }
            assert_eq!(frames.len(), 3, "chunk size {chunk}");
            assert_eq!(frames[0], b"hello");
            assert_eq!(frames[1], vec![0xAA; 300]);
            assert_eq!(frames[2], b"");
        }
    }

    #[test]
    fn oversized_length_prefix_is_an_error_not_a_panic() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(
            decoder.next_frame(),
            Err(FrameError::Oversized(_))
        ));
        // Detected from the header alone: no payload bytes were needed.
        let mut worst = FrameDecoder::new();
        worst.push(&u32::MAX.to_le_bytes());
        assert!(matches!(worst.next_frame(), Err(FrameError::Oversized(_))));
    }

    #[test]
    fn oversized_outgoing_payload_is_rejected() {
        let huge = vec![0u8; MAX_FRAME + 1];
        let mut out = Vec::new();
        assert!(matches!(
            encode_frame(&huge, &mut out),
            Err(FrameError::Oversized(_))
        ));
        assert!(out.is_empty());
    }

    #[test]
    fn addr_parses_and_displays() {
        let tcp: Addr = "tcp:127.0.0.1:9000".parse().unwrap();
        assert_eq!(tcp, Addr::Tcp("127.0.0.1:9000".to_owned()));
        assert_eq!(tcp.to_string(), "tcp:127.0.0.1:9000");
        #[cfg(unix)]
        {
            let uds: Addr = "uds:/tmp/role.sock".parse().unwrap();
            assert_eq!(uds, Addr::Uds(PathBuf::from("/tmp/role.sock")));
            assert_eq!(uds.to_string(), "uds:/tmp/role.sock");
        }
        assert!("127.0.0.1:9000".parse::<Addr>().is_err());
    }

    #[test]
    fn topology_parses_comments_and_rejects_duplicates() {
        let topology = Topology::parse(
            "# streaming over loopback\n\
             S tcp:127.0.0.1:9000\n\
             \n\
             T tcp:127.0.0.1:9001  # the sink\n",
        )
        .unwrap();
        assert_eq!(topology.roles().collect::<Vec<_>>(), vec!["S", "T"]);
        assert_eq!(topology.index_of("T"), Some(1));
        assert_eq!(
            topology.addr_of("S"),
            Some(&Addr::Tcp("127.0.0.1:9000".to_owned()))
        );
        assert!(Topology::parse("S tcp:a\nS tcp:b\n").is_err());
        assert!(Topology::parse("S\n").is_err());
        assert!(Topology::parse("").is_err());
    }

    #[test]
    fn loopback_tcp_round_trips_messages() {
        let (mut a, mut b) = loopback_pair_tcp::<u32>("LoopA", "LoopB", Some(4), Some(4)).unwrap();
        executor::block_on(async {
            for i in 0..32u32 {
                a.send(i).await.unwrap();
            }
            for i in 0..32u32 {
                assert_eq!(b.recv().await, Some(i));
            }
            b.send(99).await.unwrap();
            assert_eq!(a.recv().await, Some(99));
        });
        assert_eq!(a.send_window(), Some(4));
    }

    #[cfg(unix)]
    #[test]
    fn loopback_uds_round_trips_messages() {
        let (mut a, mut b) =
            loopback_pair_uds::<u32>("LoopUdsA", "LoopUdsB", Some(2), None).unwrap();
        executor::block_on(async {
            for i in 0..16u32 {
                a.send(i).await.unwrap();
                assert_eq!(b.recv().await, Some(i));
            }
        });
    }

    #[test]
    fn dropped_peer_closes_the_link() {
        let (mut a, b) = loopback_pair_tcp::<u32>("DropA", "DropB", None, None).unwrap();
        drop(b);
        executor::block_on(async {
            assert_eq!(a.recv().await, None);
        });
    }
}
