//! Rumpsteak — deadlock-free asynchronous message passing with multiparty
//! session types (the paper's §2 runtime API).
//!
//! The crate provides:
//!
//! * [`role`] — the [`Role`]/[`Route`]/[`Message`] traits and the channel
//!   [`Mesh`](role::Mesh) used to wire roles together,
//! * [`session`](mod@session) — the generic typestate primitives [`Send`], [`Receive`],
//!   [`Select`], [`Branch`] and [`End`], plus [`try_session`] which
//!   enforces linear channel usage through Rust's affine types,
//! * [`serialize`](mod@serialize) — the bottom-up workflow (§2.2): turning a session type
//!   *as a Rust type* back into a [`theory::Fsm`] for k-MC or subtyping
//!   verification,
//! * declarative macros ([`roles!`], [`messages!`], [`session!`],
//!   [`choice!`]) replacing the proc-macro derives of the original.
//!
//! # The double-buffering kernel, one iteration (paper Listings 2 & 3)
//!
//! ```
//! use rumpsteak::{roles, messages, session, try_session, Send, Receive, End, Result};
//!
//! pub struct Ready;
//! pub struct Value(pub i32);
//!
//! messages! {
//!     enum Label { Ready(Ready), Value(Value) }
//! }
//!
//! roles! {
//!     message Label;
//!     K { s: S, t: T },
//!     S { k: K },
//!     T { k: K },
//! }
//!
//! session! {
//!     type Source<'q> = Receive<'q, S, K, Ready, Send<'q, S, K, Value, End<'q, S>>>;
//!     type Kernel<'q> = Send<'q, K, S, Ready,
//!         Receive<'q, K, S, Value, Receive<'q, K, T, Ready,
//!         Send<'q, K, T, Value, End<'q, K>>>>>;
//!     type Sink<'q> = Send<'q, T, K, Ready, Receive<'q, T, K, Value, End<'q, T>>>;
//! }
//!
//! async fn kernel(role: &mut K) -> Result<i32> {
//!     try_session(role, |s: Kernel<'_>| async {
//!         let s = s.send(Ready).await?;
//!         let (Value(v), s) = s.receive().await?;
//!         let (Ready, s) = s.receive().await?;
//!         let end = s.send(Value(v)).await?;
//!         Ok((v, end))
//!     })
//!     .await
//! }
//!
//! async fn source(role: &mut S) -> Result<()> {
//!     try_session(role, |s: Source<'_>| async {
//!         let (Ready, s) = s.receive().await?;
//!         let end = s.send(Value(42)).await?;
//!         Ok(((), end))
//!     })
//!     .await
//! }
//!
//! async fn sink(role: &mut T) -> Result<i32> {
//!     try_session(role, |s: Sink<'_>| async {
//!         let s = s.send(Ready).await?;
//!         let (Value(v), end) = s.receive().await?;
//!         Ok((v, end))
//!     })
//!     .await
//! }
//!
//! let (mut k, mut s, mut t) = connect();
//! let rt = executor::Runtime::new(2);
//! let k = rt.spawn(async move { kernel(&mut k).await });
//! let s = rt.spawn(async move { source(&mut s).await });
//! let t = rt.spawn(async move { sink(&mut t).await });
//! assert_eq!(rt.block_on(k).unwrap().unwrap(), 42);
//! rt.block_on(s).unwrap().unwrap();
//! assert_eq!(rt.block_on(t).unwrap().unwrap(), 42);
//! ```

pub mod net;
pub mod role;
pub mod serialize;
pub mod session;
pub mod transport;
pub mod wire;

/// Re-export of the observability layer, used by the [`roles!`] macro's
/// `bounds` clause and available to applications that want to inspect
/// channel watermarks or session traces directly. Everything in it is a
/// no-op unless the `telemetry` cargo feature is enabled.
pub use dep_telemetry as telemetry;

use std::fmt;

pub use role::{Message, Role, Route};
pub use serialize::{serialize, ChoicesFsm, SessionFsm};
pub use session::{
    try_session, Branch, Choice, Choices, End, FromState, IntoSession, Receive, Select,
    SelectFuture, Send, SendFuture, State,
};

/// Errors surfaced by session operations at runtime.
///
/// With a verified protocol these indicate an environment failure (a peer
/// task died), never a protocol violation — those are compile errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// The peer's channel endpoint was dropped.
    ChannelClosed,
    /// A message arrived that does not match the session type's label.
    UnexpectedMessage,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ChannelClosed => f.write_str("session channel closed by peer"),
            Error::UnexpectedMessage => f.write_str("received a message outside the protocol"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for session operations.
pub type Result<T, E = Error> = std::result::Result<T, E>;
