//! The session data plane abstracted over its carrier.
//!
//! The session primitives ([`Send`](crate::Send), [`Receive`](crate::Receive),
//! [`Select`](crate::Select), [`Branch`](crate::Branch)) drive a role's
//! link to one peer through exactly three operations: a poll-based send
//! that parks under back-pressure, a non-blocking receive fast path, and
//! a poll-based receive that registers the waker. [`Transport`] names
//! those three operations, so the *same* typestate layer runs over
//!
//! * the in-process lock-free SPSC link
//!   ([`Bidirectional`]) — the paper's
//!   shared-memory configuration, and
//! * a framed socket link ([`NetLink`](crate::net::NetLink)) — roles in
//!   different OS processes, where the statically verified k-MC bound
//!   becomes the socket send window.
//!
//! Which carrier a role uses is fixed per peer by
//! [`Route::Link`](crate::Route::Link); protocol code is identical in
//! both configurations because it only ever sees the trait.

use std::task::{Context, Poll};

use executor::channel::{Bidirectional, SendError};

/// The peer's endpoint is gone: its process exited, the socket closed,
/// or the in-process receiver was dropped. The session layer surfaces
/// this as [`Error::ChannelClosed`](crate::Error::ChannelClosed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Disconnected;

/// One role-to-role session link, as seen by the session primitives.
///
/// The contract mirrors the SPSC ring the in-process implementation is
/// built on:
///
/// * [`poll_send`](Self::poll_send) takes the message out of `*message`
///   exactly when it resolves (`Ready(Ok)` on delivery into the link,
///   `Ready(Err)` when the peer is gone); while `Pending` — the link's
///   window is full, back-pressure — the message stays put and the waker
///   is registered.
/// * [`try_recv`](Self::try_recv) is the lock-free fast path: pop an
///   already delivered message without touching any waker.
/// * [`poll_recv`](Self::poll_recv) registers the waker and re-checks,
///   returning `Ready(None)` once the peer is gone and the link drained.
pub trait Transport {
    /// The wire-format enum carried by this link.
    type Message;

    /// Poll-based send: delivers `*message` into the link, leaving the
    /// option empty on `Ready(Ok)` and on the terminal `Ready(Err)`,
    /// untouched while `Pending` (window full — the waker is registered
    /// and the send retries when capacity frees up).
    fn poll_send(
        &mut self,
        cx: &mut Context<'_>,
        message: &mut Option<Self::Message>,
    ) -> Poll<Result<(), Disconnected>>;

    /// Non-blocking receive: pops an already delivered message, `None`
    /// when nothing is queued (which does *not* distinguish an empty
    /// link from a closed one — [`poll_recv`](Self::poll_recv) does).
    fn try_recv(&mut self) -> Option<Self::Message>;

    /// Poll-based receive: registers the waker, then `Ready(Some)` per
    /// delivered message and `Ready(None)` once the peer is gone and
    /// every queued message was served.
    fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<Option<Self::Message>>;
}

/// The in-process carrier: a pair of lock-free SPSC rings. This is the
/// transport every [`roles!`](crate::roles)-generated mesh runs on.
impl<M> Transport for Bidirectional<M> {
    type Message = M;

    #[inline]
    fn poll_send(
        &mut self,
        cx: &mut Context<'_>,
        message: &mut Option<M>,
    ) -> Poll<Result<(), Disconnected>> {
        match Bidirectional::poll_send(self, cx, message) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Ok(())) => Poll::Ready(Ok(())),
            Poll::Ready(Err(SendError(_))) => Poll::Ready(Err(Disconnected)),
        }
    }

    #[inline]
    fn try_recv(&mut self) -> Option<M> {
        Bidirectional::try_recv(self)
    }

    #[inline]
    fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<Option<M>> {
        Bidirectional::poll_recv(self, cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready<T>(poll: Poll<T>) -> T {
        match poll {
            Poll::Ready(value) => value,
            Poll::Pending => panic!("expected Ready"),
        }
    }

    #[test]
    fn bidirectional_round_trips_through_the_trait() {
        fn drive<L: Transport<Message = u32>>(a: &mut L, b: &mut L) {
            let waker = std::task::Waker::noop();
            let mut cx = Context::from_waker(waker);
            let mut message = Some(7);
            ready(a.poll_send(&mut cx, &mut message)).unwrap();
            assert!(message.is_none());
            assert_eq!(b.try_recv(), Some(7));
            assert!(b.try_recv().is_none());
        }
        let (mut a, mut b) = Bidirectional::pair();
        drive(&mut a, &mut b);
    }

    #[test]
    fn dropped_peer_reports_disconnected() {
        let (mut a, b) = Bidirectional::<u32>::pair();
        drop(b);
        let waker = std::task::Waker::noop();
        let mut cx = Context::from_waker(waker);
        let mut message = Some(1);
        assert_eq!(
            ready(Transport::poll_send(&mut a, &mut cx, &mut message)),
            Err(Disconnected)
        );
        assert_eq!(ready(Transport::poll_recv(&mut a, &mut cx)), None);
    }
}
