//! End-to-end tests of the distributed transport: a session-typed
//! protocol running over real sockets, the k-MC send window exerting
//! back-pressure on a saturating producer, and the mesh handshake
//! retry path.
//!
//! The role structs here are written by hand in exactly the shape
//! `rumpsteak-gen --skeleton --distributed` emits: one [`NetLink`]
//! field per peer instead of a [`Bidirectional`] channel, with the
//! same `Role`/`Route` implementations. The session code is the
//! streaming protocol from the paper, unchanged — the typestate
//! primitives only see the [`Transport`] contract.

use std::time::Duration;

use rumpsteak::net::{loopback_pair_tcp, NetLink, RemoteMesh, Topology};
use rumpsteak::{
    choice, messages, session, try_session, Branch, End, IntoSession, Receive, Select, Send,
};

pub struct Ready;
pub struct Value(pub i32);
pub struct Stop;

messages! {
    wire enum Label { Ready(Ready), Value(Value): i32, Stop(Stop) }
}

/// Remote source role: one framed socket link towards `T`.
pub struct S {
    t: NetLink<Label>,
}

/// Remote sink role: one framed socket link towards `S`.
pub struct T {
    s: NetLink<Label>,
}

impl rumpsteak::Role for S {
    type Message = Label;
    fn name() -> &'static str {
        "S"
    }
}

impl rumpsteak::Route<T> for S {
    type Link = NetLink<Label>;
    fn route(&mut self) -> &mut Self::Link {
        &mut self.t
    }
}

impl rumpsteak::Role for T {
    type Message = Label;
    fn name() -> &'static str {
        "T"
    }
}

impl rumpsteak::Route<S> for T {
    type Link = NetLink<Label>;
    fn route(&mut self) -> &mut Self::Link {
        &mut self.s
    }
}

session! {
    struct Source<'q> for S = Receive<'q, S, T, Ready, Select<'q, S, T, SourceChoice<'q>>>;
    struct Sink<'q> for T = Send<'q, T, S, Ready, Branch<'q, T, S, SinkChoice<'q>>>;
}

choice! {
    enum SourceChoice<'q> for S {
        Value(Value) => Source<'q>,
        Stop(Stop) => End<'q, S>,
    }
}

choice! {
    enum SinkChoice<'q> for T {
        Value(Value) => Sink<'q>,
        Stop(Stop) => End<'q, T>,
    }
}

async fn source(role: &mut S, count: u32) -> rumpsteak::Result<()> {
    try_session(role, |mut s: Source<'_>| async move {
        let mut sent = 0;
        loop {
            let (Ready, choice) = s.into_session().receive().await?;
            if sent == count {
                let end = choice.select(Stop).await?;
                return Ok(((), end));
            }
            s = choice.select(Value(sent as i32)).await?;
            sent += 1;
        }
    })
    .await
}

async fn sink(role: &mut T) -> rumpsteak::Result<u64> {
    try_session(role, |mut s: Sink<'_>| async move {
        let mut sum = 0u64;
        loop {
            let branch = s.into_session().send(Ready).await?;
            match branch.branch().await? {
                SinkChoice::Value(Value(v), next) => {
                    sum += v as u64;
                    s = next;
                }
                SinkChoice::Stop(Stop, end) => return Ok((sum, end)),
            }
        }
    })
    .await
}

/// The streaming protocol's verified k-MC bound per direction (see
/// `bench::protocols::streaming`).
const STREAM_BOUND: usize = 6;

fn run_session(link_s: NetLink<Label>, link_t: NetLink<Label>, count: u32) -> u64 {
    let mut s = S { t: link_s };
    let mut t = T { s: link_t };
    let rt = executor::Runtime::new(2);
    let source_task = rt.spawn(async move { source(&mut s, count).await });
    let sink_task = rt.spawn(async move { sink(&mut t).await });
    rt.block_on(source_task).unwrap().unwrap();
    rt.block_on(sink_task).unwrap().unwrap()
}

#[test]
fn tcp_session_streams_across_sockets() {
    let (link_s, link_t) =
        loopback_pair_tcp::<Label>("S", "T", Some(STREAM_BOUND), Some(STREAM_BOUND))
            .expect("loopback TCP pair");
    assert_eq!(link_s.send_window(), Some(STREAM_BOUND));
    assert_eq!(link_t.send_window(), Some(STREAM_BOUND));
    let count = 100;
    assert_eq!(
        run_session(link_s, link_t, count),
        (0..u64::from(count)).sum()
    );
}

#[cfg(unix)]
#[test]
fn uds_session_streams_across_sockets() {
    let (link_s, link_t) = rumpsteak::net::loopback_pair_uds::<Label>(
        "S",
        "T",
        Some(STREAM_BOUND),
        Some(STREAM_BOUND),
    )
    .expect("loopback UDS pair");
    let count = 100;
    assert_eq!(
        run_session(link_s, link_t, count),
        (0..u64::from(count)).sum()
    );
}

/// A producer that outruns both the consumer and the socket must park
/// on the k-bounded send window: `window_stalls` is observed on the
/// transport registry while the session-facing ring's occupancy
/// watermark stays within the verified bound.
#[test]
fn saturating_producer_stalls_within_window() {
    const WINDOW: usize = 2;
    const MESSAGES: usize = 16;
    // Large frames fill the kernel socket buffers after a handful of
    // messages, so back-pressure reaches the producer well before the
    // consumer wakes up.
    const PAYLOAD: usize = 256 * 1024;

    let (mut producer, mut consumer) =
        loopback_pair_tcp::<Vec<u8>>("SatSrc", "SatSink", Some(WINDOW), Some(1))
            .expect("loopback TCP pair");
    let feeder = std::thread::spawn(move || {
        for index in 0..MESSAGES {
            let mut payload = vec![0xCD; PAYLOAD];
            payload[0] = index as u8;
            executor::block_on(producer.send(payload)).expect("consumer alive");
        }
    });
    // Let the producer saturate the window, the socket and the inbound
    // ring before draining anything.
    std::thread::sleep(Duration::from_millis(100));
    for index in 0..MESSAGES {
        let payload = executor::block_on(consumer.recv()).expect("producer sent all messages");
        assert_eq!(payload.len(), PAYLOAD);
        assert_eq!(payload[0], index as u8, "frames delivered out of order");
    }
    feeder.join().unwrap();
    drop(consumer);

    if rumpsteak::telemetry::ENABLED {
        let transport = rumpsteak::telemetry::transport::snapshot();
        let link = transport
            .iter()
            .find(|l| l.from == "SatSrc" && l.to == "SatSink")
            .expect("saturated link registered");
        assert!(
            link.window_stalls > 0,
            "a saturating producer never parked on its k = {WINDOW} window"
        );
        assert_eq!(link.send_window, Some(WINDOW as u64));
        assert_eq!(link.kmc_bound, Some(WINDOW as u64));
        assert!(!link.window_exceeds_bound());
        // The session-facing ring is bounded at k, so its watermark —
        // measured race-free by the ring itself — proves the link never
        // buffered past the verified depth.
        let channels = rumpsteak::telemetry::channel::snapshot();
        let ring = channels
            .iter()
            .find(|l| l.from == "SatSrc" && l.to == "SatSink")
            .expect("saturated ring registered");
        assert!(ring.high_watermark >= 1);
        assert!(
            !ring.violates_bound(),
            "ring watermark {} exceeded the verified bound {WINDOW}",
            ring.high_watermark
        );
    }
}

/// Two meshes in one process, staggered: the dialing role comes up
/// first and must retry until the listening role binds, counting each
/// retry as a `reconnect`.
#[cfg(unix)]
#[test]
fn mesh_dial_retries_until_the_peer_binds() {
    let dir = std::env::temp_dir();
    let addr_a = dir.join(format!("rumpsteak-net-a-{}.sock", std::process::id()));
    let addr_b = dir.join(format!("rumpsteak-net-b-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&addr_a);
    let _ = std::fs::remove_file(&addr_b);
    let text = format!("A uds:{}\nB uds:{}\n", addr_a.display(), addr_b.display());
    let topology = Topology::parse(&text).unwrap();

    // B is listed after A, so B dials A; starting B first forces the
    // retry loop while A is still asleep.
    let topology_b = Topology::parse(&text).unwrap();
    let dialer = std::thread::spawn(move || {
        let mut mesh = RemoteMesh::<Label>::bind(topology_b, "B").expect("bind B");
        mesh.set_bound("A", "B", STREAM_BOUND);
        mesh.set_bound("B", "A", STREAM_BOUND);
        mesh.set_dial_timeout(Duration::from_secs(10));
        let mut link = mesh.link("A").expect("dial A");
        executor::block_on(link.send(Label::Value(Value(41)))).expect("A alive");
        match executor::block_on(link.recv()) {
            Some(Label::Value(Value(v))) => v,
            other => panic!("expected a value back, got {:?}", other.is_some()),
        }
    });

    std::thread::sleep(Duration::from_millis(150));
    let mut mesh = RemoteMesh::<Label>::bind(topology, "A").expect("bind A");
    mesh.set_bound("A", "B", STREAM_BOUND);
    mesh.set_bound("B", "A", STREAM_BOUND);
    let mut link = mesh.link("B").expect("accept B");
    match executor::block_on(link.recv()) {
        Some(Label::Value(Value(v))) => {
            executor::block_on(link.send(Label::Value(Value(v + 1)))).expect("B alive");
        }
        _ => panic!("expected the dialer's value"),
    }
    assert_eq!(dialer.join().unwrap(), 42);

    if rumpsteak::telemetry::ENABLED {
        let transport = rumpsteak::telemetry::transport::snapshot();
        let link = transport
            .iter()
            .find(|l| l.from == "B" && l.to == "A")
            .expect("dialing link registered");
        assert!(
            link.reconnects > 0,
            "the dialer connected before the listener bound — no retry observed"
        );
    }
    let _ = std::fs::remove_file(&addr_a);
    let _ = std::fs::remove_file(&addr_b);
}
