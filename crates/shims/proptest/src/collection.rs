//! Collection strategies (`proptest::collection` subset).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Length specification for [`vec`](fn@vec): an exact size or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            start: exact,
            end: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        Self {
            start: range.start,
            end: range.end,
        }
    }
}

/// Strategy for vectors of values from `element`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let len = self.size.start + if span > 1 { rng.below(span) } else { 0 };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..50 {
            assert_eq!(vec(0u32..5, 8).generate(&mut rng).len(), 8);
            let len = vec(0u32..5, 1..4).generate(&mut rng).len();
            assert!((1..4).contains(&len));
        }
    }
}
