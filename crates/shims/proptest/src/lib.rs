//! A minimal, API-compatible stand-in for the `proptest` crate (the build
//! container has no crates.io access).
//!
//! It implements the subset used by this workspace's property tests:
//! the [`Strategy`] trait with `prop_map`/`prop_filter`/`prop_recursive`,
//! numeric range strategies, tuple composition, [`collection::vec`],
//! [`sample::select`], [`bool::ANY`], [`Just`], and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` and `prop_oneof!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * generation is driven by a deterministic splitmix64 RNG seeded from
//!   the test name, so runs are reproducible without a persistence file;
//! * failing cases are **not shrunk** — the panic message reports the
//!   case number instead;
//! * `prop_assert!` panics immediately rather than returning a `Result`.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod collection;
pub mod sample;

/// Strategies over `bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Test-runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values, composable through the `prop_*` adapters.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f`, retrying (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Builds recursive structures: `recurse` receives a strategy for the
    /// nested level and returns the strategy for the level above; `depth`
    /// bounds the nesting. The `_desired_size` and `_expected_branch_size`
    /// parameters are accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        // Compose the depth-bounded strategy tower once, up front: each
        // level chooses between the base case and one more level of
        // recursion.
        let base = self.boxed();
        let mut tower = base.clone();
        for _ in 0..depth {
            let deeper = recurse(tower).boxed();
            tower = Union::new(vec![base.clone(), deeper]).boxed();
        }
        Recursive { tower }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Internal object-safe mirror of [`Strategy`] for [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Adapter returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Adapter returned by [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.inner.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Recursive strategy returned by [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    tower: BoxedStrategy<T>,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Self {
            tower: self.tower.clone(),
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.tower.generate(rng)
    }
}

/// Uniform choice between several strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len());
        self.options[index].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(usize, u8, u16, u32, u64);

/// Inclusive integer ranges (`lo..=hi`), mirroring the real crate.
macro_rules! int_range_inclusive_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    // Span arithmetic in u128: `0..=u64::MAX` has 2^64
                    // values, one more than u64 can hold.
                    let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                    self.start() + ((rng.next_u64() as u128 % span) as $ty)
                }
            }
        )*
    };
}

int_range_inclusive_strategy!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $ty
                }
            }
        )*
    };
}

signed_range_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Mirrors `proptest!`: runs each property against `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl $config; $($rest)* }
    };
    (@impl $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                $(let $arg = $strategy;)+
                for case in 0..config.cases {
                    let run = || -> () {
                        $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                        $body
                    };
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed (shim: no shrinking)",
                            case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Mirrors `prop_assert!`: panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Mirrors `prop_oneof!`: uniform choice between the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..200 {
            let v = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_ranges_cover_both_endpoints() {
        let mut rng = TestRng::from_name("inclusive");
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..200 {
            let v = Strategy::generate(&(2usize..=5), &mut rng);
            assert!((2..=5).contains(&v));
            lo_seen |= v == 2;
            hi_seen |= v == 5;
            // The full u64 domain must not overflow the span arithmetic.
            let _ = Strategy::generate(&(0u64..=u64::MAX), &mut rng);
            // A single-value range is the degenerate case.
            assert_eq!(Strategy::generate(&(7u8..=7), &mut rng), 7);
        }
        assert!(lo_seen && hi_seen, "inclusive endpoints never generated");
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(inner) => 1 + depth(inner),
            }
        }
        let strategy = Just(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            inner.prop_map(|t| Tree::Node(Box::new(t)))
        });
        let mut rng = TestRng::from_name("trees");
        for _ in 0..100 {
            assert!(depth(&Strategy::generate(&strategy, &mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro binds several arguments and runs the body.
        #[test]
        fn macro_smoke(a in 0u32..10, b in 0u32..10) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
