//! Sampling strategies (`proptest::sample` subset).

use crate::{Strategy, TestRng};

/// Strategy choosing uniformly from a fixed list.
#[derive(Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].clone()
    }
}

/// Chooses one of `options` uniformly (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_only_listed_options() {
        let mut rng = TestRng::from_name("select");
        for _ in 0..50 {
            let v = select(vec!["a", "b"]).generate(&mut rng);
            assert!(v == "a" || v == "b");
        }
    }
}
