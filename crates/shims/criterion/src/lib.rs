//! A minimal, API-compatible stand-in for the `criterion` benchmark
//! harness (the build container has no crates.io access).
//!
//! It implements the subset the workspace's benches use — groups,
//! `bench_function`/`bench_with_input`, throughput annotation and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! fixed-budget timing loop instead of criterion's statistical sampling.
//! Results are printed as `group/id: <mean> per iter (<n> iters)`; there
//! is no HTML report and no outlier analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier.
pub use std::hint::black_box;

/// Throughput annotation attached to a group (printed, not analysed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Per-iteration timing callback holder passed to bench closures.
pub struct Bencher {
    measurement_time: Duration,
    /// Mean per-iteration time and iteration count of the last `iter` run.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly within the measurement
    /// budget (at least once).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up execution, untimed.
        black_box(routine());
        let budget = self.measurement_time;
        let started = Instant::now();
        let mut iters = 0u64;
        while iters == 0 || started.elapsed() < budget {
            black_box(routine());
            iters += 1;
        }
        let elapsed = started.elapsed();
        self.result = Some((elapsed / iters.max(1) as u32, iters));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for compatibility; the shim's
    /// timing loop is budget-based, so this is a no-op).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up duration (no-op: the shim warms up with a single
    /// untimed execution).
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(id.to_string(), f)
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input))
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        let line = match bencher.result {
            Some((mean, iters)) => {
                let throughput = match self.throughput {
                    Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
                        format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
                    }
                    Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
                        format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
                    }
                    _ => String::new(),
                };
                format!(
                    "{}/{}: {:?} per iter ({} iters){}",
                    self.name, id, mean, iters, throughput
                )
            }
            None => format!("{}/{}: no measurement", self.name, id),
        };
        self.criterion.report(&line);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.default_measurement_time;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    fn report(&mut self, line: &str) {
        println!("{line}");
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("t");
        group.measurement_time(Duration::from_millis(5));
        let mut ran = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
