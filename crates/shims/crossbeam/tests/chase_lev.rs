//! Edge-case tests pinning the Chase–Lev deque and the lock-free
//! injector: the empty-steal race on the last element, buffer growth
//! racing in-flight steals, and batch-steal limits.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::deque::{Injector, Steal, Worker, MAX_BATCH};

/// The classic Chase–Lev race: owner pops and stealers steal a deque that
/// hovers around one element. Every pushed value must be claimed exactly
/// once — never dropped, never duplicated.
#[test]
fn empty_steal_race_claims_each_element_once() {
    const VALUES: usize = 20_000;
    const STEALERS: usize = 4;

    let worker: Worker<usize> = Worker::new_lifo();
    let claims: Arc<Vec<AtomicUsize>> =
        Arc::new((0..VALUES).map(|_| AtomicUsize::new(0)).collect());
    let done = Arc::new(AtomicUsize::new(0));

    let stealer_threads: Vec<_> = (0..STEALERS)
        .map(|_| {
            let stealer = worker.stealer();
            let claims = claims.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                while done.load(Ordering::Acquire) == 0 {
                    if let Steal::Success(value) = stealer.steal() {
                        claims[value].fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Drain whatever the owner left behind.
                while let Steal::Success(value) = stealer.steal() {
                    claims[value].fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // The owner keeps the deque nearly empty: push one, pop one, racing
    // the stealers for the single element almost every time.
    for value in 0..VALUES {
        worker.push(value);
        if let Some(popped) = worker.pop() {
            claims[popped].fetch_add(1, Ordering::Relaxed);
        }
    }
    done.store(1, Ordering::Release);
    for thread in stealer_threads {
        thread.join().unwrap();
    }

    for (value, claim) in claims.iter().enumerate() {
        assert_eq!(claim.load(Ordering::Relaxed), 1, "value {value}");
    }
}

/// Growth during steals: the owner pushes far past the initial capacity
/// while stealers read concurrently, forcing several buffer doublings
/// whose retired predecessors must stay readable.
#[test]
fn grow_during_steal_loses_nothing() {
    const VALUES: usize = 100_000;
    const STEALERS: usize = 2;

    let worker: Worker<usize> = Worker::new_fifo();
    let claims: Arc<Vec<AtomicUsize>> =
        Arc::new((0..VALUES).map(|_| AtomicUsize::new(0)).collect());
    let done = Arc::new(AtomicUsize::new(0));

    let stealer_threads: Vec<_> = (0..STEALERS)
        .map(|_| {
            let stealer = worker.stealer();
            let claims = claims.clone();
            let done = done.clone();
            std::thread::spawn(move || loop {
                match stealer.steal() {
                    Steal::Success(value) => {
                        claims[value].fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Empty if done.load(Ordering::Acquire) == 1 => return,
                    _ => {}
                }
            })
        })
        .collect();

    // Push everything before popping so the deque depth crosses multiple
    // power-of-two boundaries while steals are in flight.
    for value in 0..VALUES {
        worker.push(value);
    }
    while let Some(value) = worker.pop() {
        claims[value].fetch_add(1, Ordering::Relaxed);
    }
    done.store(1, Ordering::Release);
    for thread in stealer_threads {
        thread.join().unwrap();
    }

    for (value, claim) in claims.iter().enumerate() {
        assert_eq!(claim.load(Ordering::Relaxed), 1, "value {value}");
    }
}

/// A sibling batch steal takes half the victim's queue, capped at
/// `MAX_BATCH` moved tasks plus the one returned.
#[test]
fn sibling_batch_steal_takes_capped_half() {
    // Small victim: half of 10 = 5 → 1 popped + 4 moved.
    let victim = Worker::new_fifo();
    for value in 0..10 {
        victim.push(value);
    }
    let dest = Worker::new_fifo();
    assert!(matches!(
        victim.stealer().steal_batch_and_pop(&dest),
        Steal::Success(0)
    ));
    assert_eq!(dest.len(), 4);
    assert_eq!(victim.len(), 5);
    // FIFO order survives the move.
    assert_eq!(dest.pop(), Some(1));

    // Large victim: half of 100 = 50, capped at MAX_BATCH + 1 total.
    let victim = Worker::new_fifo();
    for value in 0..100 {
        victim.push(value);
    }
    let dest = Worker::new_fifo();
    assert!(matches!(
        victim.stealer().steal_batch_and_pop(&dest),
        Steal::Success(0)
    ));
    assert_eq!(dest.len(), MAX_BATCH);
    assert_eq!(victim.len(), 100 - MAX_BATCH - 1);
}

/// Regression: a batch steal must never claim a multi-element range with
/// one CAS, because the LIFO owner takes `bottom-1` *without* a CAS
/// whenever more than one element remains — a range claim overlapping
/// that index would deliver the element twice. Owner pops LIFO while
/// stealers batch-steal; every element must be claimed exactly once.
#[test]
fn lifo_pop_races_batch_steal_exactly_once() {
    const VALUES: usize = 20_000;
    const STEALERS: usize = 3;

    let worker: Worker<usize> = Worker::new_lifo();
    let claims: Arc<Vec<AtomicUsize>> =
        Arc::new((0..VALUES).map(|_| AtomicUsize::new(0)).collect());
    let done = Arc::new(AtomicUsize::new(0));

    let stealer_threads: Vec<_> = (0..STEALERS)
        .map(|_| {
            let stealer = worker.stealer();
            let claims = claims.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let local = Worker::new_fifo();
                let claim_all = |local: &Worker<usize>, first: usize| {
                    claims[first].fetch_add(1, Ordering::Relaxed);
                    while let Some(value) = local.pop() {
                        claims[value].fetch_add(1, Ordering::Relaxed);
                    }
                };
                while done.load(Ordering::Acquire) == 0 {
                    if let Steal::Success(first) = stealer.steal_batch_and_pop(&local) {
                        claim_all(&local, first);
                    }
                }
                while let Steal::Success(first) = stealer.steal_batch_and_pop(&local) {
                    claim_all(&local, first);
                }
            })
        })
        .collect();

    // The owner keeps a small queue alive (push two, pop one) so batch
    // steals keep overlapping the owner's uncontended bottom pops.
    let mut next = 0;
    while next < VALUES {
        worker.push(next);
        next += 1;
        if next < VALUES {
            worker.push(next);
            next += 1;
        }
        if let Some(popped) = worker.pop() {
            claims[popped].fetch_add(1, Ordering::Relaxed);
        }
    }
    while let Some(popped) = worker.pop() {
        claims[popped].fetch_add(1, Ordering::Relaxed);
    }
    done.store(1, Ordering::Release);
    for thread in stealer_threads {
        thread.join().unwrap();
    }

    for (value, claim) in claims.iter().enumerate() {
        assert_eq!(claim.load(Ordering::Relaxed), 1, "value {value}");
    }
}

/// The injector's batch takeover claims the whole chain in FIFO order;
/// a concurrent second taker sees it empty, not a torn chain.
#[test]
fn injector_batch_takeover_is_fifo_and_exclusive() {
    let injector = Injector::new();
    for value in 0..100 {
        injector.push(value);
    }
    let dest = Worker::new_fifo();
    assert!(matches!(
        injector.steal_batch_and_pop(&dest),
        Steal::Success(0)
    ));
    assert!(injector.is_empty());
    assert!(matches!(injector.steal_batch_and_pop(&dest), Steal::Empty));
    for expected in 1..100 {
        assert_eq!(dest.pop(), Some(expected));
    }
    assert_eq!(dest.pop(), None);
}

/// Concurrent pushers and batch takers: every injected value lands in
/// exactly one taker's deque.
#[test]
fn injector_concurrent_push_and_takeover() {
    const PUSHERS: usize = 4;
    const PER_PUSHER: usize = 10_000;

    let injector = Arc::new(Injector::new());
    let claims: Arc<Vec<AtomicUsize>> = Arc::new(
        (0..PUSHERS * PER_PUSHER)
            .map(|_| AtomicUsize::new(0))
            .collect(),
    );

    let pushers: Vec<_> = (0..PUSHERS)
        .map(|pusher| {
            let injector = injector.clone();
            std::thread::spawn(move || {
                for offset in 0..PER_PUSHER {
                    injector.push(pusher * PER_PUSHER + offset);
                }
            })
        })
        .collect();
    let takers: Vec<_> = (0..2)
        .map(|_| {
            let injector = injector.clone();
            let claims = claims.clone();
            std::thread::spawn(move || {
                let local = Worker::new_fifo();
                let mut idle = 0;
                while idle < 1_000 {
                    match injector.steal_batch_and_pop(&local) {
                        Steal::Success(value) => {
                            idle = 0;
                            claims[value].fetch_add(1, Ordering::Relaxed);
                            while let Some(value) = local.pop() {
                                claims[value].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        _ => idle += 1,
                    }
                }
            })
        })
        .collect();

    for thread in pushers {
        thread.join().unwrap();
    }
    for thread in takers {
        thread.join().unwrap();
    }
    // Anything left (takers idled out early) is still in the injector.
    let local = Worker::new_fifo();
    if let Steal::Success(value) = injector.steal_batch_and_pop(&local) {
        claims[value].fetch_add(1, Ordering::Relaxed);
        while let Some(value) = local.pop() {
            claims[value].fetch_add(1, Ordering::Relaxed);
        }
    }

    for (value, claim) in claims.iter().enumerate() {
        assert_eq!(claim.load(Ordering::Relaxed), 1, "value {value}");
    }
}
