//! A minimal, API-compatible stand-in for the `crossbeam` crate (the build
//! container has no crates.io access). Provides the two modules this
//! workspace uses:
//!
//! * [`deque`] — `Worker`/`Stealer`/`Injector`/`Steal`, backed by mutexed
//!   `VecDeque`s rather than lock-free Chase–Lev deques. Semantics match;
//!   raw throughput under heavy contention is of course lower than the
//!   real crate's, which only affects benchmark absolute numbers.
//! * [`channel`] — blocking MPMC `bounded` channels. Capacity 0 is a
//!   true rendezvous: `send` returns only once a receiver has consumed
//!   the message, matching the synchronous semantics the Sesh- and
//!   MultiCrusty-style baselines are benchmarked under.

pub mod channel;
pub mod deque;
