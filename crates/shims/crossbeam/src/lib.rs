//! A minimal, API-compatible stand-in for the `crossbeam` crate (the build
//! container has no crates.io access). Provides the two modules this
//! workspace uses:
//!
//! * [`deque`] — `Worker`/`Stealer`/`Injector`/`Steal`, implemented as a
//!   real lock-free Chase–Lev deque (growable ring buffer, CAS-validated
//!   steals, epoch-free retired-buffer reclamation) plus a Treiber-chain
//!   injector with batch takeover. No mutex anywhere on the
//!   push/pop/steal path; see the module docs for the memory-ordering
//!   argument.
//! * [`channel`] — blocking MPMC `bounded` channels. Capacity 0 is a
//!   true rendezvous: `send` returns only once a receiver has consumed
//!   the message, matching the synchronous semantics the Sesh- and
//!   MultiCrusty-style baselines are benchmarked under.

pub mod channel;
pub mod deque;
