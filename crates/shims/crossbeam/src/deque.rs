//! Work-stealing deque shim: the `crossbeam_deque` surface used by the
//! executor, implemented with mutexed queues.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

/// Maximum number of tasks moved per [`Injector::steal_batch_and_pop`].
const BATCH: usize = 16;

/// Result of a steal attempt.
pub enum Steal<T> {
    /// A task was stolen.
    Success(T),
    /// The queue was empty.
    Empty,
    /// Transient contention; the caller should retry. Never produced by
    /// this shim (locks serialise access) but kept for API compatibility.
    Retry,
}

/// The worker-local end of a deque.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates a FIFO worker queue.
    pub fn new_fifo() -> Self {
        Self {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a task onto the local queue.
    pub fn push(&self, task: T) {
        self.queue.lock().push_back(task);
    }

    /// Pops the next local task.
    pub fn pop(&self) -> Option<T> {
        self.queue.lock().pop_front()
    }

    /// True if the local queue holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Creates a stealer handle sharing this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: self.queue.clone(),
        }
    }
}

/// A handle other workers use to steal from a [`Worker`]'s queue.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Attempts to steal one task.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            queue: self.queue.clone(),
        }
    }
}

/// The global injection queue shared by all workers.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues a task.
    pub fn push(&self, task: T) {
        self.queue.lock().push_back(task);
    }

    /// True if no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Steals a batch of tasks into `worker`'s queue, returning the first.
    pub fn steal_batch_and_pop(&self, worker: &Worker<T>) -> Steal<T> {
        let mut queue = self.queue.lock();
        let Some(first) = queue.pop_front() else {
            return Steal::Empty;
        };
        let batch: Vec<T> = (0..BATCH.min(queue.len()))
            .filter_map(|_| queue.pop_front())
            .collect();
        drop(queue);
        if !batch.is_empty() {
            let mut local = worker.queue.lock();
            local.extend(batch);
        }
        Steal::Success(first)
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_fifo_order() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_drains_worker() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(7);
        assert!(matches!(s.steal(), Steal::Success(7)));
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn injector_batch_moves_into_worker() {
        let injector = Injector::new();
        for i in 0..5 {
            injector.push(i);
        }
        let w = Worker::new_fifo();
        assert!(matches!(
            injector.steal_batch_and_pop(&w),
            Steal::Success(0)
        ));
        assert!(injector.is_empty());
        assert_eq!(w.pop(), Some(1));
    }
}
