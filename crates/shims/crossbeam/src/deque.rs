//! Lock-free work-stealing deque: the `crossbeam_deque` surface used by
//! the executor, implemented as a real Chase–Lev deque.
//!
//! * [`Worker`]/[`Stealer`] follow Chase & Lev's growable circular-buffer
//!   deque with the acquire/release orderings of Lê et al., "Correct and
//!   Efficient Work-Stealing for Weak Memory Models" (PPoPP'13): the owner
//!   pushes and pops at the *bottom* without synchronisation in the common
//!   case, stealers CAS the *top* index, and the owner CASes top only when
//!   taking the last element.
//! * Buffer growth is epoch-free: the owner publishes the doubled buffer
//!   with a release store and *retires* the old one into a list inside the
//!   shared (`Arc`ed) state instead of freeing it, so a stealer that raced
//!   the growth still reads valid memory; its CAS on `top` then decides
//!   whether the (bit-identical, copied) element is really claimed.
//!   Retired buffers are reclaimed when the last handle drops — bounded
//!   waste (a geometric series below 2x the live buffer), zero fences.
//! * [`Injector`] is a lock-free Treiber chain with *batch takeover*: push
//!   is a CAS prepend and `steal_batch_and_pop` claims the entire chain
//!   with one `swap`, reverses it into FIFO order, and moves it into the
//!   caller's deque. Claiming the whole chain sidesteps the memory
//!   reclamation problem entirely (the taker owns every node it unlinks)
//!   and redistributes naturally through sibling batch-steals.
//!
//! The public API matches the `crossbeam_deque` subset this workspace
//! uses, so swapping in the real crate stays a one-line manifest change.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr};
use std::sync::Arc;

/// Initial buffer capacity (power of two).
const MIN_CAP: usize = 64;

/// Maximum number of tasks a single [`Stealer::steal_batch_and_pop`] moves
/// (on top of the one it returns). Stealers take half the victim's queue,
/// capped here so one steal cannot monopolise a long queue.
pub const MAX_BATCH: usize = 16;

/// Result of a steal attempt.
pub enum Steal<T> {
    /// A task was stolen.
    Success(T),
    /// The queue was empty.
    Empty,
    /// Lost a race with a concurrent steal; the caller should retry.
    Retry,
}

impl<T> Steal<T> {
    /// True if the steal produced a task.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// True if the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Extracts the stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(task) => Some(task),
            _ => None,
        }
    }
}

impl<T> fmt::Debug for Steal<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Steal::Success(_) => f.write_str("Success(..)"),
            Steal::Empty => f.write_str("Empty"),
            Steal::Retry => f.write_str("Retry"),
        }
    }
}

/// A fixed-capacity circular buffer of `T` slots.
///
/// Slots are bare `MaybeUninit` cells: which logical indices hold live
/// values is tracked externally by the `top`/`bottom` indices.
struct Buffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Power-of-two capacity; `cap - 1` is the index mask.
    cap: usize,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::new(Self { slots, cap })
    }

    fn slot(&self, index: isize) -> *mut MaybeUninit<T> {
        self.slots[index as usize & (self.cap - 1)].get()
    }

    /// Writes `value` into the slot for logical `index` (owner only).
    unsafe fn write(&self, index: isize, value: T) {
        ptr::write(self.slot(index), MaybeUninit::new(value));
    }

    /// Reads the slot for logical `index` as a bit-copy.
    ///
    /// A volatile read: the slot may be concurrently overwritten by the
    /// owner after wraparound, in which case the copy is torn — the caller
    /// must validate with a CAS on `top` before treating it as a `T` and
    /// discard the copy when the CAS fails.
    ///
    /// Known caveat (shared with real `crossbeam-deque`): this racing
    /// non-atomic read is formally a data race under the Rust memory
    /// model, so Miri would flag it even though the torn copy is never
    /// interpreted. Making it defined would need per-word atomic slot
    /// copies; like upstream, we take the documented-UB route on the hot
    /// path. Do not run Miri over this module.
    unsafe fn read(&self, index: isize) -> MaybeUninit<T> {
        ptr::read_volatile(self.slot(index))
    }
}

/// State shared by a [`Worker`] and its [`Stealer`]s.
struct Inner<T> {
    /// Steal index: only ever incremented, via CAS.
    top: AtomicIsize,
    /// Push/pop index: written only by the owner.
    bottom: AtomicIsize,
    /// The live circular buffer.
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by growth, kept alive until all handles drop so
    /// in-flight steals never read freed memory. Mutated only by the owner
    /// (single thread); stealers never touch it. The boxes must stay boxed:
    /// stealers may still hold raw pointers to these exact allocations.
    #[allow(clippy::vec_box)]
    retired: UnsafeCell<Vec<Box<Buffer<T>>>>,
}

unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole remaining handle: indices are quiescent.
        let top = *self.top.get_mut();
        let bottom = *self.bottom.get_mut();
        let buffer = unsafe { Box::from_raw(*self.buffer.get_mut()) };
        let mut index = top;
        while index < bottom {
            unsafe { buffer.read(index).assume_init_drop() };
            index += 1;
        }
        // `buffer` and the retired list free their allocations here.
    }
}

/// Which end the owner pops from.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Flavor {
    /// Owner pops the most recently pushed element (bottom).
    Lifo,
    /// Owner pops the oldest element (top), like the stealers.
    Fifo,
}

/// The worker-local end of a deque. Single-owner: push and pop must stay
/// on one thread (the type is `Send` but not `Sync`, and not `Clone`).
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    flavor: Flavor,
    /// !Sync marker: owner operations are single-threaded by contract.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

unsafe impl<T: Send> Send for Worker<T> {}

impl<T> Worker<T> {
    fn with_flavor(flavor: Flavor) -> Self {
        let buffer = Box::into_raw(Buffer::alloc(MIN_CAP));
        Self {
            inner: Arc::new(Inner {
                top: AtomicIsize::new(0),
                bottom: AtomicIsize::new(0),
                buffer: AtomicPtr::new(buffer),
                retired: UnsafeCell::new(Vec::new()),
            }),
            flavor,
            _not_sync: PhantomData,
        }
    }

    /// Creates a FIFO worker queue: `pop` takes the oldest element.
    pub fn new_fifo() -> Self {
        Self::with_flavor(Flavor::Fifo)
    }

    /// Creates a LIFO worker queue: `pop` takes the newest element.
    pub fn new_lifo() -> Self {
        Self::with_flavor(Flavor::Lifo)
    }

    /// Creates a stealer handle sharing this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: self.inner.clone(),
        }
    }

    /// Number of elements currently in the queue (a racy snapshot).
    pub fn len(&self) -> usize {
        let bottom = self.inner.bottom.load(Relaxed);
        let top = self.inner.top.load(Relaxed);
        bottom.saturating_sub(top).max(0) as usize
    }

    /// True if the local queue holds no tasks (a racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes a task onto the bottom of the queue.
    pub fn push(&self, task: T) {
        let bottom = self.inner.bottom.load(Relaxed);
        let top = self.inner.top.load(Acquire);
        let mut buffer = self.inner.buffer.load(Relaxed);

        if bottom - top >= unsafe { (*buffer).cap } as isize {
            self.grow(top, bottom);
            buffer = self.inner.buffer.load(Relaxed);
        }

        unsafe { (*buffer).write(bottom, task) };
        // Publish the slot before publishing the new bottom, so a stealer
        // that observes the index also observes the element.
        self.inner.bottom.store(bottom + 1, Release);
    }

    /// Doubles the buffer, copying live elements; owner only.
    #[cold]
    fn grow(&self, top: isize, bottom: isize) {
        let old = self.inner.buffer.load(Relaxed);
        let new = Buffer::alloc(unsafe { (*old).cap } * 2);
        let mut index = top;
        while index < bottom {
            unsafe { ptr::write(new.slot(index), (*old).read(index)) };
            index += 1;
        }
        self.inner.buffer.store(Box::into_raw(new), Release);
        // Retire rather than free: a stealer may still be reading `old`.
        // The retired list lives in the Arc'd state, so the allocation
        // survives until every Stealer is gone.
        unsafe { (*self.inner.retired.get()).push(Box::from_raw(old)) };
    }

    /// Pops the next local task (bottom for LIFO, top for FIFO).
    pub fn pop(&self) -> Option<T> {
        match self.flavor {
            Flavor::Lifo => self.pop_lifo(),
            Flavor::Fifo => self.pop_fifo(),
        }
    }

    fn pop_lifo(&self) -> Option<T> {
        let bottom = self.inner.bottom.load(Relaxed) - 1;
        self.inner.bottom.store(bottom, Relaxed);
        // The bottom store must be visible before top is read, or two
        // threads could both claim a single remaining element.
        fence(SeqCst);
        let top = self.inner.top.load(Relaxed);

        if bottom < top {
            // Empty: undo the reservation.
            self.inner.bottom.store(bottom + 1, Relaxed);
            return None;
        }

        let buffer = self.inner.buffer.load(Relaxed);
        let slot = unsafe { (*buffer).read(bottom) };
        if bottom > top {
            // More than one element: the owner wins uncontended.
            return Some(unsafe { slot.assume_init() });
        }

        // Exactly one element: race the stealers with a CAS on top.
        let won = self
            .inner
            .top
            .compare_exchange(top, top + 1, SeqCst, Relaxed)
            .is_ok();
        self.inner.bottom.store(bottom + 1, Relaxed);
        if won {
            Some(unsafe { slot.assume_init() })
        } else {
            // A stealer claimed it; the `MaybeUninit` bit-copy is simply
            // discarded (it never drops).
            None
        }
    }

    fn pop_fifo(&self) -> Option<T> {
        // FIFO owner pop takes from the steal end. The CAS can only lose
        // to a concurrent stealer, which strictly shrinks the queue, so
        // retrying terminates.
        loop {
            match steal_one(&self.inner) {
                Steal::Success(task) => return Some(task),
                Steal::Empty => return None,
                Steal::Retry => {}
            }
        }
    }
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Self::new_fifo()
    }
}

impl<T> fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Worker { .. }")
    }
}

/// Steals one element from the top. Shared by `Stealer::steal` and the
/// FIFO owner pop.
fn steal_one<T>(inner: &Inner<T>) -> Steal<T> {
    let top = inner.top.load(Acquire);
    // Order the top load before the bottom load: observing a stale bottom
    // with a fresh top could miss the last element.
    fence(SeqCst);
    let bottom = inner.bottom.load(Acquire);

    if bottom - top <= 0 {
        return Steal::Empty;
    }

    // Read the element *before* claiming it, then let the CAS decide. The
    // buffer is loaded after the fence, so it is at least as fresh as any
    // growth covering index `top` (see module docs on retirement).
    let buffer = inner.buffer.load(Acquire);
    let slot = unsafe { (*buffer).read(top) };
    match inner.top.compare_exchange(top, top + 1, SeqCst, Relaxed) {
        Ok(_) => Steal::Success(unsafe { slot.assume_init() }),
        // Lost the race: the (possibly torn) bit-copy is discarded.
        Err(_) => Steal::Retry,
    }
}

/// A handle other workers use to steal from a [`Worker`]'s queue.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

unsafe impl<T: Send> Send for Stealer<T> {}
unsafe impl<T: Send> Sync for Stealer<T> {}

impl<T> Stealer<T> {
    /// Attempts to steal one task from the top of the queue.
    pub fn steal(&self) -> Steal<T> {
        steal_one(&self.inner)
    }

    /// True if the queue was observed empty (a racy snapshot).
    pub fn is_empty(&self) -> bool {
        let top = self.inner.top.load(Acquire);
        fence(SeqCst);
        let bottom = self.inner.bottom.load(Acquire);
        bottom - top <= 0
    }

    /// Steals half the victim's queue (capped at [`MAX_BATCH`] extra
    /// tasks) into `dest`, returning the first stolen task.
    ///
    /// Every element is claimed with its own fenced single-steal CAS —
    /// never one CAS over a multi-element range. A range claim would race
    /// the LIFO owner's uncontended pop: the owner takes index `bottom-1`
    /// without touching `top` whenever `bottom-1 > top`, so a stealer may
    /// only ever claim the element `top` itself points at.
    ///
    /// `dest` must be a different queue: the caller is its owner thread.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        debug_assert!(
            !Arc::ptr_eq(&self.inner, &dest.inner),
            "cannot batch-steal into the same deque"
        );
        let first = match steal_one(&self.inner) {
            Steal::Success(task) => task,
            other => return other,
        };

        // Size the batch from one snapshot: half the queue as it stood
        // before the pop, rounded up, capped at MAX_BATCH extra tasks.
        let top = self.inner.top.load(Acquire);
        fence(SeqCst);
        let bottom = self.inner.bottom.load(Acquire);
        // remaining/2 extra tasks ≙ half the original queue rounded up,
        // counting the task already popped.
        let extra = ((bottom - top) / 2).clamp(0, MAX_BATCH as isize);

        for _ in 0..extra {
            match steal_one(&self.inner) {
                Steal::Success(task) => dest.push(task),
                // Contention or exhaustion ends the batch; the first task
                // already makes this call a success.
                _ => break,
            }
        }
        Steal::Success(first)
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Stealer { .. }")
    }
}

/// A node in the injector's Treiber chain.
struct Node<T> {
    value: MaybeUninit<T>,
    next: *mut Node<T>,
}

/// The global injection queue shared by all workers.
///
/// Push is a lock-free CAS prepend; consumption is *batch takeover*: one
/// `swap` claims the entire chain, which the taker then owns outright —
/// no node is ever unlinked while another thread might still dereference
/// it, so no epochs or hazard pointers are needed. The claimed chain is
/// reversed into FIFO order and moved into the stealing worker's deque,
/// where siblings rebalance it through ordinary batch steals.
pub struct Injector<T> {
    head: AtomicPtr<Node<T>>,
}

unsafe impl<T: Send> Send for Injector<T> {}
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Self {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Enqueues a task. Lock-free: a CAS prepend that never dereferences
    /// another thread's nodes.
    pub fn push(&self, task: T) {
        let node = Box::into_raw(Box::new(Node {
            value: MaybeUninit::new(task),
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Relaxed);
        loop {
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Release, Relaxed)
            {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// True if no tasks are queued (a racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.head.load(Acquire).is_null()
    }

    /// Claims every queued task, moving all but the oldest into `dest`
    /// in FIFO order and returning the oldest.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut chain = self.head.swap(ptr::null_mut(), Acquire);
        if chain.is_null() {
            return Steal::Empty;
        }

        // The chain links newest → oldest; reverse in place so it links
        // oldest → newest. The swap gave us exclusive ownership.
        let mut reversed: *mut Node<T> = ptr::null_mut();
        while !chain.is_null() {
            let next = unsafe { (*chain).next };
            unsafe { (*chain).next = reversed };
            reversed = chain;
            chain = next;
        }

        let first = unsafe {
            let node = Box::from_raw(reversed);
            reversed = node.next;
            node.value.assume_init()
        };
        while !reversed.is_null() {
            let node = unsafe { Box::from_raw(reversed) };
            reversed = node.next;
            dest.push(unsafe { node.value.assume_init() });
        }
        Steal::Success(first)
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        let mut chain = *self.head.get_mut();
        while !chain.is_null() {
            let node = unsafe { Box::from_raw(chain) };
            chain = node.next;
            unsafe { node.value.assume_init() };
        }
    }
}

impl<T> fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Injector { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_fifo_order() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn worker_lifo_order() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_drains_worker() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(7);
        assert!(matches!(s.steal(), Steal::Success(7)));
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn injector_batch_moves_into_worker() {
        let injector = Injector::new();
        for i in 0..5 {
            injector.push(i);
        }
        let w = Worker::new_fifo();
        assert!(matches!(
            injector.steal_batch_and_pop(&w),
            Steal::Success(0)
        ));
        assert!(injector.is_empty());
        assert_eq!(w.pop(), Some(1));
    }

    #[test]
    fn grow_preserves_elements() {
        let w = Worker::new_lifo();
        for i in 0..(MIN_CAP * 4) {
            w.push(i);
        }
        assert_eq!(w.len(), MIN_CAP * 4);
        for i in (0..(MIN_CAP * 4)).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn drop_releases_remaining_elements() {
        let value = Arc::new(0u32);
        let w = Worker::new_fifo();
        for _ in 0..10 {
            w.push(value.clone());
        }
        let injector = Injector::new();
        for _ in 0..10 {
            injector.push(value.clone());
        }
        assert_eq!(Arc::strong_count(&value), 21);
        drop(w);
        assert_eq!(Arc::strong_count(&value), 11);
        drop(injector);
        assert_eq!(Arc::strong_count(&value), 1);
    }
}
