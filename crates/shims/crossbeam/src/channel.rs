//! Blocking MPMC channel shim: the `crossbeam_channel` surface used by the
//! baseline frameworks.
//!
//! `bounded(0)` is a true rendezvous channel: `send` returns only once a
//! receiver has taken the message (or errors, handing the message back,
//! if every receiver disappears first). Positive capacities block sends
//! only while the buffer is full.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

struct State<T> {
    /// Queued messages tagged with their send sequence number.
    queue: VecDeque<(u64, T)>,
    /// Sequence number assigned to the next send.
    next_seq: u64,
    /// Sequence number up to which messages have been consumed
    /// (exclusive): message `s` is delivered once `popped > s`.
    popped: u64,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Buffer capacity; 0 means rendezvous.
    capacity: usize,
    /// Signalled when buffer space frees up or a message is consumed
    /// (rendezvous acknowledgement) or the receivers disappear.
    space: Condvar,
    /// Signalled when a message arrives or the senders disappear.
    items: Condvar,
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message back like the real crate.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a blocking channel of the given capacity (0 = rendezvous).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            next_seq: 0,
            popped: 0,
            senders: 1,
            receivers: 1,
        }),
        capacity,
        space: Condvar::new(),
        items: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Delivers `value`: blocks while the buffer is full, and — for a
    /// rendezvous channel — until a receiver has consumed the message.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock();
        while self.shared.capacity > 0 && state.queue.len() >= self.shared.capacity {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            self.shared.space.wait(&mut state);
        }
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.queue.push_back((seq, value));
        self.shared.items.notify_one();
        if self.shared.capacity == 0 {
            // Rendezvous: wait until this very message has been taken.
            while state.popped <= seq {
                if state.receivers == 0 {
                    // Reclaim the message if it is still queued; if a
                    // receiver took it just before dropping, it counts as
                    // delivered.
                    return match state.queue.iter().position(|(s, _)| *s == seq) {
                        Some(index) => {
                            let (_, value) = state.queue.remove(index).expect("index valid");
                            Err(SendError(value))
                        }
                        None => Ok(()),
                    };
                }
                self.shared.space.wait(&mut state);
            }
        }
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock();
        loop {
            if let Some((seq, value)) = state.queue.pop_front() {
                state.popped = seq + 1;
                drop(state);
                // notify_all: several rendezvous senders may be waiting
                // and each re-checks its own sequence number.
                self.shared.space.notify_all();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            self.shared.items.wait(&mut state);
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().senders += 1;
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().receivers += 1;
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.items.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.shared.space.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    use super::*;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receivers_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn rendezvous_send_returns_only_after_consumption() {
        let (tx, rx) = bounded(0);
        let consumed = Arc::new(AtomicBool::new(false));
        let flag = consumed.clone();
        let producer = std::thread::spawn(move || {
            tx.send(7u32).unwrap();
            // A rendezvous send can only return after recv took the
            // message, which happens strictly after the flag is set.
            assert!(flag.load(Ordering::SeqCst), "send returned early");
        });
        std::thread::sleep(Duration::from_millis(20));
        consumed.store(true, Ordering::SeqCst);
        assert_eq!(rx.recv(), Ok(7));
        producer.join().unwrap();
    }

    #[test]
    fn rendezvous_send_recovers_message_on_disconnect() {
        let (tx, rx) = bounded(0);
        let receiver_dropper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            drop(rx);
        });
        let SendError(value) = tx.send(42u32).unwrap_err();
        assert_eq!(value, 42);
        receiver_dropper.join().unwrap();
    }

    #[test]
    fn rendezvous_many_messages_in_order() {
        let (tx, rx) = bounded(0);
        let producer = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        producer.join().unwrap();
    }

    #[test]
    fn cross_thread_rendezvous_pair() {
        let (a_tx, b_rx) = bounded(0);
        let (b_tx, a_rx) = bounded(0);
        let peer = std::thread::spawn(move || {
            let v: u32 = b_rx.recv().unwrap();
            b_tx.send(v + 1).unwrap();
        });
        a_tx.send(41u32).unwrap();
        assert_eq!(a_rx.recv(), Ok(42));
        peer.join().unwrap();
    }
}
