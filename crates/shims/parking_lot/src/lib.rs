//! A minimal, API-compatible stand-in for the `parking_lot` crate, backed
//! by `std::sync`. The build container has no crates.io access, so this
//! shim provides exactly the subset the workspace uses: [`Mutex`] with a
//! guard returned straight from `lock()` (no poison `Result`), and
//! [`Condvar`] whose wait methods take the guard by `&mut`.
//!
//! Poisoning is deliberately ignored (parking_lot has no poisoning): a
//! panicking holder does not prevent later lock acquisitions.

use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion primitive; `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so [`Condvar`] can temporarily take the
/// underlying std guard during a wait; the option is always `Some` outside
/// `Condvar` internals.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during wait")
    }
}

/// Result of a timed wait: reports whether the wait timed out.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable; wait methods reborrow the guard instead of
/// consuming it, matching parking_lot's signatures.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }

    #[test]
    fn lock_survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
