//! Command-line interface to the SoundBinary subtyping baseline.
//!
//! ```text
//! soundbinary <subtype> <supertype> [--max-depth N] [--max-steps N]
//! ```
//!
//! Arguments are local-type expressions or `@path` file references; the
//! types must be binary (one peer). Exits 0 when subtyping holds.

use std::process::ExitCode;

fn read_type(arg: &str) -> Result<theory::LocalType, String> {
    let text = if let Some(path) = arg.strip_prefix('@') {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    } else {
        arg.to_owned()
    };
    theory::local::parse(text.trim()).map_err(|e| format!("parse error: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut limits = soundbinary::Limits::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--max-depth" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(value) => limits.max_context_depth = value,
                None => {
                    eprintln!("--max-depth requires an integer");
                    return ExitCode::from(2);
                }
            },
            "--max-steps" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(value) => limits.max_steps = value,
                None => {
                    eprintln!("--max-steps requires an integer");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: soundbinary <subtype> <supertype> [--max-depth N] [--max-steps N]"
                );
                return ExitCode::SUCCESS;
            }
            other => positional.push(other.to_owned()),
        }
    }
    let [sub, sup] = positional.as_slice() else {
        eprintln!("usage: soundbinary <subtype> <supertype> [--max-depth N] [--max-steps N]");
        return ExitCode::from(2);
    };

    let (sub, sup) = match (read_type(sub), read_type(sup)) {
        (Ok(sub), Ok(sup)) => (sub, sup),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    match soundbinary::is_subtype(&sub, &sup, limits) {
        Ok(true) => {
            println!("subtype holds");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("subtype NOT shown");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
